file(REMOVE_RECURSE
  "CMakeFiles/poc_topo.dir/bp_network.cpp.o"
  "CMakeFiles/poc_topo.dir/bp_network.cpp.o.d"
  "CMakeFiles/poc_topo.dir/geo.cpp.o"
  "CMakeFiles/poc_topo.dir/geo.cpp.o.d"
  "CMakeFiles/poc_topo.dir/graphml.cpp.o"
  "CMakeFiles/poc_topo.dir/graphml.cpp.o.d"
  "CMakeFiles/poc_topo.dir/poc_topology.cpp.o"
  "CMakeFiles/poc_topo.dir/poc_topology.cpp.o.d"
  "CMakeFiles/poc_topo.dir/traffic.cpp.o"
  "CMakeFiles/poc_topo.dir/traffic.cpp.o.d"
  "libpoc_topo.a"
  "libpoc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
