# Empty dependencies file for poc_topo.
# This may be replaced when dependencies are built.
