
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/bp_network.cpp" "src/topo/CMakeFiles/poc_topo.dir/bp_network.cpp.o" "gcc" "src/topo/CMakeFiles/poc_topo.dir/bp_network.cpp.o.d"
  "/root/repo/src/topo/geo.cpp" "src/topo/CMakeFiles/poc_topo.dir/geo.cpp.o" "gcc" "src/topo/CMakeFiles/poc_topo.dir/geo.cpp.o.d"
  "/root/repo/src/topo/graphml.cpp" "src/topo/CMakeFiles/poc_topo.dir/graphml.cpp.o" "gcc" "src/topo/CMakeFiles/poc_topo.dir/graphml.cpp.o.d"
  "/root/repo/src/topo/poc_topology.cpp" "src/topo/CMakeFiles/poc_topo.dir/poc_topology.cpp.o" "gcc" "src/topo/CMakeFiles/poc_topo.dir/poc_topology.cpp.o.d"
  "/root/repo/src/topo/traffic.cpp" "src/topo/CMakeFiles/poc_topo.dir/traffic.cpp.o" "gcc" "src/topo/CMakeFiles/poc_topo.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/poc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
