file(REMOVE_RECURSE
  "libpoc_topo.a"
)
