file(REMOVE_RECURSE
  "libpoc_sim.a"
)
