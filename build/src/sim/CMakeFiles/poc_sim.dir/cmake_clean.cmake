file(REMOVE_RECURSE
  "CMakeFiles/poc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/poc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/poc_sim.dir/scenario.cpp.o"
  "CMakeFiles/poc_sim.dir/scenario.cpp.o.d"
  "libpoc_sim.a"
  "libpoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
