# Empty compiler generated dependencies file for poc_sim.
# This may be replaced when dependencies are built.
