file(REMOVE_RECURSE
  "libpoc_econ.a"
)
