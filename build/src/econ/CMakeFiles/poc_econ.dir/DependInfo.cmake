
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/bargaining.cpp" "src/econ/CMakeFiles/poc_econ.dir/bargaining.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/bargaining.cpp.o.d"
  "/root/repo/src/econ/demand.cpp" "src/econ/CMakeFiles/poc_econ.dir/demand.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/demand.cpp.o.d"
  "/root/repo/src/econ/entry.cpp" "src/econ/CMakeFiles/poc_econ.dir/entry.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/entry.cpp.o.d"
  "/root/repo/src/econ/market_model.cpp" "src/econ/CMakeFiles/poc_econ.dir/market_model.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/market_model.cpp.o.d"
  "/root/repo/src/econ/optimize.cpp" "src/econ/CMakeFiles/poc_econ.dir/optimize.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/optimize.cpp.o.d"
  "/root/repo/src/econ/pricing_models.cpp" "src/econ/CMakeFiles/poc_econ.dir/pricing_models.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/pricing_models.cpp.o.d"
  "/root/repo/src/econ/usage_pricing.cpp" "src/econ/CMakeFiles/poc_econ.dir/usage_pricing.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/usage_pricing.cpp.o.d"
  "/root/repo/src/econ/welfare.cpp" "src/econ/CMakeFiles/poc_econ.dir/welfare.cpp.o" "gcc" "src/econ/CMakeFiles/poc_econ.dir/welfare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
