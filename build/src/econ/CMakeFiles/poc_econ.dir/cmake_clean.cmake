file(REMOVE_RECURSE
  "CMakeFiles/poc_econ.dir/bargaining.cpp.o"
  "CMakeFiles/poc_econ.dir/bargaining.cpp.o.d"
  "CMakeFiles/poc_econ.dir/demand.cpp.o"
  "CMakeFiles/poc_econ.dir/demand.cpp.o.d"
  "CMakeFiles/poc_econ.dir/entry.cpp.o"
  "CMakeFiles/poc_econ.dir/entry.cpp.o.d"
  "CMakeFiles/poc_econ.dir/market_model.cpp.o"
  "CMakeFiles/poc_econ.dir/market_model.cpp.o.d"
  "CMakeFiles/poc_econ.dir/optimize.cpp.o"
  "CMakeFiles/poc_econ.dir/optimize.cpp.o.d"
  "CMakeFiles/poc_econ.dir/pricing_models.cpp.o"
  "CMakeFiles/poc_econ.dir/pricing_models.cpp.o.d"
  "CMakeFiles/poc_econ.dir/usage_pricing.cpp.o"
  "CMakeFiles/poc_econ.dir/usage_pricing.cpp.o.d"
  "CMakeFiles/poc_econ.dir/welfare.cpp.o"
  "CMakeFiles/poc_econ.dir/welfare.cpp.o.d"
  "libpoc_econ.a"
  "libpoc_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
