# Empty compiler generated dependencies file for poc_econ.
# This may be replaced when dependencies are built.
