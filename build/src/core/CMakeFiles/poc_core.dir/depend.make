# Empty dependencies file for poc_core.
# This may be replaced when dependencies are built.
