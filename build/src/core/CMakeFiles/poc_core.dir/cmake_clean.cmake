file(REMOVE_RECURSE
  "CMakeFiles/poc_core.dir/billing.cpp.o"
  "CMakeFiles/poc_core.dir/billing.cpp.o.d"
  "CMakeFiles/poc_core.dir/cdn.cpp.o"
  "CMakeFiles/poc_core.dir/cdn.cpp.o.d"
  "CMakeFiles/poc_core.dir/entities.cpp.o"
  "CMakeFiles/poc_core.dir/entities.cpp.o.d"
  "CMakeFiles/poc_core.dir/federation.cpp.o"
  "CMakeFiles/poc_core.dir/federation.cpp.o.d"
  "CMakeFiles/poc_core.dir/flow_sim.cpp.o"
  "CMakeFiles/poc_core.dir/flow_sim.cpp.o.d"
  "CMakeFiles/poc_core.dir/ledger.cpp.o"
  "CMakeFiles/poc_core.dir/ledger.cpp.o.d"
  "CMakeFiles/poc_core.dir/provisioning.cpp.o"
  "CMakeFiles/poc_core.dir/provisioning.cpp.o.d"
  "CMakeFiles/poc_core.dir/qos.cpp.o"
  "CMakeFiles/poc_core.dir/qos.cpp.o.d"
  "CMakeFiles/poc_core.dir/tos.cpp.o"
  "CMakeFiles/poc_core.dir/tos.cpp.o.d"
  "libpoc_core.a"
  "libpoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
