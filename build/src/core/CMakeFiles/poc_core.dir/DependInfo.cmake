
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/billing.cpp" "src/core/CMakeFiles/poc_core.dir/billing.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/billing.cpp.o.d"
  "/root/repo/src/core/cdn.cpp" "src/core/CMakeFiles/poc_core.dir/cdn.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/cdn.cpp.o.d"
  "/root/repo/src/core/entities.cpp" "src/core/CMakeFiles/poc_core.dir/entities.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/entities.cpp.o.d"
  "/root/repo/src/core/federation.cpp" "src/core/CMakeFiles/poc_core.dir/federation.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/federation.cpp.o.d"
  "/root/repo/src/core/flow_sim.cpp" "src/core/CMakeFiles/poc_core.dir/flow_sim.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/flow_sim.cpp.o.d"
  "/root/repo/src/core/ledger.cpp" "src/core/CMakeFiles/poc_core.dir/ledger.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/ledger.cpp.o.d"
  "/root/repo/src/core/provisioning.cpp" "src/core/CMakeFiles/poc_core.dir/provisioning.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/provisioning.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/core/CMakeFiles/poc_core.dir/qos.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/qos.cpp.o.d"
  "/root/repo/src/core/tos.cpp" "src/core/CMakeFiles/poc_core.dir/tos.cpp.o" "gcc" "src/core/CMakeFiles/poc_core.dir/tos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/poc_market.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/poc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/poc_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
