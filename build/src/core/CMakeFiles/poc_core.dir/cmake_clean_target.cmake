file(REMOVE_RECURSE
  "libpoc_core.a"
)
