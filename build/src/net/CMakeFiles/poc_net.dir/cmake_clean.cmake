file(REMOVE_RECURSE
  "CMakeFiles/poc_net.dir/connectivity.cpp.o"
  "CMakeFiles/poc_net.dir/connectivity.cpp.o.d"
  "CMakeFiles/poc_net.dir/failure.cpp.o"
  "CMakeFiles/poc_net.dir/failure.cpp.o.d"
  "CMakeFiles/poc_net.dir/graph.cpp.o"
  "CMakeFiles/poc_net.dir/graph.cpp.o.d"
  "CMakeFiles/poc_net.dir/ksp.cpp.o"
  "CMakeFiles/poc_net.dir/ksp.cpp.o.d"
  "CMakeFiles/poc_net.dir/maxflow.cpp.o"
  "CMakeFiles/poc_net.dir/maxflow.cpp.o.d"
  "CMakeFiles/poc_net.dir/mcf.cpp.o"
  "CMakeFiles/poc_net.dir/mcf.cpp.o.d"
  "CMakeFiles/poc_net.dir/mincostflow.cpp.o"
  "CMakeFiles/poc_net.dir/mincostflow.cpp.o.d"
  "CMakeFiles/poc_net.dir/shortest_path.cpp.o"
  "CMakeFiles/poc_net.dir/shortest_path.cpp.o.d"
  "libpoc_net.a"
  "libpoc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
