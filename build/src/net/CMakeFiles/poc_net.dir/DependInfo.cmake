
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/connectivity.cpp" "src/net/CMakeFiles/poc_net.dir/connectivity.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/connectivity.cpp.o.d"
  "/root/repo/src/net/failure.cpp" "src/net/CMakeFiles/poc_net.dir/failure.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/failure.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/poc_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/ksp.cpp" "src/net/CMakeFiles/poc_net.dir/ksp.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/ksp.cpp.o.d"
  "/root/repo/src/net/maxflow.cpp" "src/net/CMakeFiles/poc_net.dir/maxflow.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/maxflow.cpp.o.d"
  "/root/repo/src/net/mcf.cpp" "src/net/CMakeFiles/poc_net.dir/mcf.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/mcf.cpp.o.d"
  "/root/repo/src/net/mincostflow.cpp" "src/net/CMakeFiles/poc_net.dir/mincostflow.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/mincostflow.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/poc_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/poc_net.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
