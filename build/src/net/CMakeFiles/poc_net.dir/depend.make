# Empty dependencies file for poc_net.
# This may be replaced when dependencies are built.
