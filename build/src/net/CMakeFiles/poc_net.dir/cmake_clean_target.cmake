file(REMOVE_RECURSE
  "libpoc_net.a"
)
