# Empty compiler generated dependencies file for poc_util.
# This may be replaced when dependencies are built.
