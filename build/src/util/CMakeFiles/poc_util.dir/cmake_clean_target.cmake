file(REMOVE_RECURSE
  "libpoc_util.a"
)
