file(REMOVE_RECURSE
  "CMakeFiles/poc_util.dir/csv_export.cpp.o"
  "CMakeFiles/poc_util.dir/csv_export.cpp.o.d"
  "CMakeFiles/poc_util.dir/log.cpp.o"
  "CMakeFiles/poc_util.dir/log.cpp.o.d"
  "CMakeFiles/poc_util.dir/money.cpp.o"
  "CMakeFiles/poc_util.dir/money.cpp.o.d"
  "CMakeFiles/poc_util.dir/rng.cpp.o"
  "CMakeFiles/poc_util.dir/rng.cpp.o.d"
  "CMakeFiles/poc_util.dir/stats.cpp.o"
  "CMakeFiles/poc_util.dir/stats.cpp.o.d"
  "CMakeFiles/poc_util.dir/table.cpp.o"
  "CMakeFiles/poc_util.dir/table.cpp.o.d"
  "libpoc_util.a"
  "libpoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
