file(REMOVE_RECURSE
  "libpoc_market.a"
)
