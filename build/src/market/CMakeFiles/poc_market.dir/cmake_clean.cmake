file(REMOVE_RECURSE
  "CMakeFiles/poc_market.dir/bid.cpp.o"
  "CMakeFiles/poc_market.dir/bid.cpp.o.d"
  "CMakeFiles/poc_market.dir/constraints.cpp.o"
  "CMakeFiles/poc_market.dir/constraints.cpp.o.d"
  "CMakeFiles/poc_market.dir/manipulation.cpp.o"
  "CMakeFiles/poc_market.dir/manipulation.cpp.o.d"
  "CMakeFiles/poc_market.dir/pricing.cpp.o"
  "CMakeFiles/poc_market.dir/pricing.cpp.o.d"
  "CMakeFiles/poc_market.dir/vcg.cpp.o"
  "CMakeFiles/poc_market.dir/vcg.cpp.o.d"
  "CMakeFiles/poc_market.dir/windet.cpp.o"
  "CMakeFiles/poc_market.dir/windet.cpp.o.d"
  "libpoc_market.a"
  "libpoc_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
