# Empty dependencies file for poc_market.
# This may be replaced when dependencies are built.
