
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/bid.cpp" "src/market/CMakeFiles/poc_market.dir/bid.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/bid.cpp.o.d"
  "/root/repo/src/market/constraints.cpp" "src/market/CMakeFiles/poc_market.dir/constraints.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/constraints.cpp.o.d"
  "/root/repo/src/market/manipulation.cpp" "src/market/CMakeFiles/poc_market.dir/manipulation.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/manipulation.cpp.o.d"
  "/root/repo/src/market/pricing.cpp" "src/market/CMakeFiles/poc_market.dir/pricing.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/pricing.cpp.o.d"
  "/root/repo/src/market/vcg.cpp" "src/market/CMakeFiles/poc_market.dir/vcg.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/vcg.cpp.o.d"
  "/root/repo/src/market/windet.cpp" "src/market/CMakeFiles/poc_market.dir/windet.cpp.o" "gcc" "src/market/CMakeFiles/poc_market.dir/windet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/poc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/poc_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/poc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
