// Quickstart: the POC bandwidth auction on a toy market.
//
// Six bandwidth providers offer circuits between four POC routers; the
// POC picks the cheapest acceptable set for its traffic matrix and pays
// VCG (Clarke pivot) prices. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "market/vcg.hpp"
#include "util/table.hpp"

using namespace poc;
using util::operator""_usd;

int main() {
    // --- 1. The candidate network: 4 POC routers. --------------------
    net::Graph graph;
    const auto nyc = graph.add_node("NewYork");
    const auto chi = graph.add_node("Chicago");
    const auto dal = graph.add_node("Dallas");
    const auto sjc = graph.add_node("SanJose");

    // --- 2. Sealed bids: each BP offers links with minimal prices. ---
    std::vector<market::BpBid> bids;
    auto bid = [&](std::size_t idx, const std::string& name) -> market::BpBid& {
        bids.emplace_back(market::BpId{idx}, name);
        return bids.back();
    };

    auto& east = bid(0, "EastFiber");
    east.offer(graph.add_link(nyc, chi, 200.0, 1150.0), 5200_usd);
    east.offer(graph.add_link(chi, dal, 200.0, 1290.0), 5600_usd);
    east.add_discount(market::DiscountTier{2, 0.05});  // bundle both for 5% off

    auto& west = bid(1, "WestWave");
    west.offer(graph.add_link(dal, sjc, 200.0, 2300.0), 8100_usd);
    west.offer(graph.add_link(chi, sjc, 100.0, 2990.0), 9400_usd);

    auto& trunk = bid(2, "TransTrunk");
    trunk.offer(graph.add_link(nyc, sjc, 400.0, 4130.0), 16800_usd);

    auto& metro = bid(3, "MetroMesh");
    metro.offer(graph.add_link(nyc, chi, 100.0, 1190.0), 4900_usd);

    auto& south = bid(4, "SouthernLight");
    south.offer(graph.add_link(nyc, dal, 200.0, 2210.0), 7900_usd);

    auto& plains = bid(5, "PlainsNet");
    plains.offer(graph.add_link(chi, dal, 100.0, 1310.0), 5100_usd);

    // External ISP fallback: an expensive virtual link NYC<->SJC.
    market::VirtualLinkContract contract;
    contract.add(graph.add_link(nyc, sjc, 400.0, 4130.0), 39000_usd);

    const market::OfferPool pool(std::move(bids), contract, graph);

    // --- 3. Traffic matrix upper bound (Gbps). -----------------------
    const net::TrafficMatrix tm{
        {nyc, sjc, 120.0}, {sjc, nyc, 60.0}, {nyc, dal, 40.0},
        {chi, sjc, 50.0},  {dal, chi, 30.0},
    };

    // --- 4. Run the strategy-proof auction. --------------------------
    const market::AcceptabilityOracle oracle(graph, tm, market::ConstraintKind::kLoad);
    const auto result = market::run_auction(pool, oracle);
    if (!result) {
        std::cerr << "offers cannot carry the traffic matrix\n";
        return 1;
    }

    std::cout << "Selected backbone (" << result->selection.links.size() << " links, C(SL) = "
              << result->selection.cost << "):\n";
    for (const net::LinkId l : result->selection.links) {
        const net::Link& link = graph.link(l);
        const market::BpId owner = pool.owner(l);
        std::cout << "  " << graph.node_label(link.a) << " - " << graph.node_label(link.b)
                  << "  " << link.capacity_gbps << "G  ["
                  << (owner.valid() ? pool.bid(owner).name() : std::string("virtual")) << "]\n";
    }

    util::Table table({"BP", "links won", "bid C_a(SL_a)", "payment P_a", "PoB"});
    for (const market::BpOutcome& out : result->outcomes) {
        table.add_row({out.name, util::cell(out.selected_links.size()), out.bid_cost.str(),
                       out.payment.str(), util::cell(out.pob, 3)});
    }
    std::cout << "\n" << table.render();
    std::cout << "\nPOC monthly outlay (BP payments + virtual contracts): "
              << result->total_outlay << "\n";
    return 0;
}
