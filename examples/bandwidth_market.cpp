// Full bandwidth-market scenario: a generated continental topology,
// auction-provisioned POC backbone, and four leasing epochs with the
// dynamics of paper section 3.3 - demand growth, a cloud-provider BP
// recalling leased capacity for its own use, a link failure, and a
// price shift. Prints per-epoch market telemetry.
//
//   ./build/examples/bandwidth_market
//
// Set POC_OBS_SNAPSHOT=<path-prefix> to also dump the run's obs
// snapshot: <prefix>.json (counters, gauges, histograms, spans) plus
// the metrics table on stdout. See DESIGN.md §5a.
#include <array>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "market/pricing.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "sim/scenario.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;

int main() {
    // Moderate scale so the example runs in a few seconds.
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 10;
    bopt.min_cities = 8;
    bopt.max_cities = 20;
    bopt.seed = 2024;
    auto bps = topo::generate_bp_networks(bopt);

    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 4;
    auto topology = topo::build_poc_topology(bps, popt);
    std::cout << "POC topology: " << topology.router_city.size() << " routers, "
              << topology.graph.link_count() << " offered logical links from "
              << topology.bp_count << " BPs\n";

    market::VirtualLinkOptions vopt;
    vopt.attach_count = 4;
    const market::OfferPool pool = market::make_offer_pool(topology, {}, vopt);

    topo::GravityOptions gopt;
    gopt.total_gbps = 1200.0;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 40);
    std::cout << "Traffic matrix: " << tm.size() << " demands, "
              << net::total_demand(tm) << " Gbps total\n\n";

    // Scenario: epoch 1 demand +30%; epoch 2 the largest BP (a cloud
    // provider that overbought) recalls 60% of its offered capacity;
    // epoch 3 a selected link fails and a rival raises prices 40%.
    std::vector<sim::ScenarioEvent> events(4);
    events[0].kind = sim::ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 1.3;
    events[1].kind = sim::ScenarioEvent::Kind::kBpRecall;
    events[1].epoch = 2;
    events[1].bp = 0;
    events[1].fraction = 0.6;
    events[2].kind = sim::ScenarioEvent::Kind::kLinkFailure;
    events[2].epoch = 3;
    events[2].count = 2;
    events[3].kind = sim::ScenarioEvent::Kind::kPriceShift;
    events[3].epoch = 3;
    events[3].bp = 1;
    events[3].factor = 1.4;

    sim::ScenarioOptions sopt;
    sopt.epochs = 4;
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    sopt.request.oracle = oopt;
    sopt.request.constraint = market::ConstraintKind::kLoad;

#if POC_OBS_ENABLED
    // Per-epoch data-plane telemetry: the scenario shares one
    // net::PathCache across its auctions and flow sims
    // (ScenarioOptions::use_path_cache), so the SSSP/path-cache counter
    // deltas show how much routing work each epoch reused vs recomputed.
    // Lifetime totals land in the obs snapshot below.
    auto net_counters = [] {
        obs::MetricsRegistry& reg = obs::registry();
        return std::array<std::uint64_t, 4>{
            reg.counter("net.sssp.runs").value(),
            reg.counter("net.path_cache.hits").value(),
            reg.counter("net.path_cache.misses").value(),
            reg.counter("net.path_cache.evictions").value(),
        };
    };
    auto last = net_counters();
    sopt.on_epoch = [&](const sim::EpochOutcome& o) {
        const auto now = net_counters();
        std::cout << "epoch " << o.epoch << " data plane: sssp_runs=" << now[0] - last[0]
                  << "  path_cache hits=" << now[1] - last[1]
                  << " misses=" << now[2] - last[2] << " evictions=" << now[3] - last[3]
                  << "\n";
        last = now;
    };
#endif

    const auto outcomes = sim::run_scenario(pool, tm, events, sopt);
    std::cout << "\n";

    util::Table table({"epoch", "events", "offered", "selected", "demand Gbps",
                       "outlay", "mean PoB", "max util", "virt share"});
    for (const sim::EpochOutcome& o : outcomes) {
        std::string ev;
        for (const auto& e : o.applied_events) ev += (ev.empty() ? "" : "; ") + e;
        if (ev.empty()) ev = "-";
        table.add_row({util::cell(o.epoch), ev, util::cell(o.offered_links),
                       util::cell(o.selected_links), util::cell(o.total_demand_gbps, 0),
                       o.provisioned ? o.outlay.str() : "INFEASIBLE",
                       util::cell(o.mean_pob, 3), util::cell_pct(o.flows.max_utilization),
                       util::cell_pct(o.flows.virtual_share)});
    }
    std::cout << table.render();

    std::cout << "\nReading: demand growth (epoch 1) pulls more links into the backbone;\n"
                 "the recall (epoch 2) shrinks the offer pool and raises the clearing\n"
                 "outlay; failures and the rival price hike (epoch 3) raise it further,\n"
                 "but the external-ISP virtual links cap how far payments can climb\n"
                 "(section 3.3's bound on manipulation and scarcity).\n";

#if POC_OBS_ENABLED
    // Observability snapshot of everything the run just did: auction
    // pivots and cache hits, flow admissions, ledger settlement.
    const obs::Snapshot snap = obs::Snapshot::capture(/*drain_spans=*/true);
    std::cout << "\n=== Observability snapshot (src/obs) ===\n"
              << snap.metrics_table().render();
    if (const char* prefix = std::getenv("POC_OBS_SNAPSHOT"); prefix != nullptr) {
        const std::string path = std::string(prefix) + ".json";
        std::ofstream out(path);
        out << snap.json();
        std::cout << "wrote obs snapshot to " << path << "\n";
    }
#endif
    return 0;
}
