// Network-neutrality economics (paper section 4): a market of CSPs and
// LMPs evaluated under the three regimes - network neutrality, unilateral
// termination fees (double marginalization), and Nash-bargained fees -
// showing the welfare loss from fees and the incumbent advantage.
//
//   ./build/examples/neutrality_analysis
#include <iostream>

#include "econ/market_model.hpp"
#include "util/table.hpp"

using namespace poc;
using econ::Regime;

int main() {
    econ::Market market;
    market.lmps = {
        {"CableCo (incumbent)", 6.0, 55.0, 0.0},
        {"FiberStart (entrant)", 1.0, 45.0, 0.0},
    };

    econ::CspProfile video;
    video.name = "StreamFlix (incumbent)";
    video.demand = std::make_shared<econ::LinearDemand>(20.0);
    // A must-have service: blocking it costs the incumbent LMP 12% of
    // affected customers, the fragile entrant 30%.
    video.churn_by_lmp = {0.12, 0.30};

    econ::CspProfile newcomer;
    newcomer.name = "NicheTV (entrant)";
    newcomer.demand = std::make_shared<econ::LinearDemand>(20.0);
    // Nobody switches providers over a niche service.
    newcomer.churn_by_lmp = {0.01, 0.05};

    econ::CspProfile social;
    social.name = "ChatterBox";
    social.demand = std::make_shared<econ::ExponentialDemand>(8.0);
    social.churn_by_lmp = {0.10, 0.30};

    market.csps = {video, newcomer, social};

    const auto reports = econ::evaluate_all(market);

    std::cout << "== Regime comparison (per unit consumer mass, $/month) ==\n\n";
    util::Table regimes({"regime", "social welfare", "consumer welfare", "CSP profit",
                         "LMP fee revenue"});
    for (const econ::RegimeReport& r : reports) {
        regimes.add_row({econ::regime_name(r.regime), util::cell(r.total_social_welfare, 2),
                         util::cell(r.total_consumer_welfare, 2),
                         util::cell(r.total_csp_profit, 2),
                         util::cell(r.total_lmp_fee_revenue, 2)});
    }
    std::cout << regimes.render();

    std::cout << "\n== Per-CSP detail under bargained fees (section 4.5) ==\n\n";
    const econ::RegimeReport& bargain = reports[2];
    util::Table fees({"CSP", "posted price", "fee @ incumbent LMP", "fee @ entrant LMP",
                      "avg fee", "CSP profit"});
    for (const econ::CspOutcome& o : bargain.csp_outcomes) {
        fees.add_row({o.name, util::cell(o.posted_price, 2), util::cell(o.fee_by_lmp[0], 2),
                      util::cell(o.fee_by_lmp[1], 2), util::cell(o.avg_fee, 2),
                      util::cell(o.csp_profit, 2)});
    }
    std::cout << fees.render();

    std::cout <<
        "\nReading:\n"
        " * Social welfare: NN > bargaining > unilateral - any termination fee\n"
        "   raises posted prices and destroys surplus (Lemma 1 + section 4.4).\n"
        " * The incumbent LMP (low churn if a service is blocked) extracts a\n"
        "   higher fee than the entrant from every CSP.\n"
        " * The incumbent CSP (high churn if lost) negotiates lower fees than\n"
        "   the identical-demand entrant CSP - the incumbent advantage that\n"
        "   motivates the POC's contractual network neutrality.\n";
    return 0;
}
