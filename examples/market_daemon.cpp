// Always-on market daemon: serve quotes, paths, and SLA status while
// the epoch runtime clears the market underneath (DESIGN.md §8).
//
// A ServeEngine attaches to a journaled 4-epoch run. Each commit is
// frozen into an immutable EpochView and published RCU-style; the
// example queries the daemon from inside the rollover hook (any thread
// would do — queries are wait-free with respect to commits), trips
// admission control on an over-quota account, reconciles the service-
// fee ledger, and asks a point-in-time question about epoch 2. Build &
// run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/market_daemon
//
// Replicated read tier (DESIGN.md §8.6) — the multi-process smoke:
//
//   ./build/examples/market_daemon --writer   DIR &   # leader process
//   ./build/examples/market_daemon --follower DIR     # replica process
//
// The writer runs a paced, journaled, snapshotting + compacting run in
// DIR; the follower is a separate process that bootstraps from the
// newest snapshot, tails the live journal read-only (riding through
// torn tails and compaction swaps), and serves a bounded-staleness
// quote from its replica state once caught up.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <thread>

#include "serve/engine.hpp"
#include "serve/follower.hpp"
#include "sim/runtime.hpp"

using namespace poc;
using util::operator""_usd;

namespace {

/// The toy market: 4 POC routers, 3 BPs. Writer and follower processes
/// must build the *same* instance — it is part of the run's
/// configuration fingerprint.
struct Market {
    net::Graph graph;
    net::NodeId nyc, chi, dal, sjc;
    std::vector<market::BpBid> bids;

    Market() {
        nyc = graph.add_node("NewYork");
        chi = graph.add_node("Chicago");
        dal = graph.add_node("Dallas");
        sjc = graph.add_node("SanJose");
        bids.emplace_back(market::BpId{std::size_t{0}}, "EastFiber");
        bids.back().offer(graph.add_link(nyc, chi, 200.0, 1150.0), 5200_usd);
        bids.back().offer(graph.add_link(chi, dal, 200.0, 1290.0), 5600_usd);
        bids.emplace_back(market::BpId{std::size_t{1}}, "WestWave");
        bids.back().offer(graph.add_link(dal, sjc, 200.0, 2300.0), 8100_usd);
        bids.back().offer(graph.add_link(chi, sjc, 100.0, 2990.0), 9400_usd);
        bids.emplace_back(market::BpId{std::size_t{2}}, "MetroMesh");
        bids.back().offer(graph.add_link(nyc, chi, 100.0, 1190.0), 4900_usd);
    }

    market::OfferPool pool() const { return market::OfferPool(bids, {}, graph); }
    net::TrafficMatrix tm() const {
        return {{nyc, sjc, 60.0}, {nyc, dal, 40.0}, {chi, sjc, 30.0}, {dal, chi, 20.0}};
    }
};

/// The replicated-tier run configuration: identical in the writer and
/// follower processes (journal path, epochs, seed — the fingerprint),
/// with snapshots + compaction on so the follower exercises snapshot
/// bootstrap and the compaction-swap re-ground against a live leader.
sim::RuntimeOptions replicated_options(const std::filesystem::path& dir) {
    sim::RuntimeOptions ropt;
    ropt.epochs = 6;
    ropt.seed = 42;
    ropt.journal_path = (dir / "market.wal").string();
    ropt.snapshot_interval = 2;
    return ropt;
}

int run_writer(const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    const Market mkt;
    const market::OfferPool pool = mkt.pool();
    const net::TrafficMatrix tm = mkt.tm();

    sim::RuntimeOptions ropt = replicated_options(dir);
    // Pace the run so a follower started alongside genuinely tails a
    // *live* journal instead of replaying a finished one.
    ropt.on_epoch_commit = [](const sim::EpochCommit& commit) {
        std::cout << "writer: epoch " << commit.epoch << " committed ("
                  << commit.completed_epochs << "/6)" << std::endl;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    };
    sim::EpochRuntime(pool, tm, ropt).run();
    std::cout << "writer: done" << std::endl;
    return 0;
}

int run_follower(const std::filesystem::path& dir) {
    const Market mkt;
    const market::OfferPool pool = mkt.pool();
    const net::TrafficMatrix tm = mkt.tm();

    serve::FollowerOptions fopt;
    fopt.runtime = replicated_options(dir);
    // The writer may not have created the journal yet; give the stall
    // window room to wait it out (progress resets the window).
    fopt.tail_backoff.max_attempts = 64;
    serve::Follower follower(pool, tm, fopt);
    follower.tail_until(fopt.runtime.epochs);

    const serve::FollowerStats& stats = follower.stats();
    const auto view = follower.current();
    if (!view || follower.applied_epochs() != fopt.runtime.epochs) {
        std::cerr << "follower: failed to converge (applied " << follower.applied_epochs()
                  << "/" << fopt.runtime.epochs << ")\n";
        return 1;
    }
    std::cout << "follower: caught up at " << view->completed_epochs << " epochs (lag "
              << follower.lag_epochs() << ", " << stats.records_applied << " records, "
              << stats.rebootstraps << " snapshot re-ground(s), " << stats.torn_tail_polls
              << " torn-tail poll(s))" << std::endl;

    // A bounded-staleness replica read: demand freshness within one
    // epoch of what the journal can prove.
    const auto quote = follower.quote("EastFiber", /*max_lag_epochs=*/1);
    if (quote.code != serve::ServeError::kOk) {
        std::cerr << "follower: quote refused: " << serve::serve_error_name(quote.code)
                  << "\n";
        return 1;
    }
    std::cout << "follower: EastFiber payment " << quote.quote.payment
              << " served from replica state" << std::endl;
    return 0;
}

int run_demo() {
    const Market mkt;
    const market::OfferPool pool = mkt.pool();
    const net::TrafficMatrix tm = mkt.tm();

    // --- 2. The daemon, attached to a journaled runtime. -------------
    const auto dir = std::filesystem::temp_directory_path() / "poc_market_daemon";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    sim::RuntimeOptions ropt;
    ropt.epochs = 4;
    ropt.seed = 42;
    ropt.journal_path = (dir / "market.wal").string();
    ropt.snapshot_interval = 2;
    ropt.compact_after_snapshot = false;  // keep every epoch provable

    serve::ServeOptions sopt;
    sopt.meter.quota_units = 40.0;  // decayed usage ceiling per account
    serve::ServeEngine daemon(pool, tm, ropt, sopt);
    daemon.attach(ropt);

    // Chain our own observer after the daemon's publish hook: the
    // queries below run *during* the simulation, against the epoch
    // that just rolled over.
    const auto publish = ropt.on_epoch_commit;
    ropt.on_epoch_commit = [&](const sim::EpochCommit& commit) {
        publish(commit);
        const auto quote = daemon.quote("noc", "EastFiber");
        const auto path = daemon.path("noc", mkt.nyc, mkt.sjc);
        const auto sla = daemon.sla("noc");
        std::cout << "epoch " << commit.epoch << ": EastFiber payment " << quote.quote.payment
                  << ", NYC->SJC " << path.links.size() << " hops / " << path.length_km
                  << " km, SLA " << serve::sla_status_name(sla.status) << " (delivered "
                  << sla.delivered_fraction << ")\n";
    };

    std::cout << "running 4 market epochs with the daemon attached...\n";
    sim::EpochRuntime(pool, tm, ropt).run();

    // --- 3. Admission control: an account that won't stop asking. ----
    std::size_t served = 0;
    serve::ServeError code = serve::ServeError::kOk;
    while (code == serve::ServeError::kOk) {
        code = daemon.quote("freeloader", "WestWave").code;
        if (code == serve::ServeError::kOk) ++served;
    }
    std::cout << "\nfreeloader: " << served << " quotes served, then "
              << serve::serve_error_name(code) << " (quota "
              << sopt.meter.quota_units << " units); paid accounts unaffected: "
              << serve::serve_error_name(daemon.quote("noc", "EastFiber").code) << "\n";

    // --- 4. Rollover billing: flush usage into the service-fee ledger.
    const auto rec = daemon.meter().reconcile(/*epoch=*/4);
    const auto ledger = daemon.meter().billing_ledger();
    std::cout << "reconciled " << rec.accounts_flushed << " accounts, " << rec.flushed
              << " in service fees, ledger "
              << (rec.balanced && ledger.conserves() ? "balanced" : "MISMATCH") << "\n";

    // --- 5. Point-in-time: the market as of 2 completed epochs. ------
    const auto hist = daemon.at_epoch("analyst", 2);
    if (hist.code == serve::ServeError::kOk) {
        std::cout << "as of epoch " << hist.view->epoch << ": POC net "
                  << hist.view->poc_net << ", delivered "
                  << hist.view->record.delivered_fraction << " (rebuilt from snapshot + "
                  << "read-only journal replay, bit-identical to a from-scratch run)\n";
    }

    std::filesystem::remove_all(dir);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 3 && std::strcmp(argv[1], "--writer") == 0) {
        return run_writer(argv[2]);
    }
    if (argc == 3 && std::strcmp(argv[1], "--follower") == 0) {
        return run_follower(argv[2]);
    }
    if (argc != 1) {
        std::cerr << "usage: market_daemon [--writer DIR | --follower DIR]\n";
        return 2;
    }
    return run_demo();
}
