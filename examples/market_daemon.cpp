// Always-on market daemon: serve quotes, paths, and SLA status while
// the epoch runtime clears the market underneath (DESIGN.md §8).
//
// A ServeEngine attaches to a journaled 4-epoch run. Each commit is
// frozen into an immutable EpochView and published RCU-style; the
// example queries the daemon from inside the rollover hook (any thread
// would do — queries are wait-free with respect to commits), trips
// admission control on an over-quota account, reconciles the service-
// fee ledger, and asks a point-in-time question about epoch 2. Build &
// run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/market_daemon
#include <filesystem>
#include <iostream>

#include "serve/engine.hpp"
#include "sim/runtime.hpp"

using namespace poc;
using util::operator""_usd;

int main() {
    // --- 1. A toy market: 4 POC routers, 3 BPs. ----------------------
    net::Graph graph;
    const auto nyc = graph.add_node("NewYork");
    const auto chi = graph.add_node("Chicago");
    const auto dal = graph.add_node("Dallas");
    const auto sjc = graph.add_node("SanJose");

    std::vector<market::BpBid> bids;
    bids.emplace_back(market::BpId{std::size_t{0}}, "EastFiber");
    bids.back().offer(graph.add_link(nyc, chi, 200.0, 1150.0), 5200_usd);
    bids.back().offer(graph.add_link(chi, dal, 200.0, 1290.0), 5600_usd);
    bids.emplace_back(market::BpId{std::size_t{1}}, "WestWave");
    bids.back().offer(graph.add_link(dal, sjc, 200.0, 2300.0), 8100_usd);
    bids.back().offer(graph.add_link(chi, sjc, 100.0, 2990.0), 9400_usd);
    bids.emplace_back(market::BpId{std::size_t{2}}, "MetroMesh");
    bids.back().offer(graph.add_link(nyc, chi, 100.0, 1190.0), 4900_usd);
    const market::OfferPool pool(std::move(bids), {}, graph);

    const net::TrafficMatrix tm{
        {nyc, sjc, 60.0}, {nyc, dal, 40.0}, {chi, sjc, 30.0}, {dal, chi, 20.0},
    };

    // --- 2. The daemon, attached to a journaled runtime. -------------
    const auto dir = std::filesystem::temp_directory_path() / "poc_market_daemon";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    sim::RuntimeOptions ropt;
    ropt.epochs = 4;
    ropt.seed = 42;
    ropt.journal_path = (dir / "market.wal").string();
    ropt.snapshot_interval = 2;
    ropt.compact_after_snapshot = false;  // keep every epoch provable

    serve::ServeOptions sopt;
    sopt.meter.quota_units = 40.0;  // decayed usage ceiling per account
    serve::ServeEngine daemon(pool, tm, ropt, sopt);
    daemon.attach(ropt);

    // Chain our own observer after the daemon's publish hook: the
    // queries below run *during* the simulation, against the epoch
    // that just rolled over.
    const auto publish = ropt.on_epoch_commit;
    ropt.on_epoch_commit = [&](const sim::EpochCommit& commit) {
        publish(commit);
        const auto quote = daemon.quote("noc", "EastFiber");
        const auto path = daemon.path("noc", nyc, sjc);
        const auto sla = daemon.sla("noc");
        std::cout << "epoch " << commit.epoch << ": EastFiber payment " << quote.quote.payment
                  << ", NYC->SJC " << path.links.size() << " hops / " << path.length_km
                  << " km, SLA " << serve::sla_status_name(sla.status) << " (delivered "
                  << sla.delivered_fraction << ")\n";
    };

    std::cout << "running 4 market epochs with the daemon attached...\n";
    sim::EpochRuntime(pool, tm, ropt).run();

    // --- 3. Admission control: an account that won't stop asking. ----
    std::size_t served = 0;
    serve::ServeError code = serve::ServeError::kOk;
    while (code == serve::ServeError::kOk) {
        code = daemon.quote("freeloader", "WestWave").code;
        if (code == serve::ServeError::kOk) ++served;
    }
    std::cout << "\nfreeloader: " << served << " quotes served, then "
              << serve::serve_error_name(code) << " (quota "
              << sopt.meter.quota_units << " units); paid accounts unaffected: "
              << serve::serve_error_name(daemon.quote("noc", "EastFiber").code) << "\n";

    // --- 4. Rollover billing: flush usage into the service-fee ledger.
    const auto rec = daemon.meter().reconcile(/*epoch=*/4);
    const auto ledger = daemon.meter().billing_ledger();
    std::cout << "reconciled " << rec.accounts_flushed << " accounts, " << rec.flushed
              << " in service fees, ledger "
              << (rec.balanced && ledger.conserves() ? "balanced" : "MISMATCH") << "\n";

    // --- 5. Point-in-time: the market as of 2 completed epochs. ------
    const auto hist = daemon.at_epoch("analyst", 2);
    if (hist.code == serve::ServeError::kOk) {
        std::cout << "as of epoch " << hist.view->epoch << ": POC net "
                  << hist.view->poc_net << ", delivered "
                  << hist.view->record.delivered_fraction << " (rebuilt from snapshot + "
                  << "read-only journal replay, bit-identical to a from-scratch run)\n";
    }

    std::filesystem::remove_all(dir);
    return 0;
}
