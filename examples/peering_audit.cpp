// Terms-of-service audit: the POC's contractual network-neutrality
// conditions (paper section 3.4) applied to the declared traffic
// policies of three LMPs - one clean, one subtly discriminatory, one
// openly violating. Demonstrates the service-discrimination vs QoS
// distinction the paper draws.
//
//   ./build/examples/peering_audit
#include <iostream>

#include "core/tos.hpp"
#include "util/table.hpp"

using namespace poc;
using core::PolicyAction;
using core::PolicyRule;
using core::TrafficSelector;

namespace {

PolicyRule rule(std::string description, PolicyAction action, TrafficSelector selector,
                bool openly_priced = false, bool security = false) {
    PolicyRule r;
    r.description = std::move(description);
    r.action = action;
    r.selector = selector;
    r.openly_priced = openly_priced;
    r.security_exception = security;
    return r;
}

void print_report(const core::AuditReport& report) {
    std::cout << "== " << report.lmp_name << " : "
              << (report.compliant ? "COMPLIANT" : "VIOLATIONS FOUND") << " ("
              << report.violation_count() << " finding(s)) ==\n";
    util::Table table({"policy", "verdict"});
    for (const core::RuleFinding& f : report.findings) {
        table.add_row({f.rule.description, core::verdict_name(f.verdict)});
    }
    std::cout << table.render() << "\n";
}

}  // namespace

int main() {
    core::LmpPolicy clean;
    clean.lmp_name = "GoodAccess";
    clean.rules = {
        rule("Premium low-latency tier, posted price, any customer",
             PolicyAction::kPrioritize, TrafficSelector::kAll, /*openly_priced=*/true),
        rule("Open CDN colocation at published rates", PolicyAction::kProvideCdn,
             TrafficSelector::kAll, true),
        rule("Drop spoofed-source DDoS floods", PolicyAction::kBlock,
             TrafficSelector::kBySource, false, /*security=*/true),
        rule("Any third party may deploy caches at posted colo fee",
             PolicyAction::kAllowThirdPartyCdn, TrafficSelector::kAll, true),
    };

    core::LmpPolicy subtle;
    subtle.lmp_name = "SneakyNet";
    subtle.rules = {
        rule("'Partner fast lane': paid priority for StreamFlix traffic only",
             PolicyAction::kPrioritize, TrafficSelector::kBySource, true),
        rule("In-house CDN serves only our own video service", PolicyAction::kProvideCdn,
             TrafficSelector::kBySource),
        rule("Cache deployment offered exclusively to StreamFlix",
             PolicyAction::kAllowThirdPartyCdn, TrafficSelector::kBySource),
    };

    core::LmpPolicy blatant;
    blatant.lmp_name = "TollBoothISP";
    blatant.rules = {
        rule("Charge remote CSPs $0.50/GB to reach our subscribers",
             PolicyAction::kChargeTerminationFee, TrafficSelector::kAll),
        rule("Throttle video from CSPs who have not paid", PolicyAction::kDeprioritize,
             TrafficSelector::kByApplication),
        rule("Block VoIP competing with our phone bundle", PolicyAction::kBlock,
             TrafficSelector::kByApplication),
    };

    for (const auto& policy : {clean, subtle, blatant}) {
        print_report(core::audit_lmp(policy));
    }

    std::cout
        << "Note: SneakyNet's fast lane is *paid*, but keyed to one source - the\n"
           "POC's conditions treat that as service discrimination, not QoS.\n"
           "GoodAccess sells the same priority to anyone at a posted price, which\n"
           "the paper explicitly allows (section 3.1).\n";
    return 0;
}
