// TopologyZoo import pipeline: parse a GraphML backbone (the dataset
// the paper's Figure 2 used), map it onto the gazetteer, and run the
// bandwidth auction on the imported network alongside synthetic BPs.
// With the real TopologyZoo files on disk this is the paper's exact
// input; here we embed a small sample so the example is self-contained.
//
//   ./build/examples/zoo_import [file.graphml ...]
#include <fstream>
#include <iostream>
#include <sstream>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/graphml.hpp"
#include "topo/traffic.hpp"
#include "util/table.hpp"

using namespace poc;

namespace {

// An Abilene-flavoured sample backbone (11 US PoPs).
const char* kSampleGraphml = R"(<?xml version="1.0"?>
<graphml>
  <key attr.name="Latitude" attr.type="double" for="node" id="dlat" />
  <key attr.name="Longitude" attr.type="double" for="node" id="dlon" />
  <key attr.name="label" attr.type="string" for="node" id="dlbl" />
  <key attr.name="Network" attr.type="string" for="graph" id="dnet" />
  <graph edgedefault="undirected">
    <data key="dnet">SampleAbilene</data>
    <node id="0"><data key="dlbl">NewYork</data><data key="dlat">40.71</data><data key="dlon">-74.00</data></node>
    <node id="1"><data key="dlbl">Chicago</data><data key="dlat">41.88</data><data key="dlon">-87.63</data></node>
    <node id="2"><data key="dlbl">WashingtonDC</data><data key="dlat">38.90</data><data key="dlon">-77.04</data></node>
    <node id="3"><data key="dlbl">Seattle</data><data key="dlat">47.61</data><data key="dlon">-122.33</data></node>
    <node id="4"><data key="dlbl">Sunnyvale</data><data key="dlat">37.37</data><data key="dlon">-122.04</data></node>
    <node id="5"><data key="dlbl">LosAngeles</data><data key="dlat">34.05</data><data key="dlon">-118.24</data></node>
    <node id="6"><data key="dlbl">Denver</data><data key="dlat">39.74</data><data key="dlon">-104.99</data></node>
    <node id="7"><data key="dlbl">KansasCity</data><data key="dlat">39.10</data><data key="dlon">-94.58</data></node>
    <node id="8"><data key="dlbl">Houston</data><data key="dlat">29.76</data><data key="dlon">-95.37</data></node>
    <node id="9"><data key="dlbl">Atlanta</data><data key="dlat">33.75</data><data key="dlon">-84.39</data></node>
    <node id="10"><data key="dlbl">Indianapolis</data><data key="dlat">39.77</data><data key="dlon">-86.16</data></node>
    <edge source="0" target="1" /><edge source="0" target="2" />
    <edge source="1" target="10" /><edge source="2" target="9" />
    <edge source="3" target="4" /><edge source="3" target="6" />
    <edge source="4" target="5" /><edge source="4" target="6" />
    <edge source="5" target="8" /><edge source="6" target="7" />
    <edge source="7" target="8" /><edge source="7" target="10" />
    <edge source="8" target="9" /><edge source="9" target="10" />
  </graph>
</graphml>)";

}  // namespace

int main(int argc, char** argv) {
    // Imported networks: files from the command line, else the sample.
    std::vector<topo::BpNetwork> bps;
    topo::ZooImportOptions import_opt;
    import_opt.capacity_gbps = 200.0;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i) {
            std::ifstream in(argv[i]);
            if (!in) {
                std::cerr << "cannot open " << argv[i] << "\n";
                return 1;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            bps.push_back(topo::bp_from_zoo(topo::parse_graphml(buf.str()), import_opt));
            std::cout << "imported " << bps.back().name << ": " << bps.back().cities.size()
                      << " metros, " << bps.back().physical.link_count() << " circuits\n";
        }
    } else {
        bps.push_back(topo::bp_from_zoo(topo::parse_graphml(kSampleGraphml), import_opt));
        std::cout << "no files given; using embedded sample '" << bps.front().name << "' ("
                  << bps.front().cities.size() << " metros, "
                  << bps.front().physical.link_count() << " circuits)\n";
    }

    // Mix with synthetic carriers so colocation (>= 3 BPs) happens.
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 5;
    bopt.min_cities = 8;
    bopt.max_cities = 16;
    bopt.seed = 12;
    for (auto& synth : topo::generate_bp_networks(bopt)) bps.push_back(std::move(synth));

    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    auto topology = topo::build_poc_topology(bps, popt);
    std::cout << "POC topology: " << topology.router_city.size() << " routers, "
              << topology.graph.link_count() << " offered logical links\n\n";

    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    const market::OfferPool pool = market::make_offer_pool(topology, {}, vopt);

    topo::GravityOptions gopt;
    gopt.total_gbps = 600.0;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 30);

    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(pool.graph(), tm,
                                             market::ConstraintKind::kLoad, oopt);
    const auto result = market::run_auction(pool, oracle);
    if (!result) {
        std::cerr << "auction infeasible\n";
        return 1;
    }

    util::Table table({"BP", "offered", "won", "bid", "payment", "PoB"});
    for (const market::BpOutcome& out : result->outcomes) {
        const auto offered = pool.bid(out.bp).offered_links().size();
        table.add_row({out.name, util::cell(offered), util::cell(out.selected_links.size()),
                       out.bid_cost.str(), out.payment.str(), util::cell(out.pob, 3)});
    }
    std::cout << table.render();
    std::cout << "\nTotal outlay: " << result->total_outlay
              << " for " << result->selection.links.size() << " links\n";
    std::cout << "\n(The first row is the *imported* network competing in the same\n"
                 "auction as the synthetic carriers. Point this binary at real\n"
                 "TopologyZoo .graphml files to rebuild the paper's input.)\n";
    return 0;
}
