// Durable epoch runtime: crash-recovery bit-identity, torn-tail
// handling, retry/backoff pinning, and breaker-driven degradation.
#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "helpers/market.hpp"
#include "obs/metrics.hpp"

namespace poc::sim {
namespace {

using test::ParallelLinksFixture;

/// Byte-exact comparison key for an optional auction result. The
/// work-accounting diagnostics (oracle query and cache-hit counts)
/// are scrubbed first: they legitimately vary across engine configs
/// and retry counts (DESIGN.md §5, test_auction_parallel.cpp), while
/// bit-identity covers the economic outcome.
std::string auction_bytes(const std::optional<market::AuctionResult>& a) {
    util::BinaryWriter w;
    w.boolean(a.has_value());
    if (a) {
        market::AuctionResult scrubbed = *a;
        scrubbed.oracle_queries = 0;
        scrubbed.oracle_cache_hits = 0;
        scrubbed.solve_cache_hits = 0;
        market::write_auction_result(w, scrubbed);
    }
    return w.bytes();
}

/// Everything bit-identity covers: per-epoch records, every auction
/// outcome, the full ledger, and the RNG stream position. Recovery
/// diagnostics (replay_ms etc.) are intentionally excluded.
void expect_identical(const RuntimeOutcome& got, const RuntimeOutcome& want,
                      const std::string& context) {
    EXPECT_EQ(got.epochs, want.epochs) << context;
    EXPECT_EQ(got.ledger.transfers(), want.ledger.transfers()) << context;
    EXPECT_TRUE(got.final_rng == want.final_rng) << context;
    ASSERT_EQ(got.auctions.size(), want.auctions.size()) << context;
    for (std::size_t i = 0; i < got.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(got.auctions[i]), auction_bytes(want.auctions[i]))
            << context << " (epoch " << i << ")";
    }
}

class RuntimeTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Per-test directory: ctest runs each case as its own process,
        // so a shared fixed path would let concurrent cases clobber
        // each other's journals via remove_all.
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_runtime_test_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string journal(const std::string& name) const { return (dir_ / name).string(); }

    /// Base options: 3 epochs of the single-failure-resilient pipeline
    /// over the 3-parallel-links fixture.
    RuntimeOptions base_options() const {
        RuntimeOptions opt;
        opt.epochs = 3;
        opt.seed = 7;
        opt.demand_jitter = 0.05;
        opt.request.constraint = market::ConstraintKind::kSingleFailure;
        return opt;
    }

    ParallelLinksFixture fx_;
    std::filesystem::path dir_;
};

TEST_F(RuntimeTest, HealthyRunProvisionsAndSettles) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome out = EpochRuntime(pool, tm, opt).run();

    ASSERT_EQ(out.epochs.size(), 3u);
    for (const EpochRecord& rec : out.epochs) {
        EXPECT_TRUE(rec.provisioned);
        EXPECT_FALSE(rec.degraded_mode);
        EXPECT_FALSE(rec.breaker_open);
        EXPECT_EQ(rec.retry_attempts, 1u);
        EXPECT_NEAR(rec.delivered_fraction, 1.0, 1e-9);
        EXPECT_GT(rec.outlay, util::Money{});
    }
    // Single-failure resilience on parallel links needs two circuits.
    ASSERT_TRUE(out.auctions[0].has_value());
    EXPECT_EQ(out.auctions[0]->selection.links.size(), 2u);
    // Settlement is double-entry and break-even for the POC.
    EXPECT_TRUE(out.ledger.conserves());
    EXPECT_TRUE(out.ledger.poc_net().is_zero());
    EXPECT_EQ(out.retry.calls, 3u);
    EXPECT_EQ(out.retry.failures, 0u);
}

TEST_F(RuntimeTest, JournaledRunMatchesUnjournaledRun) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome plain = EpochRuntime(pool, tm, opt).run();

    opt.journal_path = journal("wal");
    const RuntimeOutcome durable = EpochRuntime(pool, tm, opt).run();
    expect_identical(durable, plain, "journal on vs off");
    EXPECT_EQ(durable.replayed_epochs, 0u);
    EXPECT_GT(std::filesystem::file_size(opt.journal_path), 0u);

    // Re-running over the *completed* journal is pure replay: no new
    // work, same bits.
    const RuntimeOutcome replayed = EpochRuntime(pool, tm, opt).run();
    expect_identical(replayed, plain, "pure replay");
    EXPECT_EQ(replayed.replayed_epochs, 3u);
    EXPECT_EQ(replayed.retry.calls, 0u) << "replay must not re-clear";
}

TEST_F(RuntimeTest, PathCacheOutcomeBitIdentical) {
    // The runtime's shared PathCache (use_path_cache) spans the
    // clearing oracles and the flow stage of every epoch; disabling it
    // must not change a single bit of the outcome.
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.use_path_cache = true;
    const RuntimeOutcome cached = EpochRuntime(pool, tm, opt).run();
    opt.use_path_cache = false;
    const RuntimeOutcome plain = EpochRuntime(pool, tm, opt).run();
    expect_identical(cached, plain, "path cache on vs off");
}

TEST_F(RuntimeTest, ResumeSurvivesPathCacheFlip) {
    // use_path_cache is an engine knob excluded from the journal's
    // configuration fingerprint: a journal written with it on may
    // resume with it off (and vice versa) bit-identically.
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    RuntimeOptions durable = opt;
    durable.use_path_cache = true;
    durable.journal_path = journal("wal");
    bool fired = false;
    durable.stage_hook = [&fired](std::size_t epoch, Stage stage, HookPoint p) {
        if (!fired && epoch == 1 && stage == Stage::kFlowSim && p == HookPoint::kMid) {
            fired = true;
            throw CrashInjected(epoch, stage, p);
        }
    };
    EXPECT_THROW(EpochRuntime(pool, tm, durable).run(), CrashInjected);

    durable.stage_hook = nullptr;
    durable.use_path_cache = false;
    const RuntimeOutcome out = EpochRuntime(pool, tm, durable).run();
    expect_identical(out, baseline, "resume with path cache flipped off");
}

// The tentpole property: a process killed mid-stage at ANY stage of
// ANY epoch — across engine configs (cache on/off, 1 and 8 threads) —
// recovers to bit-identical ledger balances, auction outcomes, and RNG
// stream positions.
TEST_F(RuntimeTest, CrashAnywhereReplaysBitIdentical) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    const struct {
        std::size_t threads;
        bool cache;
    } configs[] = {{1, false}, {1, true}, {8, false}, {8, true}};
    int n = 0;
    for (const auto& cfg : configs) {
        for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
            for (std::uint32_t stage = 0; stage < kStageCount; ++stage) {
                RuntimeOptions crashed = opt;
                crashed.request.auction.threads = cfg.threads;
                crashed.request.auction.cache = cfg.cache;
                crashed.journal_path = journal("wal" + std::to_string(n++));
                Fault crash;
                crash.kind = FaultKind::kCrash;
                crash.start_epoch = epoch;
                crash.crash_stage = stage;
                const RuntimeOutcome out = run_with_recovery(pool, tm, crashed, {crash});
                expect_identical(out, baseline,
                                 "crash at epoch " + std::to_string(epoch) + " stage " +
                                     stage_name(static_cast<Stage>(stage)) + " threads " +
                                     std::to_string(cfg.threads) +
                                     (cfg.cache ? " cache" : " nocache"));
                EXPECT_GT(out.replayed_records, 0u) << "recovery must replay the journal";
            }
        }
    }
}

TEST_F(RuntimeTest, RepeatedCrashesAcrossTheRunStillConverge) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    std::vector<Fault> trace;
    for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        for (std::uint32_t stage = 0; stage < kStageCount; ++stage) {
            Fault f;
            f.kind = FaultKind::kCrash;
            f.start_epoch = epoch;
            f.crash_stage = stage;
            trace.push_back(f);
        }
    }
    RuntimeOptions crashed = opt;
    crashed.journal_path = journal("wal");
    const RuntimeOutcome out = run_with_recovery(pool, tm, crashed, trace);
    expect_identical(out, baseline, "a crash in every stage of every epoch");
}

TEST_F(RuntimeTest, CrashAtStageBoundariesReplaysBitIdentical) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    for (const HookPoint point : {HookPoint::kBefore, HookPoint::kAfter}) {
        RuntimeOptions crashed = opt;
        crashed.journal_path =
            journal(point == HookPoint::kBefore ? "wal_before" : "wal_after");
        bool fired = false;
        crashed.stage_hook = [&fired, point](std::size_t epoch, Stage stage, HookPoint p) {
            if (!fired && epoch == 1 && stage == Stage::kFlowSim && p == point) {
                fired = true;
                throw CrashInjected(epoch, stage, p);
            }
        };
        RuntimeOutcome out;
        for (;;) {
            try {
                out = EpochRuntime(pool, tm, crashed).run();
                break;
            } catch (const CrashInjected&) {
                // restart
            }
        }
        EXPECT_TRUE(fired);
        expect_identical(out, baseline, "boundary crash");
    }
}

TEST_F(RuntimeTest, TornJournalTailIsDetectedTruncatedAndRecovered) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    // Crash at epoch 1's flow-sim, then corrupt the journal tail the
    // way a dying process would: a half-written frame.
    RuntimeOptions durable = opt;
    durable.journal_path = journal("wal");
    {
        bool fired = false;
        durable.stage_hook = [&fired](std::size_t epoch, Stage stage, HookPoint p) {
            if (!fired && epoch == 1 && stage == Stage::kFlowSim && p == HookPoint::kMid) {
                fired = true;
                throw CrashInjected(epoch, stage, p);
            }
        };
        EXPECT_THROW(EpochRuntime(pool, tm, durable).run(), CrashInjected);
    }
    {
        std::ofstream out(durable.journal_path,
                          std::ios::binary | std::ios::app);
        const char torn[] = {0x05, 0x00, static_cast<char>(0xFF), static_cast<char>(0xFF),
                             0x00, 0x00, 0x01, 0x02, 0x03};
        out.write(torn, sizeof torn);
    }
    durable.stage_hook = nullptr;
    const RuntimeOutcome out = EpochRuntime(pool, tm, durable).run();
    EXPECT_TRUE(out.tail_truncated) << "the corrupt tail must be detected, never replayed";
    expect_identical(out, baseline, "recovery from torn tail");
}

TEST_F(RuntimeTest, JournalFromDifferentConfigurationIsRefused) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.journal_path = journal("wal");
    EpochRuntime(pool, tm, opt).run();

    RuntimeOptions other = opt;
    other.seed = opt.seed + 1;
    EXPECT_THROW(EpochRuntime(pool, tm, other).run(), util::JournalError);
}

TEST_F(RuntimeTest, ResumeSurvivesEngineConfigChange) {
    // threads/cache are excluded from the journal fingerprint on
    // purpose: the engine is bit-identical across them (DESIGN.md §5),
    // so a journal written serially may resume under the parallel
    // cached engine.
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    RuntimeOptions durable = opt;
    durable.journal_path = journal("wal");
    bool fired = false;
    durable.stage_hook = [&fired](std::size_t epoch, Stage stage, HookPoint p) {
        if (!fired && epoch == 1 && stage == Stage::kAuction && p == HookPoint::kMid) {
            fired = true;
            throw CrashInjected(epoch, stage, p);
        }
    };
    EXPECT_THROW(EpochRuntime(pool, tm, durable).run(), CrashInjected);

    durable.stage_hook = nullptr;
    durable.request.auction.threads = 8;
    durable.request.auction.cache = true;
    const RuntimeOutcome out = EpochRuntime(pool, tm, durable).run();
    expect_identical(out, baseline, "resume under threads=8 cache=on");
}

TEST_F(RuntimeTest, FlakyOracleRecoversToHealthyOutcome) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 1;
    const RuntimeOutcome healthy = EpochRuntime(pool, tm, opt).run();

    // The oracle times out/fails twice, then comes back: with a 3-
    // attempt budget the epoch must clear with the same outcome bits.
    RuntimeOptions flaky = opt;
    flaky.retry.max_attempts = 3;
    int failures_left = 2;
    flaky.oracle_fault = [&failures_left](std::size_t) {
        if (failures_left > 0) {
            --failures_left;
            throw util::TransientError("scripted oracle outage");
        }
    };
    const RuntimeOutcome out = EpochRuntime(pool, tm, flaky).run();

    EXPECT_EQ(out.retry.attempts, 3u);
    EXPECT_EQ(out.retry.failures, 2u);
    EXPECT_EQ(out.retry.successes, 1u);
    ASSERT_EQ(out.epochs.size(), 1u);
    EXPECT_EQ(out.epochs[0].retry_attempts, 3u);
    EXPECT_FALSE(out.epochs[0].degraded_mode);
    // Same auction, ledger, and RNG position as the healthy run; only
    // the attempt count differs.
    EXPECT_EQ(auction_bytes(out.auctions[0]), auction_bytes(healthy.auctions[0]));
    EXPECT_EQ(out.ledger.transfers(), healthy.ledger.transfers());
    EXPECT_TRUE(out.final_rng == healthy.final_rng);
    EXPECT_GT(out.retry.backoff_ms_total, 0.0);
}

TEST_F(RuntimeTest, PermanentlyDownOracleTripsBreakerAndDegrades) {
#if POC_OBS_ENABLED
    const std::uint64_t breaker_epochs_before =
        obs::registry().counter("sim.runtime.breaker_open_epochs").value();
    const std::uint64_t attempts_before =
        obs::registry().counter("sim.runtime.retry_attempts").value();
#endif
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 4;
    opt.retry.max_attempts = 2;
    opt.breaker.failure_threshold = 2;
    opt.breaker.cooldown_ms = 1e9;  // stays open for the whole test
    opt.oracle_fault = [](std::size_t) {
        throw util::TransientError("oracle permanently down");
    };
    const RuntimeOutcome out = EpochRuntime(pool, tm, opt).run();

    ASSERT_EQ(out.epochs.size(), 4u);
    for (const EpochRecord& rec : out.epochs) {
        // Every epoch degrades to the relaxed load-only re-clear: one
        // link instead of the two the resilience constraint demands.
        EXPECT_TRUE(rec.provisioned);
        EXPECT_TRUE(rec.degraded_mode);
        EXPECT_NEAR(rec.delivered_fraction, 1.0, 1e-9);
    }
    ASSERT_TRUE(out.auctions[0].has_value());
    EXPECT_EQ(out.auctions[0]->selection.links.size(), 1u);

    // Epochs 0-1 burn the full retry budget; the breaker then opens
    // and epochs 2-3 fast-fail straight to the degraded path.
    EXPECT_EQ(out.epochs[0].retry_attempts, 2u);
    EXPECT_EQ(out.epochs[1].retry_attempts, 2u);
    EXPECT_FALSE(out.epochs[1].breaker_open);
    EXPECT_EQ(out.epochs[2].retry_attempts, 0u);
    EXPECT_TRUE(out.epochs[2].breaker_open);
    EXPECT_TRUE(out.epochs[3].breaker_open);
    EXPECT_EQ(out.breaker_open_epochs, 2u);
    EXPECT_EQ(out.retry.exhausted, 2u);
    EXPECT_EQ(out.retry.breaker_opens, 1u);
    EXPECT_EQ(out.retry.breaker_fast_fails, 2u);
    EXPECT_TRUE(out.ledger.conserves());
#if POC_OBS_ENABLED
    EXPECT_EQ(obs::registry().counter("sim.runtime.breaker_open_epochs").value(),
              breaker_epochs_before + 2);
    EXPECT_EQ(obs::registry().counter("sim.runtime.retry_attempts").value(),
              attempts_before + 4);
#endif
}

TEST_F(RuntimeTest, OracleDegradedChaosFaultDrivesRetries) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.journal_path = journal("wal");
    opt.retry.max_attempts = 2;

    // Epoch 1 is inside a degraded-oracle window: its primary path
    // exhausts and relaxes; epochs 0 and 2 clear normally.
    Fault f;
    f.kind = FaultKind::kOracleDegraded;
    f.start_epoch = 1;
    f.repair_epochs = 1;
    const RuntimeOutcome out = run_with_recovery(pool, tm, opt, {f});

    ASSERT_EQ(out.epochs.size(), 3u);
    EXPECT_FALSE(out.epochs[0].degraded_mode);
    EXPECT_TRUE(out.epochs[1].degraded_mode);
    EXPECT_FALSE(out.epochs[2].degraded_mode);
    EXPECT_EQ(out.epochs[1].retry_attempts, 2u);
    EXPECT_TRUE(out.ledger.conserves());
}

TEST_F(RuntimeTest, ChaosTraceDrawsControlPlaneFaults) {
    const auto pool = fx_.pool();
    FaultInjectorOptions fopt;
    fopt.epochs = 8;
    fopt.link_cut_rate = 0.0;
    fopt.conduit_cut_rate = 0.0;
    fopt.router_outage_rate = 0.0;
    fopt.bp_outage_rate = 0.0;
    fopt.brownout_rate = 0.0;
    fopt.crash_rate = 1.0;
    fopt.oracle_degraded_rate = 1.0;
    const auto srlgs = shared_risk_groups(pool.graph());
    const auto trace = draw_fault_trace(pool, srlgs, fopt);
    ASSERT_FALSE(trace.empty());
    bool saw_crash = false;
    bool saw_degraded = false;
    for (const Fault& f : trace) {
        if (f.kind == FaultKind::kCrash) {
            saw_crash = true;
            EXPECT_LT(f.crash_stage, kStageCount);
            EXPECT_EQ(f.repair_epochs, 1u);
        }
        if (f.kind == FaultKind::kOracleDegraded) saw_degraded = true;
        EXPECT_TRUE(f.links.empty());
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_degraded);
}

}  // namespace
}  // namespace poc::sim
