// State-history runtime properties (DESIGN.md §4c): snapshot cadence
// and pruning, byte-stable state serialization, snapshot-grounded
// recovery equal to linear replay across engine configs, crashes
// during snapshot/compaction, disk-fault injection (bit flips, torn
// writes, duplicated frames, stale temps) over journal and snapshot
// files, the supervisor's restart budget, and restart cost staying
// O(snapshot interval) instead of O(history).
#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "helpers/market.hpp"
#include "util/fault_injection.hpp"

namespace poc::sim {
namespace {

using test::ParallelLinksFixture;

/// Byte-exact comparison key for an optional auction result, with the
/// work-accounting diagnostics scrubbed (they vary across engine
/// configs; bit-identity covers the economic outcome — see
/// test_runtime.cpp).
std::string auction_bytes(const std::optional<market::AuctionResult>& a) {
    util::BinaryWriter w;
    w.boolean(a.has_value());
    if (a) {
        market::AuctionResult scrubbed = *a;
        scrubbed.oracle_queries = 0;
        scrubbed.oracle_cache_hits = 0;
        scrubbed.solve_cache_hits = 0;
        market::write_auction_result(w, scrubbed);
    }
    return w.bytes();
}

void expect_identical(const RuntimeOutcome& got, const RuntimeOutcome& want,
                      const std::string& context) {
    EXPECT_EQ(got.epochs, want.epochs) << context;
    EXPECT_EQ(got.ledger.transfers(), want.ledger.transfers()) << context;
    EXPECT_TRUE(got.final_rng == want.final_rng) << context;
    ASSERT_EQ(got.auctions.size(), want.auctions.size()) << context;
    for (std::size_t i = 0; i < got.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(got.auctions[i]), auction_bytes(want.auctions[i]))
            << context << " (epoch " << i << ")";
    }
}

/// Test sink capturing every emitted snapshot payload in memory.
struct CapturingSink final : util::SnapshotSink {
    std::vector<std::pair<std::uint64_t, std::string>> emitted;
    void emit(std::uint64_t completed_epochs, std::string_view,
              std::string_view payload) override {
        emitted.emplace_back(completed_epochs, std::string(payload));
    }
};

class StateHistoryRuntimeTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_state_history_rt_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string journal(const std::string& name) const { return (dir_ / name).string(); }

    RuntimeOptions base_options() const {
        RuntimeOptions opt;
        opt.epochs = 3;
        opt.seed = 7;
        opt.demand_jitter = 0.05;
        opt.request.constraint = market::ConstraintKind::kSingleFailure;
        return opt;
    }

    ParallelLinksFixture fx_;
    std::filesystem::path dir_;
};

TEST_F(StateHistoryRuntimeTest, SnapshotCadencePruningAndCompaction) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 6;
    const RuntimeOutcome plain = EpochRuntime(pool, tm, opt).run();

    // Journal-only control: same run, durability on, snapshots off.
    RuntimeOptions control = opt;
    control.journal_path = journal("wal_control");
    EpochRuntime(pool, tm, control).run();

    RuntimeOptions snap = opt;
    snap.journal_path = journal("wal");
    snap.snapshot_interval = 2;
    snap.snapshot_keep = 2;
    const RuntimeOutcome out = EpochRuntime(pool, tm, snap).run();
    expect_identical(out, plain, "snapshots on vs off");
    EXPECT_EQ(out.snapshots_written, 3u);  // completed = 2, 4, 6
    EXPECT_EQ(out.compactions, 3u);

    // keep=2 prunes the oldest generation; the newest two survive.
    const util::SnapshotStore store(snap.journal_path, snap.snapshot_keep);
    const auto snaps = store.list();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].completed_epochs, 4u);
    EXPECT_EQ(snaps[1].completed_epochs, 6u);

    // The final compaction (at the epoch-6 boundary) leaves a header-
    // only journal; the journal-only control keeps the whole history.
    EXPECT_LT(std::filesystem::file_size(snap.journal_path),
              std::filesystem::file_size(control.journal_path) / 4);

    // Re-running grounds on the newest snapshot: no journal replay, no
    // recomputation, same bits.
    const RuntimeOutcome again = EpochRuntime(pool, tm, snap).run();
    expect_identical(again, plain, "pure snapshot resume");
    EXPECT_TRUE(again.resumed_from_snapshot);
    EXPECT_EQ(again.snapshot_epochs, 6u);
    EXPECT_EQ(again.replayed_records, 0u);
    EXPECT_EQ(again.retry.calls, 0u) << "snapshot resume must not re-clear";
}

TEST_F(StateHistoryRuntimeTest, StateCodecIsByteStable) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    CapturingSink sink;
    opt.snapshot_sink = &sink;
    opt.snapshot_interval = 1;
    opt.compact_after_snapshot = false;  // the sink is not durable
    const RuntimeOutcome out = EpochRuntime(pool, tm, opt).run();

    ASSERT_EQ(sink.emitted.size(), 3u);
    for (const auto& [completed, payload] : sink.emitted) {
        // serialize -> deserialize -> serialize is byte-stable.
        const RuntimeState st = decode_runtime_state(payload);
        EXPECT_EQ(st.epochs.size(), completed);
        EXPECT_EQ(encode_runtime_state(st), payload)
            << "payload for " << completed << " completed epochs";
    }

    // The final payload is exactly the run's end state.
    const RuntimeState last = decode_runtime_state(sink.emitted.back().second);
    EXPECT_EQ(last.epochs, out.epochs);
    EXPECT_EQ(last.ledger.transfers(), out.ledger.transfers());
    EXPECT_TRUE(last.rng == out.final_rng);
    ASSERT_EQ(last.auctions.size(), out.auctions.size());
    for (std::size_t i = 0; i < last.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(last.auctions[i]), auction_bytes(out.auctions[i]));
    }

    // Garbage and version drift are refused, not misread.
    EXPECT_THROW(decode_runtime_state("not a runtime state"), util::JournalError);
    std::string drift = sink.emitted.back().second;
    drift[0] = static_cast<char>(drift[0] + 1);  // version field
    EXPECT_THROW(decode_runtime_state(drift), util::JournalError);
}

// Satellite (c): resuming from a snapshot equals linear replay — and a
// from-scratch run — across all four engine configs (threads x cache).
TEST_F(StateHistoryRuntimeTest, SnapshotResumeMatchesLinearReplayAcrossEngineConfigs) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 4;
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    const struct {
        std::size_t threads;
        bool cache;
    } configs[] = {{1, false}, {1, true}, {8, false}, {8, true}};
    int n = 0;
    for (const auto& cfg : configs) {
        RuntimeOptions snap = opt;
        snap.request.auction.threads = cfg.threads;
        snap.request.auction.cache = cfg.cache;
        snap.journal_path = journal("wal" + std::to_string(n++));
        snap.snapshot_interval = 2;
        Fault crash;
        crash.kind = FaultKind::kCrash;
        crash.start_epoch = 2;
        crash.crash_stage = 2;  // kFlowSim
        const RuntimeOutcome out = run_with_recovery(pool, tm, snap, {crash});
        const std::string context = "threads " + std::to_string(cfg.threads) +
                                    (cfg.cache ? " cache" : " nocache");
        expect_identical(out, baseline, context);
        EXPECT_TRUE(out.resumed_from_snapshot) << context;
        EXPECT_EQ(out.snapshot_epochs, 2u) << context;
        EXPECT_EQ(out.restarts, 1u) << context;
    }
}

TEST_F(StateHistoryRuntimeTest, CrashMatrixWithSnapshotsOnReplaysBitIdentical) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 4;
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    int n = 0;
    for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        for (std::uint32_t stage = 0; stage < kStageCount; ++stage) {
            RuntimeOptions snap = opt;
            snap.journal_path = journal("wal" + std::to_string(n++));
            snap.snapshot_interval = 2;
            Fault crash;
            crash.kind = FaultKind::kCrash;
            crash.start_epoch = epoch;
            crash.crash_stage = stage;
            const RuntimeOutcome out = run_with_recovery(pool, tm, snap, {crash});
            expect_identical(out, baseline,
                             "crash at epoch " + std::to_string(epoch) + " stage " +
                                 stage_name(static_cast<Stage>(stage)));
        }
    }
}

TEST_F(StateHistoryRuntimeTest, CrashDuringSnapshotWriteAndCompactionSurvives) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 4;
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    // Die mid-snapshot at the first boundary (state serialized,
    // install not durable) and mid-compaction at the second (snapshot
    // durable, journal still holding covered records).
    RuntimeOptions snap = opt;
    snap.journal_path = journal("wal");
    snap.snapshot_interval = 2;
    Fault in_snapshot;
    in_snapshot.kind = FaultKind::kCrash;
    in_snapshot.start_epoch = 2;  // completed-epoch count at the boundary
    in_snapshot.crash_stage = kCrashStageSnapshot;
    Fault in_compaction;
    in_compaction.kind = FaultKind::kCrash;
    in_compaction.start_epoch = 4;
    in_compaction.crash_stage = kCrashStageCompaction;
    const RuntimeOutcome out =
        run_with_recovery(pool, tm, snap, {in_snapshot, in_compaction});
    expect_identical(out, baseline, "crashes during snapshot write and compaction");
    EXPECT_EQ(out.restarts, 2u);
    // The compaction crash left the epoch-4 snapshot installed: the
    // final restart grounds on it (and performs the skipped
    // compaction itself).
    EXPECT_TRUE(out.resumed_from_snapshot);
    EXPECT_EQ(out.snapshot_epochs, 4u);
    EXPECT_GE(out.compactions, 1u);
}

TEST_F(StateHistoryRuntimeTest, SnapshotCorruptAndTornWriteFaultsRecoverBitIdentical) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 4;
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    // kSnapshotCorrupt: the crash also flips a bit in the newest
    // snapshot; recovery must fall back (older snapshot or journal or
    // recompute). kTornWrite: the crash also tears the journal's tail.
    RuntimeOptions snap = opt;
    snap.journal_path = journal("wal");
    snap.snapshot_interval = 2;
    Fault corrupt;
    corrupt.kind = FaultKind::kSnapshotCorrupt;
    corrupt.start_epoch = 2;
    corrupt.crash_stage = 0;  // kAuction
    Fault torn;
    torn.kind = FaultKind::kTornWrite;
    torn.start_epoch = 3;
    torn.crash_stage = 1;  // kProvisioning
    const RuntimeOutcome out = run_with_recovery(pool, tm, snap, {corrupt, torn});
    expect_identical(out, baseline, "snapshot bit flip + torn journal tail");
    EXPECT_EQ(out.restarts, 2u);
}

// The tentpole property: whatever single corruption lands on the
// journal or the newest snapshot between crash and restart — torn
// writes at sampled byte offsets, single-bit flips, duplicated frames,
// appended garbage, stale temp files — recovery never throws and the
// finished run is bit-identical to the uninterrupted baseline.
TEST_F(StateHistoryRuntimeTest, CorruptionMatrixAlwaysRecoversToIdenticalState) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    RuntimeOptions durable = opt;
    durable.journal_path = journal("wal");
    durable.snapshot_interval = 1;
    {
        bool fired = false;
        durable.stage_hook = [&fired](std::size_t epoch, Stage stage, HookPoint p) {
            if (!fired && epoch == 1 && stage == Stage::kFlowSim && p == HookPoint::kMid) {
                fired = true;
                throw CrashInjected(epoch, stage, p);
            }
        };
        EXPECT_THROW(EpochRuntime(pool, tm, durable).run(), CrashInjected);
        durable.stage_hook = nullptr;
    }

    // Freeze the crashed process's disk state: the journal (epoch-1
    // records past the epoch-1 snapshot) and the snapshot files.
    std::map<std::string, std::string> pristine;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        pristine[entry.path().filename().string()] =
            util::FaultyFile::slurp(entry.path().string());
    }
    const auto restore = [&] {
        for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
            std::filesystem::remove(entry.path());
        }
        for (const auto& [name, bytes] : pristine) {
            util::FaultyFile::spit((dir_ / name).string(), bytes);
        }
    };
    const auto check = [&](const std::string& what) {
        const RuntimeOutcome out = EpochRuntime(pool, tm, durable).run();
        expect_identical(out, baseline, what);
    };

    const std::string jp = durable.journal_path;
    const std::uint64_t jsize = util::FaultyFile::size(jp);
    ASSERT_GT(jsize, 0u);
    const std::uint64_t jstep = std::max<std::uint64_t>(1, jsize / 24);
    for (std::uint64_t cut = 0; cut <= jsize; cut += jstep) {
        restore();
        util::FaultyFile::tear_at(jp, cut);
        check("journal torn at byte " + std::to_string(cut));
    }
    for (std::uint64_t off = 0; off < jsize; off += jstep) {
        restore();
        util::FaultyFile::flip_bit(jp, off, static_cast<unsigned>(off % 8));
        check("journal bit flip at byte " + std::to_string(off));
    }
    restore();
    util::FaultyFile::duplicate_range(jp, jsize / 3, jsize / 3);
    check("journal frame duplication");
    restore();
    util::FaultyFile::append_garbage(jp, "\xDE\xAD\xBE\xEFgarbage tail");
    check("journal appended garbage");
    restore();
    util::FaultyFile::make_stale_temp(jp, "compaction died before rename");
    check("stale journal rewrite temp");

    // Same treatment for the newest snapshot file.
    const util::SnapshotStore store(jp, durable.snapshot_keep);
    restore();
    const auto snaps = store.list();
    ASSERT_FALSE(snaps.empty());
    const std::string sp = snaps.back().path;
    const std::uint64_t ssize = util::FaultyFile::size(sp);
    ASSERT_GT(ssize, 0u);
    const std::uint64_t sstep = std::max<std::uint64_t>(1, ssize / 12);
    for (std::uint64_t cut = 0; cut <= ssize; cut += sstep) {
        restore();
        util::FaultyFile::tear_at(sp, cut);
        check("snapshot torn at byte " + std::to_string(cut));
    }
    for (std::uint64_t off = 0; off < ssize; off += sstep) {
        restore();
        util::FaultyFile::flip_bit(sp, off, static_cast<unsigned>((off + 5) % 8));
        check("snapshot bit flip at byte " + std::to_string(off));
    }
    restore();
    util::FaultyFile::make_stale_temp(store.path_for(99), "install died before rename");
    check("stale snapshot install temp");
}

// Satellite (b): a permanently-stuck crash point burns the restart
// budget (jittered backoff between attempts) and surfaces as a
// structured RecoveryExhausted instead of looping forever.
TEST_F(StateHistoryRuntimeTest, RestartBudgetExhaustsIntoRecoveryExhausted) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.journal_path = journal("wal");
    opt.restart.max_attempts = 3;
    // Unlike the chaos traces' fire-once crashes, this hook kills the
    // process at epoch 1's auction on EVERY attempt — and that stage
    // never journals, so no restart makes progress.
    opt.stage_hook = [](std::size_t epoch, Stage stage, HookPoint p) {
        if (epoch == 1 && stage == Stage::kAuction && p == HookPoint::kMid) {
            throw CrashInjected(epoch, stage, p);
        }
    };
    try {
        run_with_recovery(pool, tm, opt, {});
        FAIL() << "a permanently-stuck crash point must exhaust the restart budget";
    } catch (const RecoveryExhausted& e) {
        // Restart 1 journals epoch 0 (progress, fresh window); the
        // next max_attempts restarts are stuck.
        EXPECT_EQ(e.restarts(), 4u);
        EXPECT_NE(std::string(e.what()).find("recovery exhausted"), std::string::npos);
    }
    // The journal is not poisoned: dropping the fault finishes the run.
    opt.stage_hook = nullptr;
    const RuntimeOutcome out = EpochRuntime(pool, tm, opt).run();
    EXPECT_EQ(out.epochs.size(), opt.epochs);
}

// The acceptance property: with snapshots on, restart cost is bounded
// by the snapshot interval, not by how long the run has been going.
TEST_F(StateHistoryRuntimeTest, RestartCostIsBoundedByIntervalNotHistory) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    opt.epochs = 8;
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    Fault crash;
    crash.kind = FaultKind::kCrash;
    crash.start_epoch = 7;  // late in the run: maximal history
    crash.crash_stage = 2;  // kFlowSim

    RuntimeOptions plain = opt;
    plain.journal_path = journal("wal_plain");
    const RuntimeOutcome plain_out = run_with_recovery(pool, tm, plain, {crash});
    expect_identical(plain_out, baseline, "journal-only recovery");

    RuntimeOptions snap = opt;
    snap.journal_path = journal("wal_snap");
    snap.snapshot_interval = 2;
    const RuntimeOutcome snap_out = run_with_recovery(pool, tm, snap, {crash});
    expect_identical(snap_out, baseline, "snapshot-grounded recovery");

    // Journal-only replay walks all 7 completed epochs' records; the
    // snapshot-grounded restart replays at most interval+1 epochs'
    // worth (6 records per epoch).
    EXPECT_GE(plain_out.replayed_records, 7u * 6u);
    EXPECT_LE(snap_out.replayed_records, 2u * 6u + 4u);
    EXPECT_LT(snap_out.replayed_records, plain_out.replayed_records);
    EXPECT_TRUE(snap_out.resumed_from_snapshot);
    EXPECT_EQ(snap_out.snapshot_epochs, 6u);
}

// All the state-history knobs are engine knobs: flipping any of them
// across a restart — delta encoding, fsync, even snapshots themselves —
// cannot change a bit of the outcome.
TEST_F(StateHistoryRuntimeTest, KnobFlipsAcrossRestartStayBitIdentical) {
    const auto pool = fx_.pool();
    const auto tm = fx_.demand(8.0);
    RuntimeOptions opt = base_options();
    const RuntimeOutcome baseline = EpochRuntime(pool, tm, opt).run();

    // Segment 1: delta encoding on, fsync on. Crash mid-run.
    RuntimeOptions first = opt;
    first.journal_path = journal("wal");
    first.snapshot_interval = 2;
    first.fsync_journal = true;
    bool fired = false;
    first.stage_hook = [&fired](std::size_t epoch, Stage stage, HookPoint p) {
        if (!fired && epoch == 2 && stage == Stage::kFlowSim && p == HookPoint::kMid) {
            fired = true;
            throw CrashInjected(epoch, stage, p);
        }
    };
    EXPECT_THROW(EpochRuntime(pool, tm, first).run(), CrashInjected);

    // Segment 2: delta encoding off, fsync off, snapshots off. The
    // snapshot store is still consulted on recovery (the crashed
    // process had snapshots on), so grounding works anyway.
    RuntimeOptions second = opt;
    second.journal_path = first.journal_path;
    second.snapshot_interval = 0;
    second.delta_encoding = false;
    const RuntimeOutcome out = EpochRuntime(pool, tm, second).run();
    expect_identical(out, baseline, "resume with every state-history knob flipped");
    EXPECT_TRUE(out.resumed_from_snapshot);
    EXPECT_EQ(out.snapshot_epochs, 2u);
}

}  // namespace
}  // namespace poc::sim
