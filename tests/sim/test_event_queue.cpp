#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace poc::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    Simulator s;
    std::vector<int> order;
    s.schedule_at(2.0, [&](Simulator&) { order.push_back(2); });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(1); });
    s.schedule_at(3.0, [&](Simulator&) { order.push_back(3); });
    EXPECT_EQ(s.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        s.schedule_at(1.0, [&order, i](Simulator&) { order.push_back(i); });
    }
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
    Simulator s;
    double seen = -1.0;
    s.schedule_at(4.5, [&](Simulator& sim) { seen = sim.now(); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 4.5);
    EXPECT_DOUBLE_EQ(s.now(), 4.5);
}

TEST(EventQueue, ScheduleInIsRelative) {
    Simulator s;
    std::vector<double> times;
    s.schedule_at(2.0, [&](Simulator& sim) {
        sim.schedule_in(1.5, [&](Simulator& inner) { times.push_back(inner.now()); });
    });
    s.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 3.5);
}

TEST(EventQueue, UntilBoundary) {
    Simulator s;
    int ran = 0;
    s.schedule_at(1.0, [&](Simulator&) { ++ran; });
    s.schedule_at(2.0, [&](Simulator&) { ++ran; });
    s.schedule_at(3.0, [&](Simulator&) { ++ran; });
    EXPECT_EQ(s.run(2.0), 2u);  // events at exactly `until` run
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(s.pending(), 1u);
    s.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, StopHaltsImmediately) {
    Simulator s;
    int ran = 0;
    s.schedule_at(1.0, [&](Simulator& sim) {
        ++ran;
        sim.stop();
    });
    s.schedule_at(2.0, [&](Simulator&) { ++ran; });
    s.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(s.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
    Simulator s;
    s.schedule_at(5.0, [](Simulator& sim) {
        EXPECT_THROW(sim.schedule_at(1.0, [](Simulator&) {}), util::ContractViolation);
    });
    s.run();
    EXPECT_THROW(s.schedule_in(-1.0, [](Simulator&) {}), util::ContractViolation);
}

TEST(EventQueue, EventsCanCascade) {
    Simulator s;
    int depth = 0;
    EventHandler recurse = [&](Simulator& sim) {
        if (++depth < 5) sim.schedule_in(1.0, [&](Simulator& inner) { recurse(inner); });
    };
    s.schedule_at(0.0, recurse);
    EXPECT_EQ(s.run(), 5u);
    EXPECT_DOUBLE_EQ(s.now(), 4.0);
}

// Tie-breaking determinism: the durable runtime replays journals under
// the assumption that equal-timestamp events run in exact scheduling
// order, including events enqueued for the *current* time from inside a
// running handler. Pin both properties.

TEST(EventQueue, HandlersSchedulingAtCurrentTimeRunAfterAllEarlierPeers) {
    Simulator s;
    std::vector<int> order;
    // Three peers at t=1; the first enqueues a same-time event, which
    // must run after ALL already-queued t=1 events (it has a later seq).
    s.schedule_at(1.0, [&](Simulator& sim) {
        order.push_back(0);
        sim.schedule_in(0.0, [&](Simulator&) { order.push_back(3); });
    });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(1); });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(2); });
    EXPECT_EQ(s.run(), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(EventQueue, EqualTimeOrderIsGlobalSequenceNotPerTimestamp) {
    // Interleave registrations across two timestamps; within each
    // timestamp the execution order must match registration order, no
    // matter how the registrations were interleaved.
    Simulator s;
    std::vector<int> order;
    s.schedule_at(2.0, [&](Simulator&) { order.push_back(20); });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(10); });
    s.schedule_at(2.0, [&](Simulator&) { order.push_back(21); });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(11); });
    s.schedule_at(2.0, [&](Simulator&) { order.push_back(22); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(EventQueue, ManyEqualTimeEventsReplayIdenticallyAcrossRuns) {
    // Property-style check: two simulators given the same schedule of
    // 256 events — all at one of two timestamps, some self-cascading —
    // must execute in exactly the same order.
    const auto build_and_run = [] {
        Simulator s;
        std::vector<int> order;
        for (int i = 0; i < 256; ++i) {
            const double t = (i % 3 == 0) ? 1.0 : 2.0;
            s.schedule_at(t, [&order, i](Simulator& sim) {
                order.push_back(i);
                if (i % 16 == 0) {
                    sim.schedule_in(0.0, [&order, i](Simulator&) {
                        order.push_back(1000 + i);
                    });
                }
            });
        }
        s.run();
        return order;
    };
    const std::vector<int> first = build_and_run();
    const std::vector<int> second = build_and_run();
    ASSERT_EQ(first.size(), 256u + 16u);
    EXPECT_EQ(first, second);
    // Within each timestamp, base events appear in schedule order.
    std::vector<int> base;
    for (const int v : first) {
        if (v < 1000) base.push_back(v);
    }
    std::vector<int> expected;
    for (int i = 0; i < 256; i += 3) expected.push_back(i);          // t = 1.0
    for (int i = 0; i < 256; ++i) {
        if (i % 3 != 0) expected.push_back(i);                       // t = 2.0
    }
    EXPECT_EQ(base, expected);
}

}  // namespace
}  // namespace poc::sim
