#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace poc::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    Simulator s;
    std::vector<int> order;
    s.schedule_at(2.0, [&](Simulator&) { order.push_back(2); });
    s.schedule_at(1.0, [&](Simulator&) { order.push_back(1); });
    s.schedule_at(3.0, [&](Simulator&) { order.push_back(3); });
    EXPECT_EQ(s.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        s.schedule_at(1.0, [&order, i](Simulator&) { order.push_back(i); });
    }
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
    Simulator s;
    double seen = -1.0;
    s.schedule_at(4.5, [&](Simulator& sim) { seen = sim.now(); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 4.5);
    EXPECT_DOUBLE_EQ(s.now(), 4.5);
}

TEST(EventQueue, ScheduleInIsRelative) {
    Simulator s;
    std::vector<double> times;
    s.schedule_at(2.0, [&](Simulator& sim) {
        sim.schedule_in(1.5, [&](Simulator& inner) { times.push_back(inner.now()); });
    });
    s.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 3.5);
}

TEST(EventQueue, UntilBoundary) {
    Simulator s;
    int ran = 0;
    s.schedule_at(1.0, [&](Simulator&) { ++ran; });
    s.schedule_at(2.0, [&](Simulator&) { ++ran; });
    s.schedule_at(3.0, [&](Simulator&) { ++ran; });
    EXPECT_EQ(s.run(2.0), 2u);  // events at exactly `until` run
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(s.pending(), 1u);
    s.run();
    EXPECT_EQ(ran, 3);
}

TEST(EventQueue, StopHaltsImmediately) {
    Simulator s;
    int ran = 0;
    s.schedule_at(1.0, [&](Simulator& sim) {
        ++ran;
        sim.stop();
    });
    s.schedule_at(2.0, [&](Simulator&) { ++ran; });
    s.run();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(s.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
    Simulator s;
    s.schedule_at(5.0, [](Simulator& sim) {
        EXPECT_THROW(sim.schedule_at(1.0, [](Simulator&) {}), util::ContractViolation);
    });
    s.run();
    EXPECT_THROW(s.schedule_in(-1.0, [](Simulator&) {}), util::ContractViolation);
}

TEST(EventQueue, EventsCanCascade) {
    Simulator s;
    int depth = 0;
    EventHandler recurse = [&](Simulator& sim) {
        if (++depth < 5) sim.schedule_in(1.0, [&](Simulator& inner) { recurse(inner); });
    };
    s.schedule_at(0.0, recurse);
    EXPECT_EQ(s.run(), 5u);
    EXPECT_DOUBLE_EQ(s.now(), 4.0);
}

}  // namespace
}  // namespace poc::sim
