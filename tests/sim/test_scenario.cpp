#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"

namespace poc::sim {
namespace {

struct ScenarioFixture {
    test::ParallelLinksFixture links;
    market::OfferPool pool;
    net::TrafficMatrix tm;

    ScenarioFixture() : pool(links.pool()), tm(links.demand(8.0)) {}

    ScenarioOptions options(std::size_t epochs) const {
        ScenarioOptions opt;
        opt.epochs = epochs;
        opt.request.auction.exact = true;
        return opt;
    }
};

TEST(Scenario, RunsRequestedEpochs) {
    ScenarioFixture fx;
    const auto outcomes = run_scenario(fx.pool, fx.tm, {}, fx.options(3));
    ASSERT_EQ(outcomes.size(), 3u);
    for (const EpochOutcome& o : outcomes) {
        EXPECT_TRUE(o.provisioned);
        EXPECT_EQ(o.selected_links, 1u);  // cheapest link suffices
        EXPECT_NEAR(o.total_demand_gbps, 8.0, 1e-9);
    }
}

TEST(Scenario, DemandGrowthForcesMoreLinks) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 1.8;  // 8 -> 14.4: needs two links
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, fx.options(2));
    EXPECT_EQ(outcomes[0].selected_links, 1u);
    EXPECT_EQ(outcomes[1].selected_links, 2u);
    EXPECT_GT(outcomes[1].outlay, outcomes[0].outlay);
    ASSERT_EQ(outcomes[1].applied_events.size(), 1u);
}

TEST(Scenario, BpRecallShrinksOffers) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kBpRecall;
    events[0].epoch = 1;
    events[0].bp = 0;          // BP A recalls...
    events[0].fraction = 1.0;  // ...all of its links
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, fx.options(2));
    EXPECT_EQ(outcomes[0].offered_links, 3u);
    EXPECT_EQ(outcomes[1].offered_links, 2u);
    // Auction now settles on BP B at higher cost.
    EXPECT_GT(outcomes[1].outlay, outcomes[0].outlay);
}

TEST(Scenario, PriceShiftChangesOutlay) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kPriceShift;
    events[0].epoch = 1;
    events[0].bp = 1;        // runner-up B doubles its prices
    events[0].factor = 2.0;  // second-price payment to A rises
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, fx.options(2));
    ASSERT_TRUE(outcomes[1].provisioned);
    EXPECT_GT(outcomes[1].outlay, outcomes[0].outlay);
}

TEST(Scenario, LinkFailureTriggersReprovisioning) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kLinkFailure;
    events[0].epoch = 1;
    events[0].count = 1;  // the in-service (cheapest) link fails
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, fx.options(2));
    ASSERT_TRUE(outcomes[1].provisioned);
    EXPECT_EQ(outcomes[1].offered_links, 2u);
    EXPECT_GT(outcomes[1].outlay, outcomes[0].outlay);
}

TEST(Scenario, InfeasibleEpochMarked) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 10.0;  // 80 Gbps > 30 total capacity
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, fx.options(3));
    EXPECT_TRUE(outcomes[0].provisioned);
    EXPECT_FALSE(outcomes[1].provisioned);
    EXPECT_FALSE(outcomes[2].provisioned);  // growth persists
}

TEST(Scenario, FlowReportsAttached) {
    ScenarioFixture fx;
    const auto outcomes = run_scenario(fx.pool, fx.tm, {}, fx.options(1));
    EXPECT_TRUE(outcomes[0].flows.fully_routed);
    EXPECT_NEAR(outcomes[0].flows.total_routed_gbps, 8.0, 1e-6);
}

TEST(Scenario, MeanPobReflectsSecondPrice) {
    ScenarioFixture fx;
    const auto outcomes = run_scenario(fx.pool, fx.tm, {}, fx.options(1));
    // A bids 100, paid 150: PoB = 0.5, single winner.
    EXPECT_NEAR(outcomes[0].mean_pob, 0.5, 1e-9);
}

TEST(Scenario, RejectsZeroEpochs) {
    ScenarioFixture fx;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, {}, fx.options(0)), util::ContractViolation);
}

TEST(Scenario, RejectsEventBeyondHorizon) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 2;  // horizon is epochs {0, 1}
    events[0].factor = 1.5;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
}

TEST(Scenario, RejectsNonPositiveFactor) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 0.0;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
    events[0].kind = ScenarioEvent::Kind::kPriceShift;
    events[0].factor = -2.0;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
}

TEST(Scenario, RejectsFractionOutsideUnitInterval) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kBpRecall;
    events[0].epoch = 1;
    events[0].bp = 0;
    events[0].fraction = 1.5;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
    events[0].fraction = -0.1;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
}

TEST(Scenario, RejectsUnknownBp) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kBpRecall;
    events[0].epoch = 1;
    events[0].bp = 42;  // no such BP in the pool
    events[0].fraction = 0.5;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
    events[0].kind = ScenarioEvent::Kind::kPriceShift;
    events[0].factor = 2.0;
    EXPECT_THROW(run_scenario(fx.pool, fx.tm, events, fx.options(2)), util::ContractViolation);
}

TEST(Scenario, OnEpochFiresOncePerEpochInOrder) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(1);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 1.8;

    std::vector<std::size_t> seen;
    ScenarioOptions opt = fx.options(3);
    opt.on_epoch = [&](const EpochOutcome& out) { seen.push_back(out.epoch); };
    const auto outcomes = run_scenario(fx.pool, fx.tm, events, opt);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Scenario, PathCacheOutcomesBitIdentical) {
    ScenarioFixture fx;
    std::vector<ScenarioEvent> events(2);
    events[0].kind = ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 1.8;
    events[1].kind = ScenarioEvent::Kind::kLinkFailure;
    events[1].epoch = 2;
    events[1].count = 1;

    ScenarioOptions with_cache = fx.options(4);
    with_cache.use_path_cache = true;
    ScenarioOptions without = fx.options(4);
    without.use_path_cache = false;

    const auto a = run_scenario(fx.pool, fx.tm, events, with_cache);
    const auto b = run_scenario(fx.pool, fx.tm, events, without);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a[i].provisioned, b[i].provisioned);
        EXPECT_EQ(a[i].outlay, b[i].outlay);
        EXPECT_EQ(a[i].selected_links, b[i].selected_links);
        EXPECT_EQ(a[i].mean_pob, b[i].mean_pob);
        EXPECT_EQ(a[i].flows.total_routed_gbps, b[i].flows.total_routed_gbps);
        EXPECT_EQ(a[i].flows.link_load_gbps, b[i].flows.link_load_gbps);
        EXPECT_EQ(a[i].flows.stretch, b[i].flows.stretch);
        EXPECT_EQ(a[i].flows.max_utilization, b[i].flows.max_utilization);
    }
}

}  // namespace
}  // namespace poc::sim
