#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers/market.hpp"

namespace poc::sim {
namespace {

using util::Money;

/// Two routers plus a relay: a cheap direct link `a` (BP A, $100), a
/// parallel direct link `b` in the same conduit (BP B, $140), and a
/// disjoint two-hop detour `c`+`d` through the relay (BP C, $60 each).
/// Demand 6 Gbps from n0 to n1; every link has 10 Gbps capacity.
///
///   Constraint #1 selects {a} ($100).
///   Constraint #3 selects {a, c, d} ($220): the detour is the cheapest
///   backup that survives the primary path's failure.
///
/// A conduit cut takes out {a, b} together, so the two backbones react
/// very differently to the *same* correlated trace.
struct ChaosFixture {
    net::Graph graph;
    net::LinkId a, b, c, d, v;
    std::vector<market::BpBid> bids;
    market::VirtualLinkContract contract;
    net::TrafficMatrix tm;

    explicit ChaosFixture(bool with_virtual = false) {
        const auto n0 = graph.add_node("n0");
        const auto n1 = graph.add_node("n1");
        const auto n2 = graph.add_node("n2");
        a = graph.add_link(n0, n1, 10.0, 1.0);
        b = graph.add_link(n0, n1, 10.0, 1.0);
        c = graph.add_link(n0, n2, 10.0, 1.0);
        d = graph.add_link(n2, n1, 10.0, 1.0);
        market::BpBid bid_a(market::BpId{0u}, "A");
        bid_a.offer(a, Money::from_dollars(std::int64_t{100}));
        market::BpBid bid_b(market::BpId{1u}, "B");
        bid_b.offer(b, Money::from_dollars(std::int64_t{140}));
        market::BpBid bid_c(market::BpId{2u}, "C");
        bid_c.offer(c, Money::from_dollars(std::int64_t{60}));
        bid_c.offer(d, Money::from_dollars(std::int64_t{60}));
        bids = {std::move(bid_a), std::move(bid_b), std::move(bid_c)};
        if (with_virtual) {
            // Slightly longer so routing prefers real links when whole.
            v = graph.add_link(n0, n1, 10.0, 1.5);
            contract.add(v, Money::from_dollars(std::int64_t{600}));
        }
        tm = {{n0, n1, 6.0}};
    }

    market::OfferPool pool() const { return market::OfferPool(bids, contract, graph); }

    ChaosOptions options(market::ConstraintKind constraint, std::size_t epochs) const {
        ChaosOptions opt;
        opt.epochs = epochs;
        opt.request.constraint = constraint;
        opt.request.auction.exact = true;
        return opt;
    }
};

Fault conduit_cut(const ChaosFixture& fx, std::size_t start, std::size_t repair) {
    return Fault{FaultKind::kConduitCut, start, repair, {fx.a, fx.b}, 0.0, "conduit n0-n1"};
}

TEST(SharedRiskGroups, DerivedFromGraphGeometry) {
    ChaosFixture fx;
    const auto groups = shared_risk_groups(fx.graph);
    // One conduit group ({a, b} between n0 and n1) and three site
    // groups (one per router, each with >= 2 incident links).
    ASSERT_EQ(groups.size(), 4u);
    EXPECT_EQ(groups[0].name, "conduit:n0-n1");
    EXPECT_EQ(groups[0].links, (std::vector<net::LinkId>{fx.a, fx.b}));
    for (std::size_t i = 1; i < groups.size(); ++i) {
        EXPECT_GE(groups[i].links.size(), 2u);
        EXPECT_EQ(groups[i].name.rfind("site:", 0), 0u);
    }
}

// The acceptance scenario: under the same correlated conduit cut, the
// constraint-#3 backbone keeps delivering while the constraint-#1
// backbone goes dark, and #1's off-cycle re-auction restores full
// delivery one epoch later.
TEST(Chaos, StricterConstraintBuysBetterDegradation) {
    ChaosFixture fx;
    const auto pool = fx.pool();
    const std::vector<Fault> trace{conduit_cut(fx, 1, 2)};

    const ChaosOutcome r1 =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kLoad, 4));
    const ChaosOutcome r3 =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kPerPairFailure, 4));
    ASSERT_TRUE(r1.provisioned);
    ASSERT_TRUE(r3.provisioned);
    ASSERT_EQ(r1.sla.size(), 4u);
    ASSERT_EQ(r3.sla.size(), 4u);

    // Healthy baseline epoch; the stricter constraint costs more.
    EXPECT_NEAR(r1.sla[0].delivered_fraction, 1.0, 1e-9);
    EXPECT_NEAR(r3.sla[0].delivered_fraction, 1.0, 1e-9);
    EXPECT_GT(r3.baseline_outlay, r1.baseline_outlay);

    // Epoch 1, conduit down: #1 delivers nothing, #3 everything.
    EXPECT_NEAR(r1.sla[1].delivered_fraction, 0.0, 1e-9);
    EXPECT_NEAR(r3.sla[1].delivered_fraction, 1.0, 1e-9);
    EXPECT_GT(r3.sla[1].delivered_fraction, r1.sla[1].delivered_fraction);
    EXPECT_EQ(r1.sla[1].links_down, 1u);  // its whole backbone

    // #1 fires an off-cycle re-auction onto the surviving detour and is
    // fully restored the next epoch; #3 never needs one.
    EXPECT_TRUE(r1.sla[1].reauction_triggered);
    EXPECT_EQ(r1.reauction_count, 1u);
    EXPECT_NEAR(r1.sla[2].delivered_fraction, 1.0, 1e-9);
    EXPECT_EQ(r1.epochs_to_restore, 1u);
    EXPECT_EQ(r3.reauction_count, 0u);
    EXPECT_EQ(r3.epochs_to_restore, 0u);
    EXPECT_LT(r1.min_delivered_fraction, r3.min_delivered_fraction);
}

TEST(Chaos, BrownoutDegradesPartiallyAndRepairs) {
    ChaosFixture fx;
    const auto pool = fx.pool();
    // Half the capacity of the in-service link for two epochs; with the
    // re-auction threshold below the degraded delivery, the POC rides
    // out the brownout instead of re-provisioning.
    const std::vector<Fault> trace{
        {FaultKind::kBrownout, 1, 2, {fx.a}, 0.5, "brownout a"}};
    ChaosOptions opt = fx.options(market::ConstraintKind::kLoad, 4);
    opt.reauction_threshold = 0.5;

    const ChaosOutcome r = run_chaos(pool, fx.tm, trace, opt);
    ASSERT_TRUE(r.provisioned);
    // 5 of 6 Gbps fit through the browned-out link (the FPTAS router
    // may undershoot slightly, never overshoot).
    EXPECT_LT(r.sla[1].delivered_fraction, 1.0 - 1e-6);
    EXPECT_GT(r.sla[1].delivered_fraction, 0.6);
    EXPECT_LE(r.sla[1].delivered_fraction, 5.0 / 6.0 + 1e-6);
    EXPECT_EQ(r.sla[1].links_degraded, 1u);
    EXPECT_EQ(r.sla[1].links_down, 0u);
    EXPECT_FALSE(r.sla[1].reauction_triggered);
    EXPECT_EQ(r.reauction_count, 0u);
    // Repair at epoch 3 restores full delivery without intervention.
    EXPECT_NEAR(r.sla[3].delivered_fraction, 1.0, 1e-9);
    EXPECT_EQ(r.epochs_to_restore, 2u);
}

TEST(Chaos, EmergencyVirtualCapacityProcuredAtContractPrice) {
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    // Cut only the selected link `a` for one epoch: nothing real
    // survives in the backbone, so delivery rides the contracted (but
    // unselected) virtual link, paid at contract price.
    const std::vector<Fault> trace{
        {FaultKind::kLinkCut, 1, 1, {fx.a}, 0.0, "cut a"}};
    const ChaosOutcome r =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kLoad, 3));
    ASSERT_TRUE(r.provisioned);

    EXPECT_NEAR(r.sla[1].delivered_fraction, 1.0, 1e-9);
    EXPECT_GT(r.sla[1].virtual_share, 0.99);
    EXPECT_EQ(r.sla[1].emergency_virtual_cost, Money::from_dollars(std::int64_t{600}));
    EXPECT_EQ(r.sla[1].outlay, r.baseline_outlay + Money::from_dollars(std::int64_t{600}));
    // Full (virtual-backed) delivery means no re-auction fires, and the
    // spike subsides once the link is repaired.
    EXPECT_FALSE(r.sla[1].reauction_triggered);
    EXPECT_NEAR(r.sla[2].virtual_share, 0.0, 1e-9);
    EXPECT_TRUE(r.sla[2].emergency_virtual_cost.is_zero());
    EXPECT_EQ(r.total_recovery_cost, Money::from_dollars(std::int64_t{600}));
}

TEST(Chaos, VirtualLinksAreNeverFaulted) {
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    // A trace that names the virtual link is ignored for that link.
    const std::vector<Fault> trace{
        {FaultKind::kLinkCut, 1, 1, {fx.v, fx.a}, 0.0, "cut a and v"}};
    const ChaosOutcome r =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kLoad, 3));
    ASSERT_TRUE(r.provisioned);
    // `a` is gone but the virtual fallback still carries everything.
    EXPECT_NEAR(r.sla[1].delivered_fraction, 1.0, 1e-9);
    EXPECT_GT(r.sla[1].virtual_share, 0.99);
}

TEST(Chaos, FaultTraceIsDeterministicInSeed) {
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    const auto srlgs = shared_risk_groups(fx.graph);
    FaultInjectorOptions opt;
    opt.epochs = 6;
    opt.intensity = 2.0;
    opt.seed = 7;
    const auto t1 = draw_fault_trace(pool, srlgs, opt);
    const auto t2 = draw_fault_trace(pool, srlgs, opt);
    EXPECT_EQ(t1, t2);
    ASSERT_FALSE(t1.empty());
    for (const Fault& f : t1) {
        EXPECT_GE(f.start_epoch, 1u);
        EXPECT_LT(f.start_epoch, opt.epochs);
        EXPECT_GE(f.repair_epochs, 1u);
        EXPECT_FALSE(f.links.empty());
        EXPECT_GE(f.capacity_factor, 0.0);
        EXPECT_LT(f.capacity_factor, 1.0);
        if (f.kind == FaultKind::kBrownout) EXPECT_GT(f.capacity_factor, 0.0);
        for (const net::LinkId l : f.links) {
            EXPECT_TRUE(pool.is_offered(l));
            EXPECT_FALSE(pool.is_virtual(l));  // contracted fallback is immune
        }
    }

    opt.seed = 8;
    const auto t3 = draw_fault_trace(pool, srlgs, opt);
    EXPECT_NE(t1, t3);
}

TEST(Chaos, InjectedTraceIsSurvivableUnderStrictConstraint) {
    // End-to-end smoke: a drawn trace replayed against a #3 backbone
    // keeps mean delivery above the #1 backbone's (or at least never
    // below), and the engine terminates with one record per epoch.
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    FaultInjectorOptions iopt;
    iopt.epochs = 6;
    iopt.intensity = 1.5;
    iopt.seed = 11;
    const auto trace = draw_fault_trace(pool, shared_risk_groups(fx.graph), iopt);

    const ChaosOutcome r1 =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kLoad, 6));
    const ChaosOutcome r3 =
        run_chaos(pool, fx.tm, trace, fx.options(market::ConstraintKind::kPerPairFailure, 6));
    ASSERT_TRUE(r1.provisioned);
    ASSERT_TRUE(r3.provisioned);
    EXPECT_EQ(r1.sla.size(), 6u);
    EXPECT_EQ(r3.sla.size(), 6u);
    EXPECT_GE(r3.mean_delivered_fraction, r1.mean_delivered_fraction - 1e-9);
}

TEST(Chaos, RejectsMalformedFaults) {
    ChaosFixture fx;
    const auto pool = fx.pool();
    const ChaosOptions opt = fx.options(market::ConstraintKind::kLoad, 3);

    std::vector<Fault> bad_factor{{FaultKind::kBrownout, 1, 1, {fx.a}, 1.5, "bad"}};
    EXPECT_THROW(run_chaos(pool, fx.tm, bad_factor, opt), util::ContractViolation);

    std::vector<Fault> bad_repair{{FaultKind::kLinkCut, 1, 0, {fx.a}, 0.0, "bad"}};
    EXPECT_THROW(run_chaos(pool, fx.tm, bad_repair, opt), util::ContractViolation);

    std::vector<Fault> bad_link{
        {FaultKind::kLinkCut, 1, 1, {net::LinkId{99u}}, 0.0, "bad"}};
    EXPECT_THROW(run_chaos(pool, fx.tm, bad_link, opt), util::ContractViolation);
}

TEST(Chaos, ParallelCachedReauctionsMatchSerial) {
    // Off-cycle re-auctions inherit the engine knobs from
    // ChaosOptions::request.auction; the parallel/cached engine is
    // bit-identical to serial, so the whole chaos trajectory — SLA
    // series, outlays, recovery accounting — must match exactly.
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    FaultInjectorOptions iopt;
    iopt.epochs = 6;
    iopt.intensity = 1.5;
    iopt.seed = 23;
    const auto trace = draw_fault_trace(pool, shared_risk_groups(fx.graph), iopt);

    ChaosOptions serial = fx.options(market::ConstraintKind::kPerPairFailure, 6);
    ChaosOptions engine = serial;
    engine.request.auction.threads = 8;
    engine.request.auction.cache = true;

    const ChaosOutcome base = run_chaos(pool, fx.tm, trace, serial);
    const ChaosOutcome r = run_chaos(pool, fx.tm, trace, engine);
    ASSERT_EQ(base.provisioned, r.provisioned);
    ASSERT_EQ(base.sla.size(), r.sla.size());
    for (std::size_t i = 0; i < base.sla.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(base.sla[i].delivered_fraction, r.sla[i].delivered_fraction);
        EXPECT_EQ(base.sla[i].outlay, r.sla[i].outlay);
        EXPECT_EQ(base.sla[i].emergency_virtual_cost, r.sla[i].emergency_virtual_cost);
        EXPECT_EQ(base.sla[i].reauction_triggered, r.sla[i].reauction_triggered);
        EXPECT_EQ(base.sla[i].degraded_mode, r.sla[i].degraded_mode);
    }
    EXPECT_EQ(base.reauction_count, r.reauction_count);
    EXPECT_EQ(base.failed_reauctions, r.failed_reauctions);
    EXPECT_EQ(base.epochs_to_restore, r.epochs_to_restore);
    EXPECT_EQ(base.baseline_outlay, r.baseline_outlay);
    EXPECT_EQ(base.total_recovery_cost, r.total_recovery_cost);
}

TEST(Chaos, PathCacheTrajectoryBitIdentical) {
    // The epoch-invalidated PathCache threads through the initial
    // provision, every epoch's flow simulation, and the off-cycle
    // re-auction/recovery path. With it disabled the exact same
    // trajectory must come out — the cache only skips recomputation of
    // trees it has already seen for the same (mask, source, metric).
    ChaosFixture fx(/*with_virtual=*/true);
    const auto pool = fx.pool();
    FaultInjectorOptions iopt;
    iopt.epochs = 6;
    iopt.intensity = 1.8;
    iopt.seed = 31;
    const auto trace = draw_fault_trace(pool, shared_risk_groups(fx.graph), iopt);

    for (const auto constraint :
         {market::ConstraintKind::kLoad, market::ConstraintKind::kPerPairFailure}) {
        SCOPED_TRACE(static_cast<int>(constraint));
        ChaosOptions with_cache = fx.options(constraint, 6);
        with_cache.use_path_cache = true;
        ChaosOptions without = fx.options(constraint, 6);
        without.use_path_cache = false;

        const ChaosOutcome a = run_chaos(pool, fx.tm, trace, with_cache);
        const ChaosOutcome b = run_chaos(pool, fx.tm, trace, without);
        ASSERT_EQ(a.provisioned, b.provisioned);
        ASSERT_EQ(a.sla.size(), b.sla.size());
        for (std::size_t i = 0; i < a.sla.size(); ++i) {
            SCOPED_TRACE(i);
            EXPECT_EQ(a.sla[i].delivered_fraction, b.sla[i].delivered_fraction);
            EXPECT_EQ(a.sla[i].virtual_share, b.sla[i].virtual_share);
            EXPECT_EQ(a.sla[i].outlay, b.sla[i].outlay);
            EXPECT_EQ(a.sla[i].emergency_virtual_cost, b.sla[i].emergency_virtual_cost);
            EXPECT_EQ(a.sla[i].links_down, b.sla[i].links_down);
            EXPECT_EQ(a.sla[i].links_degraded, b.sla[i].links_degraded);
            EXPECT_EQ(a.sla[i].reauction_triggered, b.sla[i].reauction_triggered);
            EXPECT_EQ(a.sla[i].degraded_mode, b.sla[i].degraded_mode);
        }
        EXPECT_EQ(a.reauction_count, b.reauction_count);
        EXPECT_EQ(a.failed_reauctions, b.failed_reauctions);
        EXPECT_EQ(a.epochs_to_restore, b.epochs_to_restore);
        EXPECT_EQ(a.baseline_outlay, b.baseline_outlay);
        EXPECT_EQ(a.total_recovery_cost, b.total_recovery_cost);
        EXPECT_EQ(a.min_delivered_fraction, b.min_delivered_fraction);
        EXPECT_EQ(a.mean_delivered_fraction, b.mean_delivered_fraction);
    }
}

TEST(Chaos, InfeasibleInitialAuctionReported) {
    ChaosFixture fx;
    const auto pool = fx.pool();
    net::TrafficMatrix heavy{{net::NodeId{0u}, net::NodeId{1u}, 100.0}};
    const ChaosOutcome r =
        run_chaos(pool, heavy, {}, fx.options(market::ConstraintKind::kLoad, 3));
    EXPECT_FALSE(r.provisioned);
    EXPECT_TRUE(r.sla.empty());
}

}  // namespace
}  // namespace poc::sim
