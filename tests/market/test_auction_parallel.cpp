// The determinism contract of the parallel/cached auction engine
// (DESIGN.md §5): Clarke pivots are independent and oracle verdicts are
// pure functions of the link set, so fanning the pivot re-solves across
// a thread pool and memoizing verdicts/solves must produce the same
// AuctionResult bit for bit — selection, payments, PoB, outlay — as the
// serial uncached path, for any thread count.
#include <gtest/gtest.h>

#include "helpers/market.hpp"
#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "net/path_cache.hpp"
#include "topo/traffic.hpp"

namespace poc::market {
namespace {

void expect_identical(const AuctionResult& a, const AuctionResult& b, const char* what) {
    SCOPED_TRACE(what);
    EXPECT_EQ(a.selection.links, b.selection.links);
    EXPECT_EQ(a.selection.cost, b.selection.cost);
    EXPECT_EQ(a.virtual_cost, b.virtual_cost);
    EXPECT_EQ(a.total_outlay, b.total_outlay);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.outcomes[i].bp, b.outcomes[i].bp);
        EXPECT_EQ(a.outcomes[i].name, b.outcomes[i].name);
        EXPECT_EQ(a.outcomes[i].selected_links, b.outcomes[i].selected_links);
        EXPECT_EQ(a.outcomes[i].bid_cost, b.outcomes[i].bid_cost);
        EXPECT_EQ(a.outcomes[i].cost_without, b.outcomes[i].cost_without);
        EXPECT_EQ(a.outcomes[i].payment, b.outcomes[i].payment);
        EXPECT_EQ(a.outcomes[i].pivot_defined, b.outcomes[i].pivot_defined);
        // pob is the same Money ratio in every mode: bitwise equality.
        EXPECT_EQ(a.outcomes[i].pob, b.outcomes[i].pob);
    }
}

struct EngineConfig {
    std::size_t threads;
    bool cache;
    const char* label;
};

constexpr EngineConfig kConfigs[] = {
    {1, true, "serial+cache"},   {2, false, "2 threads"}, {2, true, "2 threads+cache"},
    {8, false, "8 threads"},     {8, true, "8 threads+cache"},
};

class ParallelAuctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelAuctionProperty, RandomPoolsHeuristicSolver) {
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();

    auto run = [&](const AuctionOptions& opt) {
        // Fresh oracle per run so lifetime query counts are comparable.
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (!baseline) continue;
        expect_identical(*baseline, *result, config.label);
        if (!config.cache) {
            // Uncached runs perform the identical query sequence, just
            // possibly reordered across threads: same total count.
            EXPECT_EQ(result->oracle_queries, baseline->oracle_queries) << config.label;
            EXPECT_EQ(result->oracle_cache_hits, 0u) << config.label;
        } else {
            // Each heuristic solve re-verifies its final selection
            // (select_links' postcondition), which is always a repeat
            // of an earlier verdict: at least that much must hit.
            EXPECT_GE(result->oracle_cache_hits, 1u) << config.label;
            EXPECT_LE(result->oracle_queries, baseline->oracle_queries) << config.label;
        }
    }
}

TEST_P(ParallelAuctionProperty, RandomPoolsExactSolver) {
    test::RandomSmallInstance inst(GetParam() * 3 + 1);
    const OfferPool pool = inst.pool();

    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    AuctionOptions serial;
    serial.exact = true;
    const auto baseline = run(serial);
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.exact = true;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (baseline) expect_identical(*baseline, *result, config.label);
    }
}

TEST_P(ParallelAuctionProperty, GeneratedTopologyFastOracle) {
    // Figure-2-shaped instance: generated BP topologies, gravity
    // traffic, the fast oracle — the scale the parallel engine exists
    // for, shrunk to test size.
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 6;
    bopt.min_cities = 6;
    bopt.max_cities = 12;
    bopt.seed = GetParam();
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    const auto pool = make_offer_pool(topology, {}, vopt);
    topo::GravityOptions gopt;
    gopt.total_gbps = 300.0;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 15);

    OracleOptions oopt;
    oopt.fidelity = OracleFidelity::kFast;
    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(pool.graph(), tm, ConstraintKind::kLoad, oopt);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (baseline) expect_identical(*baseline, *result, config.label);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelAuctionProperty,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

TEST(ParallelPivotCutover, EngagementRulePinned) {
    // The small-instance guard: below `parallel_min_pivots` Clarke
    // pivots, pool setup costs more than the fan-out saves, so the
    // engine must stay serial. Pin the default and the exact cutover.
    AuctionOptions opt;
    EXPECT_EQ(opt.parallel_min_pivots, 8u);

    opt.threads = 4;
    EXPECT_FALSE(parallel_pivots_engaged(opt, 0));
    EXPECT_FALSE(parallel_pivots_engaged(opt, 1));
    EXPECT_FALSE(parallel_pivots_engaged(opt, 7));  // one below the default
    EXPECT_TRUE(parallel_pivots_engaged(opt, 8));   // exactly at the default
    EXPECT_TRUE(parallel_pivots_engaged(opt, 100));

    opt.threads = 1;  // serial request never engages
    EXPECT_FALSE(parallel_pivots_engaged(opt, 100));

    opt.threads = 2;
    opt.parallel_min_pivots = 0;  // floor removed: only the >1 guard remains
    EXPECT_FALSE(parallel_pivots_engaged(opt, 1));
    EXPECT_TRUE(parallel_pivots_engaged(opt, 2));

    opt.parallel_min_pivots = 3;
    EXPECT_FALSE(parallel_pivots_engaged(opt, 2));
    EXPECT_TRUE(parallel_pivots_engaged(opt, 3));
}

TEST(ParallelPivotCutover, BothSidesOfCutoverBitIdentical) {
    // 3-bid instances sit below the default threshold: force the
    // threshold to both sides of the instance size and require the
    // identical result either way.
    for (const std::uint64_t seed : {501u, 502u, 503u}) {
        test::RandomSmallInstance inst(seed);
        const OfferPool pool = inst.pool();
        auto run = [&](const AuctionOptions& opt) {
            const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
            return run_auction(pool, oracle, opt);
        };
        const auto baseline = run({});

        AuctionOptions engaged;  // pivots >= threshold: pool fan-out
        engaged.threads = 8;
        engaged.parallel_min_pivots = 2;
        AuctionOptions below;  // pivots < threshold: serial fallback
        below.threads = 8;
        below.parallel_min_pivots = 100;
        ASSERT_TRUE(parallel_pivots_engaged(engaged, pool.bids().size()));
        ASSERT_FALSE(parallel_pivots_engaged(below, pool.bids().size()));

        const auto a = run(engaged);
        const auto b = run(below);
        ASSERT_EQ(baseline.has_value(), a.has_value());
        ASSERT_EQ(baseline.has_value(), b.has_value());
        if (baseline) {
            expect_identical(*baseline, *a, "engaged");
            expect_identical(*baseline, *b, "below cutover");
        }
    }
}

class PathCacheAuctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PathCacheAuctionProperty, SharedTreeCacheIsBitIdentical) {
    // OracleOptions::path_cache reuses SSSP trees across Clarke-pivot
    // masks in the per-pair-failure constraint (the SSSP-heaviest
    // oracle). The auction outcome must not change, and on these
    // instances the pivots' overlapping masks must actually hit.
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();

    for (const OracleFidelity fidelity : {OracleFidelity::kExact, OracleFidelity::kFast}) {
        SCOPED_TRACE(fidelity == OracleFidelity::kExact ? "exact" : "fast");
        OracleOptions base_opt;
        base_opt.fidelity = fidelity;
        const AcceptabilityOracle plain(inst.graph, inst.tm,
                                        ConstraintKind::kPerPairFailure, base_opt);
        const auto baseline = run_auction(pool, plain, {});

        net::PathCache cache;
        OracleOptions cached_opt = base_opt;
        cached_opt.path_cache = &cache;
        const AcceptabilityOracle cached(inst.graph, inst.tm,
                                         ConstraintKind::kPerPairFailure, cached_opt);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            AuctionOptions aopt;
            aopt.threads = threads;
            aopt.parallel_min_pivots = 2;
            const auto result = run_auction(pool, cached, aopt);
            ASSERT_EQ(baseline.has_value(), result.has_value());
            if (baseline) expect_identical(*baseline, *result, "path cache");
        }
        if (baseline) EXPECT_GT(cache.stats().hits, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathCacheAuctionProperty, ::testing::Values(411, 412, 413));

}  // namespace
}  // namespace poc::market
