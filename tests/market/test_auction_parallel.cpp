// The determinism contract of the parallel/cached auction engine
// (DESIGN.md §5): Clarke pivots are independent and oracle verdicts are
// pure functions of the link set, so fanning the pivot re-solves across
// a thread pool and memoizing verdicts/solves must produce the same
// AuctionResult bit for bit — selection, payments, PoB, outlay — as the
// serial uncached path, for any thread count.
#include <gtest/gtest.h>

#include "helpers/market.hpp"
#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"

namespace poc::market {
namespace {

void expect_identical(const AuctionResult& a, const AuctionResult& b, const char* what) {
    SCOPED_TRACE(what);
    EXPECT_EQ(a.selection.links, b.selection.links);
    EXPECT_EQ(a.selection.cost, b.selection.cost);
    EXPECT_EQ(a.virtual_cost, b.virtual_cost);
    EXPECT_EQ(a.total_outlay, b.total_outlay);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.outcomes[i].bp, b.outcomes[i].bp);
        EXPECT_EQ(a.outcomes[i].name, b.outcomes[i].name);
        EXPECT_EQ(a.outcomes[i].selected_links, b.outcomes[i].selected_links);
        EXPECT_EQ(a.outcomes[i].bid_cost, b.outcomes[i].bid_cost);
        EXPECT_EQ(a.outcomes[i].cost_without, b.outcomes[i].cost_without);
        EXPECT_EQ(a.outcomes[i].payment, b.outcomes[i].payment);
        EXPECT_EQ(a.outcomes[i].pivot_defined, b.outcomes[i].pivot_defined);
        // pob is the same Money ratio in every mode: bitwise equality.
        EXPECT_EQ(a.outcomes[i].pob, b.outcomes[i].pob);
    }
}

struct EngineConfig {
    std::size_t threads;
    bool cache;
    const char* label;
};

constexpr EngineConfig kConfigs[] = {
    {1, true, "serial+cache"},   {2, false, "2 threads"}, {2, true, "2 threads+cache"},
    {8, false, "8 threads"},     {8, true, "8 threads+cache"},
};

class ParallelAuctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelAuctionProperty, RandomPoolsHeuristicSolver) {
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();

    auto run = [&](const AuctionOptions& opt) {
        // Fresh oracle per run so lifetime query counts are comparable.
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (!baseline) continue;
        expect_identical(*baseline, *result, config.label);
        if (!config.cache) {
            // Uncached runs perform the identical query sequence, just
            // possibly reordered across threads: same total count.
            EXPECT_EQ(result->oracle_queries, baseline->oracle_queries) << config.label;
            EXPECT_EQ(result->oracle_cache_hits, 0u) << config.label;
        } else {
            // Each heuristic solve re-verifies its final selection
            // (select_links' postcondition), which is always a repeat
            // of an earlier verdict: at least that much must hit.
            EXPECT_GE(result->oracle_cache_hits, 1u) << config.label;
            EXPECT_LE(result->oracle_queries, baseline->oracle_queries) << config.label;
        }
    }
}

TEST_P(ParallelAuctionProperty, RandomPoolsExactSolver) {
    test::RandomSmallInstance inst(GetParam() * 3 + 1);
    const OfferPool pool = inst.pool();

    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    AuctionOptions serial;
    serial.exact = true;
    const auto baseline = run(serial);
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.exact = true;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (baseline) expect_identical(*baseline, *result, config.label);
    }
}

TEST_P(ParallelAuctionProperty, GeneratedTopologyFastOracle) {
    // Figure-2-shaped instance: generated BP topologies, gravity
    // traffic, the fast oracle — the scale the parallel engine exists
    // for, shrunk to test size.
    topo::BpGeneratorOptions bopt;
    bopt.bp_count = 6;
    bopt.min_cities = 6;
    bopt.max_cities = 12;
    bopt.seed = GetParam();
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    market::VirtualLinkOptions vopt;
    vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
    const auto pool = make_offer_pool(topology, {}, vopt);
    topo::GravityOptions gopt;
    gopt.total_gbps = 300.0;
    const auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 15);

    OracleOptions oopt;
    oopt.fidelity = OracleFidelity::kFast;
    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(pool.graph(), tm, ConstraintKind::kLoad, oopt);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});
    for (const EngineConfig& config : kConfigs) {
        AuctionOptions opt;
        opt.threads = config.threads;
        opt.cache = config.cache;
        const auto result = run(opt);
        ASSERT_EQ(baseline.has_value(), result.has_value()) << config.label;
        if (baseline) expect_identical(*baseline, *result, config.label);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelAuctionProperty,
                         ::testing::Values(401, 402, 403, 404, 405, 406));

}  // namespace
}  // namespace poc::market
