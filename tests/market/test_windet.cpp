#include "market/windet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers/market.hpp"

namespace poc::market {
namespace {

using util::operator""_usd;

TEST(SelectLinks, PicksCheapestSufficientParallelLink) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto sel = select_links(pool, oracle, pool.offered_links());
    ASSERT_TRUE(sel.has_value());
    ASSERT_EQ(sel->links.size(), 1u);
    EXPECT_EQ(sel->links[0], net::LinkId{0u});  // the $100 one
    EXPECT_EQ(sel->cost, 100_usd);
}

TEST(SelectLinks, TwoLinksWhenDemandExceedsOne) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(15.0), ConstraintKind::kLoad);
    const auto sel = select_links(pool, oracle, pool.offered_links());
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->links.size(), 2u);
    EXPECT_EQ(sel->cost, 250_usd);  // $100 + $150
}

TEST(SelectLinks, InfeasibleReturnsNullopt) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(100.0), ConstraintKind::kLoad);
    EXPECT_FALSE(select_links(pool, oracle, pool.offered_links()).has_value());
}

TEST(SelectLinks, RespectsAvailableSubset) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    // Without BP A's link, the $150 one wins.
    const auto sel = select_links(pool, oracle, {net::LinkId{1u}, net::LinkId{2u}});
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->links, (std::vector<net::LinkId>{net::LinkId{1u}}));
}

TEST(SelectLinks, ResultAlwaysAcceptable) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        test::RandomSmallInstance inst(seed);
        const OfferPool pool = inst.pool();
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        const auto sel = select_links(pool, oracle, pool.offered_links());
        if (!sel) continue;
        EXPECT_TRUE(oracle.accepts(net::Subgraph(inst.graph, sel->links)));
        const auto cost = pool.total_cost(sel->links);
        ASSERT_TRUE(cost.has_value());
        EXPECT_EQ(*cost, sel->cost);
    }
}

TEST(SelectLinksExact, MatchesBruteForceOnTinyInstances) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        test::RandomSmallInstance inst(seed);
        const OfferPool pool = inst.pool();
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);

        const auto exact = select_links_exact(pool, oracle, pool.offered_links());

        // Brute force all subsets.
        const auto& links = pool.offered_links();
        const std::size_t n = links.size();
        ASSERT_LE(n, 12u);
        std::optional<util::Money> best;
        for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
            std::vector<net::LinkId> subset;
            for (std::size_t i = 0; i < n; ++i) {
                if (mask & (std::size_t{1} << i)) subset.push_back(links[i]);
            }
            if (!oracle.accepts(net::Subgraph(inst.graph, subset))) continue;
            const auto cost = pool.total_cost(subset);
            if (cost && (!best || *cost < *best)) best = *cost;
        }

        ASSERT_EQ(exact.has_value(), best.has_value()) << "seed " << seed;
        if (exact) {
            EXPECT_EQ(exact->cost, *best) << "seed " << seed;
        }
    }
}

TEST(SelectLinksExact, NeverWorseThanHeuristic) {
    for (std::uint64_t seed = 20; seed <= 26; ++seed) {
        test::RandomSmallInstance inst(seed);
        const OfferPool pool = inst.pool();
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        const auto exact = select_links_exact(pool, oracle, pool.offered_links());
        const auto heur = select_links(pool, oracle, pool.offered_links());
        ASSERT_EQ(exact.has_value(), heur.has_value());
        if (exact) {
            EXPECT_LE(exact->cost, heur->cost);
        }
    }
}

TEST(SelectLinksExact, RejectsBundleOverrides) {
    test::ParallelLinksFixture fx;
    auto bids = fx.bids;
    bids[0].override_bundle({net::LinkId{0u}}, 90_usd);
    const OfferPool pool(bids, fx.contract, fx.graph);
    const AcceptabilityOracle oracle(fx.graph, fx.demand(5.0), ConstraintKind::kLoad);
    EXPECT_THROW(select_links_exact(pool, oracle, pool.offered_links()),
                 util::ContractViolation);
}

TEST(SelectLinks, DiscountKeepsBundleWhenCheaper) {
    // One BP offers two links at $100 each with a 40% two-link discount
    // ($120 total); a rival's single link costs $130. Demand fits on
    // one link, but the discounted pair is cheaper than rival+nothing?
    // Keeping one of the pair alone costs $100 - the cheapest option.
    // Deletion must not stop at the $120 bundle out of fear of losing
    // the discount.
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 10.0, 1.0);
    const auto l1 = g.add_link(a, b, 10.0, 1.0);
    const auto l2 = g.add_link(a, b, 10.0, 1.0);
    BpBid bid1(BpId{0u}, "pair");
    bid1.offer(l0, 100_usd);
    bid1.offer(l1, 100_usd);
    bid1.add_discount(DiscountTier{2, 0.4});
    BpBid bid2(BpId{1u}, "rival");
    bid2.offer(l2, 130_usd);
    const OfferPool pool({bid1, bid2}, {}, g);
    const AcceptabilityOracle oracle(g, {{a, b, 5.0}}, ConstraintKind::kLoad);
    const auto sel = select_links_exact(pool, oracle, pool.offered_links());
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->cost, 100_usd);
}

TEST(SelectLinks, BatchSizeOneStillWorks) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    WinnerDeterminationOptions opt;
    opt.batch_size = 1;
    const auto sel = select_links(pool, oracle, pool.offered_links(), opt);
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(sel->cost, 100_usd);
}

}  // namespace
}  // namespace poc::market
