// Determinism and oracle-fidelity properties of the auction pipeline.
// The paper argues the POC must use "an open algorithm so that it
// cannot be accused of favoritism" - openness is only meaningful if the
// algorithm is reproducible, so determinism is a contract here, not a
// nicety.
#include <gtest/gtest.h>

#include "helpers/market.hpp"
#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"

namespace poc::market {
namespace {

class AuctionDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuctionDeterminism, IdenticalInputsIdenticalOutcomes) {
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
    const auto a = run_auction(pool, oracle);
    const auto b = run_auction(pool, oracle);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) return;
    EXPECT_EQ(a->selection.links, b->selection.links);
    EXPECT_EQ(a->selection.cost, b->selection.cost);
    for (std::size_t i = 0; i < a->outcomes.size(); ++i) {
        EXPECT_EQ(a->outcomes[i].payment, b->outcomes[i].payment);
        EXPECT_EQ(a->outcomes[i].selected_links, b->outcomes[i].selected_links);
    }
}

TEST_P(AuctionDeterminism, FastAcceptImpliesExactAcceptForLoad) {
    // The kFast load oracle is greedy routing, which is a feasibility
    // *certificate*: anything it accepts, the exact oracle accepts.
    test::RandomSmallInstance inst(GetParam() * 7 + 1);
    OracleOptions fast;
    fast.fidelity = OracleFidelity::kFast;
    const AcceptabilityOracle fast_oracle(inst.graph, inst.tm, ConstraintKind::kLoad, fast);
    const AcceptabilityOracle exact_oracle(inst.graph, inst.tm, ConstraintKind::kLoad);

    util::Rng rng(GetParam() * 31 + 5);
    const OfferPool pool = inst.pool();
    for (int probe = 0; probe < 30; ++probe) {
        std::vector<net::LinkId> subset;
        for (const net::LinkId l : pool.offered_links()) {
            if (rng.bernoulli(0.7)) subset.push_back(l);
        }
        const net::Subgraph sg(inst.graph, subset);
        if (fast_oracle.accepts(sg)) {
            EXPECT_TRUE(exact_oracle.accepts(sg));
        }
    }
}

TEST_P(AuctionDeterminism, FastAcceptImpliesExactAcceptForPerPair) {
    // Same certificate property for the per-pair constraint: the kFast
    // check runs the same greedy router the exact semantics accept as
    // sufficient proof.
    test::RandomSmallInstance inst(GetParam() * 13 + 3);
    OracleOptions fast;
    fast.fidelity = OracleFidelity::kFast;
    const AcceptabilityOracle fast_oracle(inst.graph, inst.tm,
                                          ConstraintKind::kPerPairFailure, fast);
    const AcceptabilityOracle exact_oracle(inst.graph, inst.tm,
                                           ConstraintKind::kPerPairFailure);
    util::Rng rng(GetParam() * 17 + 2);
    const OfferPool pool = inst.pool();
    for (int probe = 0; probe < 20; ++probe) {
        std::vector<net::LinkId> subset;
        for (const net::LinkId l : pool.offered_links()) {
            if (rng.bernoulli(0.8)) subset.push_back(l);
        }
        const net::Subgraph sg(inst.graph, subset);
        if (fast_oracle.accepts(sg)) {
            EXPECT_TRUE(exact_oracle.accepts(sg));
        }
    }
}

TEST_P(AuctionDeterminism, PipelineDeterministicFromSeeds) {
    // The full generated pipeline (topology -> pricing -> auction) is a
    // pure function of its seeds.
    auto build = [&] {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = 6;
        bopt.min_cities = 6;
        bopt.max_cities = 12;
        bopt.seed = GetParam();
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        auto topology = topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
        market::VirtualLinkOptions vopt;
        vopt.attach_count = std::min<std::size_t>(3, topology.router_city.size());
        auto pool = make_offer_pool(topology, {}, vopt);
        topo::GravityOptions gopt;
        gopt.total_gbps = 300.0;
        auto tm = topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 15);
        OracleOptions oopt;
        oopt.fidelity = OracleFidelity::kFast;
        const AcceptabilityOracle oracle(pool.graph(), tm, ConstraintKind::kLoad, oopt);
        auto result = run_auction(pool, oracle);
        return result ? result->total_outlay : util::Money{};
    };
    EXPECT_EQ(build(), build());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionDeterminism, ::testing::Values(201, 202, 203, 204, 205));

}  // namespace
}  // namespace poc::market
