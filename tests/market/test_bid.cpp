#include "market/bid.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"
#include "util/contracts.hpp"

namespace poc::market {
namespace {

using util::Money;
using util::operator""_usd;

TEST(BpBid, AdditiveCost) {
    net::Graph g = test::triangle();
    BpBid bid(BpId{0u}, "A");
    bid.offer(net::LinkId{0u}, 100_usd);
    bid.offer(net::LinkId{1u}, 50_usd);
    EXPECT_EQ(bid.cost({net::LinkId{0u}}), 100_usd);
    EXPECT_EQ(bid.cost({net::LinkId{0u}, net::LinkId{1u}}), 150_usd);
}

TEST(BpBid, EmptySubsetIsFree) {
    BpBid bid(BpId{0u}, "A");
    EXPECT_EQ(bid.cost({}), Money{});
}

TEST(BpBid, UnofferedLinkIsInfinite) {
    BpBid bid(BpId{0u}, "A");
    bid.offer(net::LinkId{0u}, 100_usd);
    EXPECT_FALSE(bid.cost({net::LinkId{1u}}).has_value());
    EXPECT_FALSE(bid.cost({net::LinkId{0u}, net::LinkId{1u}}).has_value());
}

TEST(BpBid, VolumeDiscountAppliesAtThreshold) {
    BpBid bid(BpId{0u}, "A");
    bid.offer(net::LinkId{0u}, 100_usd);
    bid.offer(net::LinkId{1u}, 100_usd);
    bid.offer(net::LinkId{2u}, 100_usd);
    bid.add_discount(DiscountTier{3, 0.10});
    EXPECT_EQ(bid.cost({net::LinkId{0u}, net::LinkId{1u}}), 200_usd);  // below threshold
    EXPECT_EQ(bid.cost({net::LinkId{0u}, net::LinkId{1u}, net::LinkId{2u}}), 270_usd);
}

TEST(BpBid, LargestTierWins) {
    BpBid bid(BpId{0u}, "A");
    for (std::uint32_t i = 0; i < 4; ++i) bid.offer(net::LinkId{i}, 100_usd);
    bid.add_discount(DiscountTier{2, 0.05});
    bid.add_discount(DiscountTier{4, 0.20});
    EXPECT_EQ(bid.cost({net::LinkId{0u}, net::LinkId{1u}, net::LinkId{2u}, net::LinkId{3u}}),
              320_usd);
    EXPECT_DOUBLE_EQ(bid.max_discount_fraction(), 0.20);
}

TEST(BpBid, BundleOverrideTakesPrecedence) {
    BpBid bid(BpId{0u}, "A");
    bid.offer(net::LinkId{0u}, 100_usd);
    bid.offer(net::LinkId{1u}, 100_usd);
    bid.override_bundle({net::LinkId{1u}, net::LinkId{0u}}, 120_usd);  // unsorted input ok
    EXPECT_EQ(bid.cost({net::LinkId{0u}, net::LinkId{1u}}), 120_usd);
    EXPECT_EQ(bid.cost({net::LinkId{0u}}), 100_usd);  // singleton unaffected
    EXPECT_TRUE(bid.has_bundle_overrides());
}

TEST(BpBid, RejectsDuplicateOfferAndBadInputs) {
    BpBid bid(BpId{0u}, "A");
    bid.offer(net::LinkId{0u}, 100_usd);
    EXPECT_THROW(bid.offer(net::LinkId{0u}, 50_usd), util::ContractViolation);
    EXPECT_THROW(bid.offer(net::LinkId{1u}, Money{}), util::ContractViolation);
    EXPECT_THROW(bid.add_discount(DiscountTier{1, 0.5}), util::ContractViolation);
    EXPECT_THROW(bid.add_discount(DiscountTier{2, 1.0}), util::ContractViolation);
    EXPECT_THROW(bid.override_bundle({net::LinkId{9u}}, 10_usd), util::ContractViolation);
}

TEST(VirtualLinks, AdditiveContractCost) {
    VirtualLinkContract c;
    c.add(net::LinkId{0u}, 300_usd);
    c.add(net::LinkId{1u}, 200_usd);
    EXPECT_EQ(c.cost({net::LinkId{0u}, net::LinkId{1u}}), 500_usd);
    EXPECT_EQ(c.cost({}), Money{});
    EXPECT_EQ(c.price(net::LinkId{1u}), 200_usd);
    EXPECT_THROW(c.price(net::LinkId{9u}), util::ContractViolation);
}

TEST(OfferPool, OwnerLookup) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    EXPECT_EQ(pool.owner(net::LinkId{0u}), BpId{0u});
    EXPECT_EQ(pool.owner(net::LinkId{2u}), BpId{2u});
    EXPECT_FALSE(pool.is_virtual(net::LinkId{0u}));
    EXPECT_EQ(pool.offered_links().size(), 3u);
}

TEST(OfferPool, TotalCostSumsAcrossOwners) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const auto cost = pool.total_cost({net::LinkId{0u}, net::LinkId{1u}, net::LinkId{2u}});
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 500_usd);
}

TEST(OfferPool, OwnedSubsetFilters) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const auto links = pool.owned_subset(
        {net::LinkId{0u}, net::LinkId{1u}, net::LinkId{2u}}, BpId{1u});
    ASSERT_EQ(links.size(), 1u);
    EXPECT_EQ(links[0], net::LinkId{1u});
}

TEST(OfferPool, VirtualLinkOwnership) {
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 5.0, 1.0);
    const auto l1 = g.add_link(a, b, 5.0, 1.0);
    BpBid bid(BpId{0u}, "A");
    bid.offer(l0, 100_usd);
    VirtualLinkContract c;
    c.add(l1, 400_usd);
    const OfferPool pool({bid}, c, g);
    EXPECT_TRUE(pool.is_virtual(l1));
    EXPECT_FALSE(pool.owner(l1).valid());
    const auto cost = pool.total_cost({l0, l1});
    ASSERT_TRUE(cost.has_value());
    EXPECT_EQ(*cost, 500_usd);
}

TEST(OfferPool, UnofferedGraphLinksAreAbsent) {
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 5.0, 1.0);
    g.add_link(a, b, 5.0, 1.0);  // nobody offers this one
    BpBid bid(BpId{0u}, "A");
    bid.offer(l0, 100_usd);
    const OfferPool pool({bid}, {}, g);
    EXPECT_EQ(pool.offered_links().size(), 1u);
    EXPECT_FALSE(pool.is_offered(net::LinkId{1u}));
    EXPECT_THROW(pool.owner(net::LinkId{1u}), util::ContractViolation);
}

TEST(OfferPool, RejectsDoubleOwnership) {
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 5.0, 1.0);
    BpBid bid1(BpId{0u}, "A");
    bid1.offer(l0, 100_usd);
    BpBid bid2(BpId{1u}, "B");
    bid2.offer(l0, 150_usd);
    EXPECT_THROW(OfferPool({bid1, bid2}, {}, g), util::ContractViolation);
}

TEST(OfferPool, BidLookupByIdAndUnknownRejected) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    EXPECT_EQ(pool.bid(BpId{1u}).name(), "B");
    EXPECT_THROW(pool.bid(BpId{9u}), util::ContractViolation);
}

}  // namespace
}  // namespace poc::market
