// Property tests for the auction's incentive guarantees, run with the
// exact winner determination (VCG's strategyproofness presumes exact
// optimization). Paper section 3.3: "we use a strategy-proof auction
// whereby BPs are incentivized to reveal the minimal acceptable
// payments".
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers/market.hpp"
#include "market/manipulation.hpp"

namespace poc::market {
namespace {

using util::Money;

AuctionOptions exact_options() {
    AuctionOptions opt;
    opt.exact = true;
    return opt;
}

class VcgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcgProperty, TruthfulBiddingIsDominant) {
    // For every BP and a grid of uniform misreport factors, utility
    // under truthful bidding >= utility under the misreport, where
    // utility = payment - true cost of links won.
    test::RandomSmallInstance inst(GetParam());
    const OfferPool truthful_pool = inst.pool();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);

    const auto truthful = run_auction(truthful_pool, oracle, exact_options());
    if (!truthful) return;  // instance infeasible; nothing to test

    for (const BpBid& bid : truthful_pool.bids()) {
        if (!truthful->outcome(bid.bp()).pivot_defined) {
            // A(OL - L_alpha) is empty: the paper's stated assumption
            // excludes this case, and the pay-your-bid fallback for an
            // essential monopolist is indeed not strategyproof.
            continue;
        }
        const auto true_cost = [&](const std::vector<net::LinkId>& links) {
            const auto c = inst.pool().bid(bid.bp()).cost(links);
            return c ? *c : Money{};
        };
        const Money honest_utility = bp_utility(*truthful, bid.bp(), true_cost);
        EXPECT_GE(honest_utility, Money{});  // individual rationality

        for (const double factor : {0.5, 0.8, 1.25, 2.0, 5.0}) {
            const OfferPool lied = with_scaled_bid(truthful_pool, bid.bp(), factor);
            const auto outcome = run_auction(lied, oracle, exact_options());
            if (!outcome) continue;
            const Money lied_utility = bp_utility(*outcome, bid.bp(), true_cost);
            EXPECT_LE(lied_utility, honest_utility + Money::from_micros(10))
                << "BP " << bid.name() << " gained by scaling bid x" << factor << " (seed "
                << GetParam() << ")";
        }
    }
}

TEST_P(VcgProperty, PaymentsCoverDeclaredCosts) {
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    if (!result) return;
    for (const BpOutcome& out : result->outcomes) {
        EXPECT_GE(out.payment, out.bid_cost);
    }
}

TEST_P(VcgProperty, SelectionIsCostOptimal) {
    // The exact winner determination's choice costs no more than 200
    // random acceptable subsets.
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
    const auto sel = select_links_exact(pool, oracle, pool.offered_links());
    if (!sel) return;

    util::Rng rng(GetParam() * 977 + 13);
    const auto& links = pool.offered_links();
    for (int probe = 0; probe < 200; ++probe) {
        std::vector<net::LinkId> subset;
        for (const net::LinkId l : links) {
            if (rng.bernoulli(0.6)) subset.push_back(l);
        }
        if (!oracle.accepts(net::Subgraph(inst.graph, subset))) continue;
        const auto cost = pool.total_cost(subset);
        ASSERT_TRUE(cost.has_value());
        EXPECT_LE(sel->cost, *cost);
    }
}

TEST_P(VcgProperty, WithholdingUnselectedLinksKeepsOwnPayoff) {
    // Paper: "they can decide to not offer any links not in this set
    // without changing their own payoff".
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
    const auto baseline = run_auction(pool, oracle, exact_options());
    if (!baseline) return;

    for (const BpBid& bid : pool.bids()) {
        const auto& won = baseline->outcome(bid.bp()).selected_links;
        std::vector<net::LinkId> withheld;
        for (const net::LinkId l : bid.offered_links()) {
            if (std::find(won.begin(), won.end(), l) == won.end()) withheld.push_back(l);
        }
        if (withheld.empty()) continue;
        const OfferPool reduced = with_withheld_links(pool, bid.bp(), withheld);
        const auto outcome = run_auction(reduced, oracle, exact_options());
        if (!outcome) continue;
        EXPECT_EQ(outcome->outcome(bid.bp()).payment, baseline->outcome(bid.bp()).payment)
            << "seed " << GetParam() << " BP " << bid.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcgProperty,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108, 109, 110));

}  // namespace
}  // namespace poc::market
