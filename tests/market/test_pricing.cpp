#include "market/pricing.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace poc::market {
namespace {

topo::PocTopology small_topology(std::uint64_t seed = 21) {
    topo::BpGeneratorOptions opt;
    opt.bp_count = 6;
    opt.min_cities = 6;
    opt.max_cities = 14;
    opt.seed = seed;
    topo::PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    return topo::build_poc_topology(topo::generate_bp_networks(opt), popt);
}

TEST(Pricing, EveryBpLinkGetsABid) {
    const auto topo = small_topology();
    const auto bids = make_bp_bids(topo);
    ASSERT_EQ(bids.size(), topo.bp_count);
    std::size_t offered = 0;
    for (const BpBid& b : bids) offered += b.offered_links().size();
    EXPECT_EQ(offered, topo.graph.link_count());
}

TEST(Pricing, PricesPositiveAndDistanceMonotoneOnAverage) {
    const auto topo = small_topology();
    const auto bids = make_bp_bids(topo);
    double short_sum = 0.0;
    double long_sum = 0.0;
    std::size_t short_n = 0;
    std::size_t long_n = 0;
    for (const BpBid& b : bids) {
        for (const net::LinkId l : b.offered_links()) {
            const util::Money p = b.base_price(l);
            EXPECT_GT(p, util::Money{});
            const double km = topo.graph.link(l).length_km;
            if (km < 2000.0) {
                short_sum += p.dollars();
                ++short_n;
            } else if (km > 5000.0) {
                long_sum += p.dollars();
                ++long_n;
            }
        }
    }
    if (short_n > 3 && long_n > 3) {
        EXPECT_LT(short_sum / static_cast<double>(short_n),
                  long_sum / static_cast<double>(long_n));
    }
}

TEST(Pricing, DeterministicInSeed) {
    const auto topo = small_topology();
    PricingOptions opt;
    opt.seed = 5;
    const auto a = make_bp_bids(topo, opt);
    const auto b = make_bp_bids(topo, opt);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (const net::LinkId l : a[i].offered_links()) {
            EXPECT_EQ(a[i].base_price(l), b[i].base_price(l));
        }
    }
}

TEST(Pricing, DiscountTiersAttachAboveThreshold) {
    const auto topo = small_topology();
    PricingOptions opt;
    opt.discount_threshold = 2;
    opt.discount_fraction = 0.1;
    const auto bids = make_bp_bids(topo, opt);
    for (const BpBid& b : bids) {
        if (b.offered_links().size() >= 2) {
            EXPECT_DOUBLE_EQ(b.max_discount_fraction(), 0.1);
        }
    }
}

TEST(Pricing, ZeroDiscountDisables) {
    const auto topo = small_topology();
    PricingOptions opt;
    opt.discount_fraction = 0.0;
    for (const BpBid& b : make_bp_bids(topo, opt)) {
        EXPECT_DOUBLE_EQ(b.max_discount_fraction(), 0.0);
    }
}

TEST(VirtualLinks, FullMeshBetweenAttachmentPoints) {
    auto topo = small_topology();
    const std::size_t before = topo.graph.link_count();
    VirtualLinkOptions vopt;
    vopt.attach_count = 4;
    const auto contract = add_virtual_links(topo, {}, vopt);
    EXPECT_EQ(topo.graph.link_count(), before + 6);  // C(4,2)
    EXPECT_EQ(contract.links().size(), 6u);
    for (const net::LinkId l : contract.links()) {
        EXPECT_EQ(topo.link_owner[l.index()], topo::kVirtualOwner);
        EXPECT_GT(contract.price(l), util::Money{});
    }
}

TEST(VirtualLinks, PricedAboveEquivalentLease) {
    auto topo = small_topology();
    PricingOptions pricing;
    pricing.link_noise = 0.0;
    pricing.bp_cost_sigma = 0.0;
    VirtualLinkOptions vopt;
    vopt.price_multiplier = 3.0;
    const auto contract = add_virtual_links(topo, pricing, vopt);
    // Multiplier 3 with equal base formula: virtual price must exceed a
    // same-length lease baseline. Spot-check one link.
    const net::LinkId l = contract.links().front();
    const net::Link& link = topo.graph.link(l);
    const double base = (pricing.fixed_usd + pricing.per_km_usd * link.length_km) *
                        std::pow(link.capacity_gbps / 100.0, pricing.capacity_exponent);
    EXPECT_NEAR(contract.price(l).dollars(), 3.0 * base, 1.0);
}

TEST(MakeOfferPool, CoversEverythingOnce) {
    auto topo = small_topology();
    const OfferPool pool = make_offer_pool(topo);
    EXPECT_EQ(pool.offered_links().size(), topo.graph.link_count());
    std::size_t virtual_count = 0;
    for (const net::LinkId l : pool.offered_links()) {
        if (pool.is_virtual(l)) ++virtual_count;
    }
    EXPECT_EQ(virtual_count, pool.virtual_links().links().size());
}

TEST(Pricing, RejectsBadOptions) {
    auto topo = small_topology();
    PricingOptions opt;
    opt.link_noise = 1.5;
    EXPECT_THROW(make_bp_bids(topo, opt), util::ContractViolation);
    VirtualLinkOptions vopt;
    vopt.attach_count = 1;
    EXPECT_THROW(add_virtual_links(topo, {}, vopt), util::ContractViolation);
}

}  // namespace
}  // namespace poc::market
