#include "market/manipulation.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"

namespace poc::market {
namespace {

using util::Money;
using util::operator""_usd;

AuctionOptions exact_options() {
    AuctionOptions opt;
    opt.exact = true;
    return opt;
}

TEST(WithScaledBid, ScalesOnlyTargetBp) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const OfferPool scaled = with_scaled_bid(pool, BpId{0u}, 2.0);
    EXPECT_EQ(scaled.bid(BpId{0u}).base_price(net::LinkId{0u}), 200_usd);
    EXPECT_EQ(scaled.bid(BpId{1u}).base_price(net::LinkId{1u}), 150_usd);
}

TEST(WithWithheldLinks, RemovesFromOffer) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const OfferPool reduced = with_withheld_links(pool, BpId{0u}, {net::LinkId{0u}});
    EXPECT_EQ(reduced.offered_links().size(), 2u);
    EXPECT_FALSE(reduced.is_offered(net::LinkId{0u}));
    EXPECT_TRUE(reduced.bid(BpId{0u}).offered_links().empty());
}

TEST(JointWithholding, InflatesRivalPaymentsNotOwn) {
    // Demand 8: A wins, B is runner-up. If everyone withholds their
    // non-selected links, A's payment jumps to C's price level... but B
    // and C withheld everything, so without A the auction is infeasible
    // -> pivot undefined, A paid bid only. This exercises the paper's
    // observation that withholding requires knowing SL and can change
    // *others'* payoffs; here it backfires by destroying the fallback.
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto analysis = analyze_joint_withholding(pool, oracle, exact_options());
    ASSERT_TRUE(analysis.has_value());
    EXPECT_EQ(analysis->baseline.outcome(BpId{0u}).payment, 150_usd);
    // After withholding, only A's link remains: pivot undefined.
    EXPECT_FALSE(analysis->withheld.outcome(BpId{0u}).pivot_defined);
    EXPECT_EQ(analysis->withheld.outcome(BpId{0u}).payment, 100_usd);
    EXPECT_EQ(analysis->payment_delta.size(), 3u);
}

TEST(JointWithholding, VirtualLinksBoundInflation) {
    // Add a $400 virtual link: with rivals withholding, A's payment is
    // capped at the virtual alternative instead of being undefined --
    // exactly the bound the paper attributes to the external ISPs.
    test::ParallelLinksFixture fx;
    auto contract = fx.contract;
    const net::LinkId lv =
        fx.graph.add_link(net::NodeId{0u}, net::NodeId{1u}, 10.0, 1.0);
    contract.add(lv, 400_usd);
    const OfferPool pool(fx.bids, contract, fx.graph);
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto analysis = analyze_joint_withholding(pool, oracle, exact_options());
    ASSERT_TRUE(analysis.has_value());
    const BpOutcome& withheld_a = analysis->withheld.outcome(BpId{0u});
    EXPECT_TRUE(withheld_a.pivot_defined);
    EXPECT_EQ(withheld_a.payment, 400_usd);  // bounded by the contract
    // Outlay delta = 400 - 150.
    EXPECT_EQ(analysis->outlay_delta, 250_usd);
}

TEST(JointWithholding, SelectionUnchangedByDefinition) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(15.0), ConstraintKind::kLoad);
    const auto analysis = analyze_joint_withholding(pool, oracle, exact_options());
    ASSERT_TRUE(analysis.has_value());
    EXPECT_EQ(analysis->baseline.selection.cost, analysis->withheld.selection.cost);
}

TEST(BpUtility, PaymentMinusTrueCost) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    const Money u = bp_utility(*result, BpId{0u}, [](const std::vector<net::LinkId>& links) {
        return util::Money::from_dollars(static_cast<double>(links.size()) * 100.0);
    });
    EXPECT_EQ(u, 50_usd);  // paid 150, true cost 100
}

TEST(WithScaledBid, RejectsNonPositiveFactor) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    EXPECT_THROW(with_scaled_bid(pool, BpId{0u}, 0.0), util::ContractViolation);
}

}  // namespace
}  // namespace poc::market
