#include "market/constraints.hpp"

#include <gtest/gtest.h>

#include "helpers/graphs.hpp"

namespace poc::market {
namespace {

TEST(Oracle, LoadConstraintMatchesRoutability) {
    net::Graph g = test::triangle();
    const AcceptabilityOracle ok(g, {{net::NodeId{0u}, net::NodeId{2u}, 10.0}},
                                 ConstraintKind::kLoad);
    EXPECT_TRUE(ok.accepts(net::Subgraph(g)));
    const AcceptabilityOracle too_much(g, {{net::NodeId{0u}, net::NodeId{2u}, 30.0}},
                                       ConstraintKind::kLoad);
    EXPECT_FALSE(too_much.accepts(net::Subgraph(g)));
}

TEST(Oracle, SingleFailureNeedsRedundancy) {
    net::Graph ring = test::ring(4, 10.0);
    const AcceptabilityOracle o(ring, {{net::NodeId{0u}, net::NodeId{2u}, 3.0}},
                                ConstraintKind::kSingleFailure);
    EXPECT_TRUE(o.accepts(net::Subgraph(ring)));

    net::Graph chain = test::chain(3, 10.0);
    const AcceptabilityOracle o2(chain, {{net::NodeId{0u}, net::NodeId{2u}, 3.0}},
                                 ConstraintKind::kSingleFailure);
    EXPECT_FALSE(o2.accepts(net::Subgraph(chain)));
}

TEST(Oracle, PerPairFailureNeedsBackupCapacity) {
    net::Graph g = test::triangle();
    const AcceptabilityOracle light(g, {{net::NodeId{0u}, net::NodeId{2u}, 4.0}},
                                    ConstraintKind::kPerPairFailure);
    EXPECT_TRUE(light.accepts(net::Subgraph(g)));
    const AcceptabilityOracle heavy(g, {{net::NodeId{0u}, net::NodeId{2u}, 6.0}},
                                    ConstraintKind::kPerPairFailure);
    EXPECT_FALSE(heavy.accepts(net::Subgraph(g)));
}

TEST(Oracle, FastModeAgreesOnClearCases) {
    net::Graph ring = test::ring(5, 10.0);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{2u}, 3.0}};
    for (const ConstraintKind kind :
         {ConstraintKind::kLoad, ConstraintKind::kSingleFailure,
          ConstraintKind::kPerPairFailure}) {
        OracleOptions fast;
        fast.fidelity = OracleFidelity::kFast;
        const AcceptabilityOracle f(ring, tm, kind, fast);
        const AcceptabilityOracle e(ring, tm, kind);
        EXPECT_TRUE(f.accepts(net::Subgraph(ring))) << constraint_name(kind);
        EXPECT_TRUE(e.accepts(net::Subgraph(ring))) << constraint_name(kind);
    }
}

TEST(Oracle, FastSingleFailureRejectsBridges) {
    net::Graph chain = test::chain(3, 100.0);
    OracleOptions fast;
    fast.fidelity = OracleFidelity::kFast;
    const AcceptabilityOracle o(chain, {{net::NodeId{0u}, net::NodeId{2u}, 1.0}},
                                ConstraintKind::kSingleFailure, fast);
    EXPECT_FALSE(o.accepts(net::Subgraph(chain)));
}

TEST(Oracle, FastSingleFailureDerateBites) {
    // Demand fits at 100% but not at the 65% derate.
    net::Graph ring = test::ring(4, 10.0);
    OracleOptions fast;
    fast.fidelity = OracleFidelity::kFast;
    fast.fast_failure_derate = 0.65;
    // 0->2 max flow is 20; derated 13. Demand 15 fails fast mode.
    const AcceptabilityOracle o(ring, {{net::NodeId{0u}, net::NodeId{2u}, 15.0}},
                                ConstraintKind::kSingleFailure, fast);
    EXPECT_FALSE(o.accepts(net::Subgraph(ring)));
}

TEST(Oracle, CountsQueries) {
    net::Graph g = test::triangle();
    const AcceptabilityOracle o(g, {{net::NodeId{0u}, net::NodeId{2u}, 1.0}},
                                ConstraintKind::kLoad);
    EXPECT_EQ(o.query_count(), 0u);
    o.accepts(net::Subgraph(g));
    o.accepts(net::Subgraph(g));
    EXPECT_EQ(o.query_count(), 2u);
}

TEST(Oracle, ConstraintNamesStable) {
    EXPECT_STREQ(constraint_name(ConstraintKind::kLoad), "#1 load");
    EXPECT_STREQ(constraint_name(ConstraintKind::kSingleFailure), "#2 single-failure");
    EXPECT_STREQ(constraint_name(ConstraintKind::kPerPairFailure), "#3 per-pair-failure");
}

TEST(Oracle, MonotoneOnNestedSubsets) {
    // Removing links never turns an unacceptable set acceptable (spot
    // check on a ring with the exact oracle).
    net::Graph ring = test::ring(5, 10.0);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{2u}, 4.0}};
    const AcceptabilityOracle o(ring, tm, ConstraintKind::kLoad);
    net::Subgraph full(ring);
    ASSERT_TRUE(o.accepts(full));
    net::Subgraph cut = full;
    cut.set_active(net::LinkId{0u}, false);
    cut.set_active(net::LinkId{1u}, false);
    if (!o.accepts(cut)) {
        net::Subgraph smaller = cut;
        smaller.set_active(net::LinkId{2u}, false);
        EXPECT_FALSE(o.accepts(smaller));
    }
}

}  // namespace
}  // namespace poc::market
