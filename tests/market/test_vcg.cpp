#include "market/vcg.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"

namespace poc::market {
namespace {

using util::Money;
using util::operator""_usd;

AuctionOptions exact_options() {
    AuctionOptions opt;
    opt.exact = true;
    return opt;
}

TEST(Vcg, SecondPriceOnParallelLinks) {
    // Demand 8 fits one link. Winner: A ($100). Without A the optimum
    // is B ($150), so A's Clarke payment is 100 + (150 - 100) = 150:
    // the classic second-price outcome.
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->selection.cost, 100_usd);

    const BpOutcome& a = result->outcome(BpId{0u});
    EXPECT_EQ(a.bid_cost, 100_usd);
    EXPECT_EQ(a.payment, 150_usd);
    EXPECT_NEAR(a.pob, 0.5, 1e-9);
}

TEST(Vcg, LosersGetNothing) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    for (const BpId loser : {BpId{1u}, BpId{2u}}) {
        const BpOutcome& out = result->outcome(loser);
        EXPECT_TRUE(out.selected_links.empty());
        EXPECT_EQ(out.payment, Money{});
        EXPECT_EQ(out.bid_cost, Money{});
        EXPECT_DOUBLE_EQ(out.pob, 0.0);
    }
}

TEST(Vcg, TwoWinnersEachPaidTheirExternality) {
    // Demand 15 needs two links: A+B win ($250). Without A: B+C = $400
    // -> P_A = 100 + (400-250) = 250. Without B: A+C = $350 ->
    // P_B = 150 + (350-250) = 250. (Symmetric marginal contribution.)
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(15.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->selection.cost, 250_usd);
    EXPECT_EQ(result->outcome(BpId{0u}).payment, 250_usd);
    EXPECT_EQ(result->outcome(BpId{1u}).payment, 250_usd);
    EXPECT_EQ(result->outcome(BpId{2u}).payment, Money{});
    EXPECT_EQ(result->total_outlay, 500_usd);
}

TEST(Vcg, IndividualRationality) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(15.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    for (const BpOutcome& out : result->outcomes) {
        EXPECT_GE(out.payment, out.bid_cost);
        EXPECT_GE(out.pob, 0.0);
    }
}

TEST(Vcg, PivotUndefinedWhenBpIsEssential) {
    // Demand 25 needs all three links: removing any BP is infeasible.
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(25.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    for (const BpOutcome& out : result->outcomes) {
        EXPECT_FALSE(out.pivot_defined);
        EXPECT_EQ(out.payment, out.bid_cost);  // falls back to declared cost
    }
}

TEST(Vcg, InfeasibleAuctionReturnsNullopt) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(100.0), ConstraintKind::kLoad);
    EXPECT_FALSE(run_auction(pool, oracle, exact_options()).has_value());
}

TEST(Vcg, VirtualLinksBoundPayments) {
    // Same parallel-links setup plus a $400 virtual link. A's payment is
    // bounded by the virtual alternative: without A, optimum = B ($150),
    // unchanged; but with only A and the virtual link offered, removing
    // A reprices to $400.
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 10.0, 1.0);
    const auto lv = g.add_link(a, b, 10.0, 1.0);
    BpBid bid(BpId{0u}, "A");
    bid.offer(l0, 100_usd);
    VirtualLinkContract contract;
    contract.add(lv, 400_usd);
    const OfferPool pool({bid}, contract, g);
    const AcceptabilityOracle oracle(g, {{a, b, 8.0}}, ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    const BpOutcome& out = result->outcome(BpId{0u});
    EXPECT_TRUE(out.pivot_defined);
    EXPECT_EQ(out.payment, 400_usd);  // capped by the fallback contract
    EXPECT_EQ(result->virtual_cost, Money{});  // virtual link not selected
}

TEST(Vcg, SelectedVirtualLinksCostedSeparately) {
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 10.0, 1.0);
    const auto lv = g.add_link(a, b, 10.0, 1.0);
    BpBid bid(BpId{0u}, "A");
    bid.offer(l0, 100_usd);
    VirtualLinkContract contract;
    contract.add(lv, 400_usd);
    const OfferPool pool({bid}, contract, g);
    // Demand 15 needs both links.
    const AcceptabilityOracle oracle(g, {{a, b, 15.0}}, ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->virtual_cost, 400_usd);
    // A is essential (pivot undefined): paid its bid; outlay = 100+400.
    EXPECT_EQ(result->total_outlay, 500_usd);
}

TEST(Vcg, HeuristicAgreesWithExactOnEasyInstance) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto exact = run_auction(pool, oracle, exact_options());
    const auto heur = run_auction(pool, oracle, {});
    ASSERT_TRUE(exact && heur);
    EXPECT_EQ(exact->selection.cost, heur->selection.cost);
    EXPECT_EQ(exact->outcome(BpId{0u}).payment, heur->outcome(BpId{0u}).payment);
}

TEST(Vcg, OutcomeLookupRejectsUnknown) {
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    EXPECT_THROW(result->outcome(BpId{9u}), util::ContractViolation);
}

TEST(Vcg, OutcomeLookupFindsEveryBp) {
    // Regression for the indexed outcome(): every bidder — winner or
    // loser — resolves to its own outcome, and the index agrees with
    // the bid-order `outcomes` vector.
    test::ParallelLinksFixture fx;
    const OfferPool pool = fx.pool();
    const AcceptabilityOracle oracle(fx.graph, fx.demand(15.0), ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, exact_options());
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->outcomes.size(), pool.bids().size());
    ASSERT_EQ(result->outcome_index.size(), pool.bids().size());
    for (std::size_t i = 0; i < pool.bids().size(); ++i) {
        const BpBid& bid = pool.bids()[i];
        const BpOutcome& out = result->outcome(bid.bp());
        EXPECT_EQ(out.bp, bid.bp());
        EXPECT_EQ(out.name, bid.name());
        EXPECT_EQ(&out, &result->outcomes[i]);  // same object, not a copy
    }
}

TEST(Vcg, PivotUndefinedWhenRemovalEmptiesOfferPoolHeuristic) {
    // A(OL - L_alpha) literally empty: one BP offers the only link, no
    // virtual fallback. The heuristic path must surface the undefined
    // pivot and fall back to the declared cost.
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto l0 = g.add_link(a, b, 10.0, 1.0);
    BpBid bid(BpId{0u}, "Essential");
    bid.offer(l0, 100_usd);
    const OfferPool pool({bid}, {}, g);
    const AcceptabilityOracle oracle(g, {{a, b, 5.0}}, ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, {});  // heuristic solver
    ASSERT_TRUE(result.has_value());
    const BpOutcome& out = result->outcome(BpId{0u});
    EXPECT_FALSE(out.pivot_defined);
    EXPECT_EQ(out.payment, 100_usd);
    EXPECT_EQ(out.cost_without, Money{});  // never computed
    EXPECT_DOUBLE_EQ(out.pob, 0.0);
    EXPECT_EQ(result->total_outlay, 100_usd);
}

/// Scripted acceptability: S is acceptable iff it contains link `solo`
/// or both of `pair_a`, `pair_b`. Engineered so the heuristic's
/// price-ordered reverse deletion lands on the *pair* for the main
/// solve, while the pivot without the pair's owner finds the strictly
/// cheaper `solo` — a negative raw externality the engine must clamp.
class EitherBundleOracle final : public Oracle {
public:
    EitherBundleOracle(net::LinkId solo, net::LinkId pair_a, net::LinkId pair_b)
        : solo_(solo), pair_a_(pair_a), pair_b_(pair_b) {}

private:
    bool accepts_impl(const net::Subgraph& sg) const override {
        return sg.is_active(solo_) || (sg.is_active(pair_a_) && sg.is_active(pair_b_));
    }

    net::LinkId solo_, pair_a_, pair_b_;
};

TEST(Vcg, HeuristicNegativeExternalityClampsToZero) {
    // Links: solo $10 (BP0), pair $5 + $6 (BP1). Removal order is price
    // descending (equal capacity): solo, then the pair. The heuristic
    // main solve deletes solo and keeps the pair at $11; BP1's pivot
    // re-solve over {solo} alone finds $10 < $11. Raw externality is
    // negative; the payment must clamp to the declared cost so the VCG
    // lower bound P >= C holds.
    net::Graph g;
    const auto a = g.add_node();
    const auto b = g.add_node();
    const auto solo = g.add_link(a, b, 10.0, 1.0);
    const auto pair_a = g.add_link(a, b, 10.0, 1.0);
    const auto pair_b = g.add_link(a, b, 10.0, 1.0);
    BpBid bid0(BpId{0u}, "Solo");
    bid0.offer(solo, 10_usd);
    BpBid bid1(BpId{1u}, "Pair");
    bid1.offer(pair_a, 5_usd);
    bid1.offer(pair_b, 6_usd);
    const OfferPool pool({bid0, bid1}, {}, g);
    const EitherBundleOracle oracle(solo, pair_a, pair_b);

    const auto result = run_auction(pool, oracle, {});  // heuristic solver
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->selection.cost, 11_usd);
    EXPECT_EQ(result->selection.links, (std::vector<net::LinkId>{pair_a, pair_b}));

    const BpOutcome& winner = result->outcome(BpId{1u});
    EXPECT_TRUE(winner.pivot_defined);
    EXPECT_EQ(winner.cost_without, 10_usd);          // cheaper without the winner!
    EXPECT_LT(winner.cost_without, result->selection.cost);
    EXPECT_EQ(winner.payment, winner.bid_cost);      // clamped, not negative
    EXPECT_EQ(winner.payment, 11_usd);
    EXPECT_DOUBLE_EQ(winner.pob, 0.0);

    const BpOutcome& loser = result->outcome(BpId{0u});
    EXPECT_TRUE(loser.selected_links.empty());
    EXPECT_EQ(loser.payment, Money{});

    // The clamp must survive the parallel/cached engine unchanged.
    AuctionOptions par;
    par.threads = 8;
    par.cache = true;
    const auto parallel = run_auction(pool, oracle, par);
    ASSERT_TRUE(parallel.has_value());
    EXPECT_EQ(parallel->outcome(BpId{1u}).payment, 11_usd);
    EXPECT_EQ(parallel->outcome(BpId{1u}).cost_without, 10_usd);
}

}  // namespace
}  // namespace poc::market
