#include "market/auction_cache.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"
#include "util/thread_pool.hpp"

namespace poc::market {
namespace {

using util::Money;
using util::operator""_usd;

std::vector<net::LinkId> links(std::initializer_list<std::uint32_t> ids) {
    std::vector<net::LinkId> out;
    for (const std::uint32_t id : ids) out.emplace_back(id);
    return out;
}

TEST(AuctionCache, VerdictRoundTrip) {
    AuctionCache cache;
    EXPECT_FALSE(cache.find_verdict(links({0, 2})).has_value());
    cache.store_verdict(links({0, 2}), true);
    cache.store_verdict(links({1}), false);
    EXPECT_EQ(cache.find_verdict(links({0, 2})), std::optional<bool>(true));
    EXPECT_EQ(cache.find_verdict(links({1})), std::optional<bool>(false));
    // Different canonical sets are distinct entries.
    EXPECT_FALSE(cache.find_verdict(links({0})).has_value());
    EXPECT_FALSE(cache.find_verdict(links({0, 1, 2})).has_value());
}

TEST(AuctionCache, SolveMemoDistinguishesInfeasibleFromAbsent) {
    AuctionCache cache;
    EXPECT_FALSE(cache.find_solve(links({3})).has_value());

    Selection sel;
    sel.links = links({3});
    sel.cost = 120_usd;
    cache.store_solve(links({3}), sel);
    cache.store_solve(links({4}), std::nullopt);  // cached infeasible

    const auto hit = cache.find_solve(links({3}));
    ASSERT_TRUE(hit.has_value());
    ASSERT_TRUE(hit->has_value());
    EXPECT_EQ((*hit)->links, sel.links);
    EXPECT_EQ((*hit)->cost, sel.cost);

    const auto infeasible = cache.find_solve(links({4}));
    ASSERT_TRUE(infeasible.has_value());
    EXPECT_FALSE(infeasible->has_value());
}

TEST(AuctionCache, StatsCountHitsAndMisses) {
    AuctionCache cache;
    cache.store_verdict(links({0}), true);
    (void)cache.find_verdict(links({0}));  // hit
    (void)cache.find_verdict(links({1}));  // miss
    (void)cache.find_verdict(links({0}));  // hit
    cache.store_solve(links({0}), std::nullopt);
    (void)cache.find_solve(links({0}));  // hit
    (void)cache.find_solve(links({9}));  // miss
    const AuctionCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.verdict_hits, 2u);
    EXPECT_EQ(stats.verdict_misses, 1u);
    EXPECT_EQ(stats.solve_hits, 1u);
    EXPECT_EQ(stats.solve_misses, 1u);
}

TEST(CachingOracle, AnswersFromCacheWithoutReevaluating) {
    test::ParallelLinksFixture fx;
    const AcceptabilityOracle inner(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    AuctionCache cache;
    const CachingOracle cached(inner, cache);

    const net::Subgraph sg(fx.graph);
    const bool first = cached.accepts(sg);
    EXPECT_EQ(inner.query_count(), 1u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(cached.accepts(sg), first);
    }
    // The wrapped oracle was evaluated exactly once; the cache answered
    // the rest, and counted them.
    EXPECT_EQ(inner.query_count(), 1u);
    EXPECT_EQ(cached.query_count(), 6u);
    EXPECT_EQ(cache.stats().verdict_hits, 5u);
}

TEST(CachingOracle, DistinctActiveSetsAreDistinctEntries) {
    test::ParallelLinksFixture fx;
    const AcceptabilityOracle inner(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    AuctionCache cache;
    const CachingOracle cached(inner, cache);

    net::Subgraph all(fx.graph);
    net::Subgraph two(fx.graph);
    two.set_active(net::LinkId{0u}, false);
    EXPECT_EQ(cached.accepts(all), inner.accepts(all));
    EXPECT_EQ(cached.accepts(two), inner.accepts(two));
    EXPECT_EQ(cache.stats().verdict_misses, 2u);
}

TEST(Oracle, QueryCountIsExactUnderConcurrency) {
    test::ParallelLinksFixture fx;
    const AcceptabilityOracle oracle(fx.graph, fx.demand(8.0), ConstraintKind::kLoad);
    fx.graph.warm_adjacency();

    constexpr std::size_t kQueries = 400;
    util::ThreadPool pool(8);
    pool.parallel_for(kQueries, [&](std::size_t) {
        const net::Subgraph sg(fx.graph);
        (void)oracle.accepts(sg);
    });
    EXPECT_EQ(oracle.query_count(), kQueries);
}

}  // namespace
}  // namespace poc::market
