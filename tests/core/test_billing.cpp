// Integration: provision a small backbone, run a billing epoch, and
// verify the section-3.2 payment structure exactly (conservation, POC
// break-even, who-pays-whom).
#include "core/billing.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"

namespace poc::core {
namespace {

using util::Money;
using util::operator""_usd;

struct BillingFixture {
    test::ParallelLinksFixture links;
    market::OfferPool pool;
    EntityRoster roster;
    net::TrafficMatrix tm;

    BillingFixture() : pool(links.pool()) {
        roster.lmps = {{"EyeballLMP", net::NodeId{1u}, 100'000.0, 50_usd}};
        CspInfo csp;
        csp.name = "StreamCo";
        csp.attachment = CspAttachment::kDirectToPoc;
        csp.poc_router = net::NodeId{0u};
        csp.subscription_price = 10_usd;
        csp.take_rate = 0.5;
        csp.gbps_per_1k_subscribers = 0.1;  // 5 Gbps down
        roster.csps = {csp};
        tm = roster_traffic(roster, 0.08);
    }
};

ProvisionedBackbone provision_fixture(const BillingFixture& fx) {
    ProvisioningRequest req;
    req.auction.exact = true;
    const auto backbone = provision(fx.pool, fx.tm, req);
    EXPECT_TRUE(backbone.has_value());
    return *backbone;
}

TEST(Billing, LedgerConservesExactly) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    EXPECT_TRUE(report.ledger.conserves());
}

TEST(Billing, PocBreaksEvenExactly) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    // Nonprofit: revenue == outlay to the micro-dollar.
    EXPECT_EQ(report.poc_revenue, report.poc_outlay);
    EXPECT_EQ(report.ledger.poc_net(), Money{});
}

TEST(Billing, MarginLeavesPocSurplus) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    BillingOptions opt;
    opt.poc_margin = 0.10;
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool, opt);
    EXPECT_EQ(report.ledger.poc_net(), report.poc_outlay.scaled(0.10));
}

TEST(Billing, BpsReceiveAuctionPayments) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    for (const market::BpOutcome& out : backbone.auction.outcomes) {
        const Party bp{PartyKind::kBandwidthProvider, out.bp.value()};
        EXPECT_EQ(report.ledger.balance(bp), out.payment) << out.name;
    }
}

TEST(Billing, ChargesProportionalToUsage) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    ASSERT_EQ(report.charges.size(), 2u);  // the LMP and the direct CSP
    // Both sides of the same flows: equal sent+received volumes, equal
    // charges (up to the one-micro-dollar true-up).
    const auto& a = report.charges[0];
    const auto& b = report.charges[1];
    EXPECT_NEAR(a.sent_gbps + a.received_gbps, b.sent_gbps + b.received_gbps, 1e-9);
    EXPECT_LE((a.amount - b.amount).micros() < 0 ? (b.amount - a.amount).micros()
                                                 : (a.amount - b.amount).micros(),
              10);
}

TEST(Billing, CustomerFlowsRecorded) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    // 100k customers * $50 access.
    EXPECT_EQ(report.ledger.total(TransferKind::kCustomerAccess),
              Money::from_dollars(5'000'000.0));
    // 50k subscribers * $10.
    EXPECT_EQ(report.ledger.total(TransferKind::kCspSubscription),
              Money::from_dollars(500'000.0));
}

TEST(Billing, HostedCspPaysItsLmp) {
    BillingFixture fx;
    CspInfo hosted;
    hosted.name = "IndieCo";
    hosted.attachment = CspAttachment::kViaLmp;
    hosted.via_lmp = LmpId{0u};
    hosted.subscription_price = 3_usd;
    hosted.take_rate = 0.1;
    hosted.gbps_per_1k_subscribers = 0.01;
    fx.roster.csps.push_back(hosted);
    fx.tm = roster_traffic(fx.roster, 0.08);
    // IndieCo's traffic terminates at its own LMP's router (src == dst)
    // so the matrix is unchanged, but hosting pass-through must appear.
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    EXPECT_GT(report.ledger.total(TransferKind::kLmpHosting), Money{});
    EXPECT_TRUE(report.ledger.conserves());
}

TEST(Billing, ServiceFeesReduceAccessPrice) {
    // Section 3.1 services: QoS/CDN revenue is credited against the
    // outlay, lowering the usage-based price for everyone.
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport plain = run_billing_epoch(backbone, fx.roster, fx.pool);

    ServiceBilling services;
    services.qos_fees_by_lmp = {30_usd};
    services.cdn_fees_by_csp = {20_usd};
    const EpochReport with_services =
        run_billing_epoch(backbone, fx.roster, fx.pool, {}, &services);

    EXPECT_EQ(with_services.service_revenue, 50_usd);
    EXPECT_LT(with_services.usage_price_per_gbps, plain.usage_price_per_gbps);
    // The POC still nets exactly zero: services + access == outlay.
    EXPECT_EQ(with_services.ledger.poc_net(), Money{});
    EXPECT_EQ(with_services.ledger.total(TransferKind::kServiceFees), 50_usd);
    EXPECT_TRUE(with_services.ledger.conserves());
}

TEST(Billing, ExcessServiceRevenueFloorsAccessAtZero) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    ServiceBilling services;
    // Service income far above the leasing outlay.
    services.qos_fees_by_lmp = {Money::from_dollars(1e9)};
    services.cdn_fees_by_csp = {Money{}};
    const EpochReport report =
        run_billing_epoch(backbone, fx.roster, fx.pool, {}, &services);
    EXPECT_DOUBLE_EQ(report.usage_price_per_gbps, 0.0);
    EXPECT_TRUE(report.poc_revenue.is_zero());
    EXPECT_TRUE(report.ledger.conserves());
}

TEST(Billing, ServiceVectorSizesValidated) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    ServiceBilling services;
    services.qos_fees_by_lmp = {};  // wrong size
    services.cdn_fees_by_csp = {Money{}};
    EXPECT_THROW(run_billing_epoch(backbone, fx.roster, fx.pool, {}, &services),
                 util::ContractViolation);
}

TEST(Billing, UsagePricePositiveAndConsistent) {
    const BillingFixture fx;
    const auto backbone = provision_fixture(fx);
    const EpochReport report = run_billing_epoch(backbone, fx.roster, fx.pool);
    EXPECT_GT(report.usage_price_per_gbps, 0.0);
    // Price * total volume ~ outlay.
    double vol = 0.0;
    for (const UsageCharge& c : report.charges) vol += c.sent_gbps + c.received_gbps;
    EXPECT_NEAR(report.usage_price_per_gbps * vol, report.poc_outlay.dollars(), 0.01);
}

}  // namespace
}  // namespace poc::core
