#include "core/federation.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace poc::core {
namespace {

using util::Money;
using util::operator""_usd;

/// Two regions of two routers each; rich intra-region links plus
/// plenty of capacity. Demands both intra- and cross-region.
struct FederationFixture {
    net::Graph graph;
    std::vector<market::BpBid> bids;
    std::vector<std::uint32_t> region_of;
    net::TrafficMatrix tm;

    FederationFixture() {
        // Region 0: nodes 0,1. Region 1: nodes 2,3.
        graph.add_nodes(4);
        region_of = {0, 0, 1, 1};
        auto offer = [&](std::size_t bp, net::NodeId a, net::NodeId b, double price) {
            const net::LinkId l = graph.add_link(a, b, 50.0, 1000.0);
            bids[bp].offer(l, Money::from_dollars(price));
            return l;
        };
        for (std::size_t b = 0; b < 3; ++b) {
            bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
        }
        // Intra-region links (two parallel per region, different BPs).
        offer(0, net::NodeId{0u}, net::NodeId{1u}, 100.0);
        offer(1, net::NodeId{0u}, net::NodeId{1u}, 150.0);
        offer(0, net::NodeId{2u}, net::NodeId{3u}, 120.0);
        offer(2, net::NodeId{2u}, net::NodeId{3u}, 160.0);
        // Cross-region links (usable by the single POC only).
        offer(1, net::NodeId{1u}, net::NodeId{2u}, 200.0);
        offer(2, net::NodeId{0u}, net::NodeId{3u}, 260.0);

        tm = {
            {net::NodeId{0u}, net::NodeId{1u}, 10.0},  // intra region 0
            {net::NodeId{2u}, net::NodeId{3u}, 8.0},   // intra region 1
            {net::NodeId{0u}, net::NodeId{3u}, 5.0},   // cross
        };
    }

    market::OfferPool pool() const { return market::OfferPool(bids, {}, graph); }

    FederationOptions options() const {
        FederationOptions opt;
        opt.auction.exact = true;
        return opt;
    }
};

TEST(Federation, SplitsDemandsByRegion) {
    FederationFixture fx;
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    ASSERT_EQ(result.regions.size(), 2u);
    EXPECT_NEAR(result.cross_region_gbps, 5.0, 1e-9);
    // Region 0's cross demand originates at its own gateway (node 0 is
    // the highest-degree router), so no source-side haul is added:
    // internal stays 10. Region 1 hauls the 5 Gbps from its gateway
    // (node 2) to the destination: 8 + 5.
    EXPECT_NEAR(result.regions[0].internal_gbps, 10.0, 1e-9);
    EXPECT_NEAR(result.regions[1].internal_gbps, 13.0, 1e-9);
}

TEST(Federation, GatewayHaulsMayVanishAtGatewayItself) {
    // A cross demand originating at the gateway router needs no
    // intra-region haul on the source side.
    FederationFixture fx;
    // Gateways are the highest-degree routers: nodes 0 and... compute
    // via result.
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    for (const RegionalOutcome& r : result.regions) {
        EXPECT_TRUE(r.gateway.valid());
        EXPECT_EQ(fx.region_of[r.gateway.index()], r.region);
    }
}

TEST(Federation, RegionalPoolsContainOnlyInternalLinks) {
    FederationFixture fx;
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    EXPECT_EQ(result.regions[0].offered_links, 2u);
    EXPECT_EQ(result.regions[1].offered_links, 2u);
}

TEST(Federation, BothProvisionedAndCosted) {
    FederationFixture fx;
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    EXPECT_TRUE(result.all_provisioned);
    ASSERT_TRUE(result.single_poc_outlay.has_value());
    EXPECT_GT(result.federated_outlay, Money{});
    EXPECT_GT(result.interconnect_cost, Money{});
}

TEST(Federation, InterconnectPricedPerBlockAndDistance) {
    FederationFixture fx;
    FederationOptions opt = fx.options();
    opt.interconnect_fixed_usd = 1000.0;
    opt.interconnect_per_km_usd = 1.0;
    opt.interconnect_block_gbps = 400.0;  // 5 Gbps -> 1 block
    const auto result = compare_federation(fx.pool(), fx.tm, fx.region_of, 2, opt);
    // Gateway-to-gateway shortest path exists over the full graph
    // (cross links present): distance is a multiple of 1000 km.
    const double dollars = result.interconnect_cost.dollars();
    EXPECT_GT(dollars, 1000.0);
    EXPECT_NEAR(std::fmod(dollars - 1000.0, 1000.0), 0.0, 1e-6);
}

TEST(Federation, NoCrossTrafficNoInterconnect) {
    FederationFixture fx;
    fx.tm.pop_back();  // drop the cross demand
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    EXPECT_DOUBLE_EQ(result.cross_region_gbps, 0.0);
    EXPECT_TRUE(result.interconnect_cost.is_zero());
}

TEST(Federation, FragmentationNeverCheapensIdenticalService) {
    // With the interconnect overhead and smaller per-region competition
    // the federated outlay is at least the single-POC outlay here.
    FederationFixture fx;
    const auto result =
        compare_federation(fx.pool(), fx.tm, fx.region_of, 2, fx.options());
    ASSERT_TRUE(result.single_poc_outlay.has_value());
    EXPECT_GE(result.federated_outlay, *result.single_poc_outlay);
}

TEST(Federation, ValidatesInputs) {
    FederationFixture fx;
    EXPECT_THROW(compare_federation(fx.pool(), fx.tm, fx.region_of, 1, fx.options()),
                 util::ContractViolation);
    std::vector<std::uint32_t> bad = fx.region_of;
    bad[0] = 7;  // out of range
    EXPECT_THROW(compare_federation(fx.pool(), fx.tm, bad, 2, fx.options()),
                 util::ContractViolation);
    bad.pop_back();
    EXPECT_THROW(compare_federation(fx.pool(), fx.tm, bad, 2, fx.options()),
                 util::ContractViolation);
}

}  // namespace
}  // namespace poc::core
