#include "core/flow_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "helpers/graphs.hpp"
#include "net/path_cache.hpp"
#include "util/rng.hpp"

namespace poc::core {
namespace {

TEST(FlowSim, RoutesAndReportsUtilization) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, 5.0}};
    const FlowReport r = simulate_flows(sg, tm);
    EXPECT_TRUE(r.fully_routed);
    EXPECT_NEAR(r.total_offered_gbps, 5.0, 1e-9);
    EXPECT_NEAR(r.total_routed_gbps, 5.0, 1e-9);
    EXPECT_NEAR(r.max_utilization, 0.5, 1e-9);  // 5 over the cap-10 direct link
    EXPECT_NEAR(r.link_load_gbps[0], 5.0, 1e-9);
}

TEST(FlowSim, StretchOneOnShortestPath) {
    // Two-hop route (2 km) clearly beats the 4 km direct link even
    // under the router's hop-penalized congestion metric.
    net::Graph g;
    const auto n0 = g.add_node();
    const auto n1 = g.add_node();
    const auto n2 = g.add_node();
    g.add_link(n0, n1, 10.0, 1.0);
    g.add_link(n1, n2, 10.0, 1.0);
    g.add_link(n0, n2, 10.0, 4.0);
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{n0, n2, 2.0}});
    EXPECT_NEAR(r.stretch, 1.0, 1e-6);
    EXPECT_NEAR(r.mean_path_km, 2.0, 1e-6);  // via node 1
}

TEST(FlowSim, StretchAboveOneWhenSpilling) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    // 13 > 10: must also use the longer direct link.
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{2u}, 13.0}});
    EXPECT_TRUE(r.fully_routed);
    EXPECT_GT(r.stretch, 1.0);
}

TEST(FlowSim, PartialRoutingReported) {
    net::Graph g = test::chain(2, 10.0);
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{1u}, 25.0}});
    EXPECT_FALSE(r.fully_routed);
    EXPECT_LE(r.total_routed_gbps, 10.0 + 1e-6);
}

TEST(FlowSim, VirtualShareTracksVirtualLinks) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    std::vector<bool> is_virtual(g.link_count(), false);
    is_virtual[2] = true;  // the direct 0-2 link
    // Demand 13 forces spill onto the virtual link.
    const FlowReport r =
        simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{2u}, 13.0}}, is_virtual);
    EXPECT_GT(r.virtual_share, 0.0);
    EXPECT_LT(r.virtual_share, 1.0);
}

TEST(FlowSim, ZeroVirtualShareWithoutFlags) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{1u}, 1.0}});
    EXPECT_DOUBLE_EQ(r.virtual_share, 0.0);
}

TEST(FlowSim, EmptyMatrixCleanReport) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {});
    EXPECT_TRUE(r.fully_routed);
    EXPECT_DOUBLE_EQ(r.total_routed_gbps, 0.0);
    EXPECT_DOUBLE_EQ(r.max_utilization, 0.0);
}

TEST(FlowSim, RejectsIsVirtualShorterThanLinkCount) {
    // The is_virtual vector is indexed by link id; a short vector would
    // silently misattribute virtual share (or read out of bounds), so
    // the contract requires empty-or-exact-length.
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, 1.0}};
    std::vector<bool> short_mask(g.link_count() - 1, false);
    EXPECT_THROW(simulate_flows(sg, tm, short_mask), util::ContractViolation);
    std::vector<bool> long_mask(g.link_count() + 1, false);
    EXPECT_THROW(simulate_flows(sg, tm, long_mask), util::ContractViolation);
}

TEST(FlowSim, LoadsNeverExceedCapacity) {
    util::Rng rng(3);
    net::Graph g = test::random_connected(rng, 8, 8);
    net::Subgraph sg(g);
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < 4; ++i) {
        tm.push_back({net::NodeId{i}, net::NodeId{i + 3}, rng.uniform(0.5, 3.0)});
    }
    const FlowReport r = simulate_flows(sg, tm);
    for (const net::LinkId l : g.all_links()) {
        EXPECT_LE(r.link_load_gbps[l.index()], g.link(l).capacity_gbps * (1.0 + 1e-6));
    }
    EXPECT_LE(r.max_utilization, 1.0 + 1e-6);
}

TEST(FlowSim, ConcurrentFlowFallbackCapsOverRoutedDemands) {
    // Six parallel links of capacity 2: the demand of 9 fits the
    // subgraph (12 gbps total) but not greedy's k=4 candidate paths
    // (4 x 2 = 8 < 9), so simulate_flows must take the
    // max_concurrent_flow fallback. That routing carries
    // lambda * volume per demand with lambda > 1 here, i.e. it
    // over-routes — the report must cap each demand at its offered
    // volume.
    net::Graph g;
    const auto s = g.add_node("s");
    const auto t = g.add_node("t");
    for (int i = 0; i < 6; ++i) g.add_link(s, t, 2.0, 1.0);
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{s, t, 9.0}};

    // Precondition for the test to mean anything: greedy really fails
    // and the concurrent flow really over-provisions.
    ASSERT_FALSE(net::greedy_path_routing(sg, tm).has_value());
    const auto cf = net::max_concurrent_flow(sg, tm, 0.1);
    ASSERT_GE(cf.lambda, 1.0);
    double uncapped = 0.0;
    for (const auto& [path, rate] : cf.routing.routes[0]) uncapped += rate;
    ASSERT_GT(uncapped, 9.0);

    const FlowReport r = simulate_flows(sg, tm);
    EXPECT_TRUE(r.fully_routed);
    // Capped exactly at the offered volume, never over-reported.
    EXPECT_NEAR(r.total_routed_gbps, 9.0, 1e-9);
    EXPECT_LE(r.total_routed_gbps, r.total_offered_gbps + 1e-12);
    double load_sum = 0.0;
    for (const net::LinkId l : g.all_links()) {
        EXPECT_LE(r.link_load_gbps[l.index()], g.link(l).capacity_gbps * (1.0 + 1e-6));
        load_sum += r.link_load_gbps[l.index()];
    }
    EXPECT_NEAR(load_sum, 9.0, 1e-9);  // single-hop paths
}

TEST(FlowSim, ConcurrentFlowFallbackReportsPartialRouting) {
    // Infeasible for both oracles: the fallback's lambda < 1 routing is
    // reported as-is (no capping needed, fully_routed false).
    net::Graph g = test::chain(2, 10.0);
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, 25.0}};
    ASSERT_FALSE(net::greedy_path_routing(sg, tm).has_value());
    const FlowReport r = simulate_flows(sg, tm);
    EXPECT_FALSE(r.fully_routed);
    EXPECT_GT(r.total_routed_gbps, 0.0);
    EXPECT_LE(r.total_routed_gbps, 10.0 + 1e-6);
}

TEST(FlowSim, FastPathOptionsAreBitIdentical) {
    util::Rng rng(5);
    net::Graph g = test::random_connected(rng, 16, 10);
    net::Subgraph sg(g);
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < 24; ++i) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{16}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{16}));
        if (b == a) b = (b + 1) % 16;
        tm.push_back({net::NodeId{a}, net::NodeId{b}, rng.uniform(0.2, 2.0)});
    }
    std::vector<bool> is_virtual(g.link_count(), false);
    is_virtual[0] = true;

    const FlowReport base = simulate_flows(sg, tm, is_virtual);

    net::PathCache cache;
    FlowSimOptions cached;
    cached.path_cache = &cache;
    FlowSimOptions threaded;
    threaded.sssp_threads = 4;
    FlowSimOptions both;
    both.path_cache = &cache;
    both.sssp_threads = 4;
    for (const FlowSimOptions* opt : {&cached, &threaded, &both}) {
        const FlowReport r = simulate_flows(sg, tm, is_virtual, *opt);
        // Exact equality across the board: the fast path must be
        // bit-identical to the default serial computation.
        EXPECT_EQ(r.total_offered_gbps, base.total_offered_gbps);
        EXPECT_EQ(r.total_routed_gbps, base.total_routed_gbps);
        EXPECT_EQ(r.fully_routed, base.fully_routed);
        EXPECT_EQ(r.max_utilization, base.max_utilization);
        EXPECT_EQ(r.mean_utilization, base.mean_utilization);
        EXPECT_EQ(r.link_load_gbps, base.link_load_gbps);
        EXPECT_EQ(r.mean_path_km, base.mean_path_km);
        EXPECT_EQ(r.mean_shortest_km, base.mean_shortest_km);
        EXPECT_EQ(r.stretch, base.stretch);
        EXPECT_EQ(r.virtual_share, base.virtual_share);
    }
    EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);
}

}  // namespace
}  // namespace poc::core
