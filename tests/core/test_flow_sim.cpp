#include "core/flow_sim.hpp"

#include <gtest/gtest.h>

#include "helpers/graphs.hpp"

namespace poc::core {
namespace {

TEST(FlowSim, RoutesAndReportsUtilization) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, 5.0}};
    const FlowReport r = simulate_flows(sg, tm);
    EXPECT_TRUE(r.fully_routed);
    EXPECT_NEAR(r.total_offered_gbps, 5.0, 1e-9);
    EXPECT_NEAR(r.total_routed_gbps, 5.0, 1e-9);
    EXPECT_NEAR(r.max_utilization, 0.5, 1e-9);  // 5 over the cap-10 direct link
    EXPECT_NEAR(r.link_load_gbps[0], 5.0, 1e-9);
}

TEST(FlowSim, StretchOneOnShortestPath) {
    // Two-hop route (2 km) clearly beats the 4 km direct link even
    // under the router's hop-penalized congestion metric.
    net::Graph g;
    const auto n0 = g.add_node();
    const auto n1 = g.add_node();
    const auto n2 = g.add_node();
    g.add_link(n0, n1, 10.0, 1.0);
    g.add_link(n1, n2, 10.0, 1.0);
    g.add_link(n0, n2, 10.0, 4.0);
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{n0, n2, 2.0}});
    EXPECT_NEAR(r.stretch, 1.0, 1e-6);
    EXPECT_NEAR(r.mean_path_km, 2.0, 1e-6);  // via node 1
}

TEST(FlowSim, StretchAboveOneWhenSpilling) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    // 13 > 10: must also use the longer direct link.
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{2u}, 13.0}});
    EXPECT_TRUE(r.fully_routed);
    EXPECT_GT(r.stretch, 1.0);
}

TEST(FlowSim, PartialRoutingReported) {
    net::Graph g = test::chain(2, 10.0);
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{1u}, 25.0}});
    EXPECT_FALSE(r.fully_routed);
    EXPECT_LE(r.total_routed_gbps, 10.0 + 1e-6);
}

TEST(FlowSim, VirtualShareTracksVirtualLinks) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    std::vector<bool> is_virtual(g.link_count(), false);
    is_virtual[2] = true;  // the direct 0-2 link
    // Demand 13 forces spill onto the virtual link.
    const FlowReport r =
        simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{2u}, 13.0}}, is_virtual);
    EXPECT_GT(r.virtual_share, 0.0);
    EXPECT_LT(r.virtual_share, 1.0);
}

TEST(FlowSim, ZeroVirtualShareWithoutFlags) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {{net::NodeId{0u}, net::NodeId{1u}, 1.0}});
    EXPECT_DOUBLE_EQ(r.virtual_share, 0.0);
}

TEST(FlowSim, EmptyMatrixCleanReport) {
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const FlowReport r = simulate_flows(sg, {});
    EXPECT_TRUE(r.fully_routed);
    EXPECT_DOUBLE_EQ(r.total_routed_gbps, 0.0);
    EXPECT_DOUBLE_EQ(r.max_utilization, 0.0);
}

TEST(FlowSim, RejectsIsVirtualShorterThanLinkCount) {
    // The is_virtual vector is indexed by link id; a short vector would
    // silently misattribute virtual share (or read out of bounds), so
    // the contract requires empty-or-exact-length.
    net::Graph g = test::triangle();
    net::Subgraph sg(g);
    const net::TrafficMatrix tm{{net::NodeId{0u}, net::NodeId{1u}, 1.0}};
    std::vector<bool> short_mask(g.link_count() - 1, false);
    EXPECT_THROW(simulate_flows(sg, tm, short_mask), util::ContractViolation);
    std::vector<bool> long_mask(g.link_count() + 1, false);
    EXPECT_THROW(simulate_flows(sg, tm, long_mask), util::ContractViolation);
}

TEST(FlowSim, LoadsNeverExceedCapacity) {
    util::Rng rng(3);
    net::Graph g = test::random_connected(rng, 8, 8);
    net::Subgraph sg(g);
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < 4; ++i) {
        tm.push_back({net::NodeId{i}, net::NodeId{i + 3}, rng.uniform(0.5, 3.0)});
    }
    const FlowReport r = simulate_flows(sg, tm);
    for (const net::LinkId l : g.all_links()) {
        EXPECT_LE(r.link_load_gbps[l.index()], g.link(l).capacity_gbps * (1.0 + 1e-6));
    }
    EXPECT_LE(r.max_utilization, 1.0 + 1e-6);
}

}  // namespace
}  // namespace poc::core
