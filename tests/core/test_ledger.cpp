#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/contracts.hpp"

namespace poc::core {
namespace {

using util::Money;
using util::operator""_usd;

constexpr Party kPoc{PartyKind::kPoc, 0};
constexpr Party kBp0{PartyKind::kBandwidthProvider, 0};
constexpr Party kLmp0{PartyKind::kLmp, 0};
constexpr Party kLmp1{PartyKind::kLmp, 1};

TEST(Ledger, RecordsAndBalances) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, 100_usd);
    ledger.record(kPoc, kBp0, TransferKind::kLinkLease, 60_usd);
    EXPECT_EQ(ledger.balance(kPoc), 40_usd);
    EXPECT_EQ(ledger.balance(kBp0), 60_usd);
    EXPECT_EQ(ledger.balance(kLmp0), -100_usd);
}

TEST(Ledger, ConservationAlwaysHolds) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, 123_usd);
    ledger.record(kLmp1, kPoc, TransferKind::kPocAccess, 77_usd);
    ledger.record(kPoc, kBp0, TransferKind::kLinkLease, 199_usd);
    EXPECT_TRUE(ledger.conserves());
}

TEST(Ledger, TotalsByCategory) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, 100_usd);
    ledger.record(kLmp1, kPoc, TransferKind::kPocAccess, 50_usd);
    ledger.record(kPoc, kBp0, TransferKind::kLinkLease, 75_usd);
    EXPECT_EQ(ledger.total(TransferKind::kPocAccess), 150_usd);
    EXPECT_EQ(ledger.total(TransferKind::kLinkLease), 75_usd);
    EXPECT_EQ(ledger.total(TransferKind::kCspSubscription), Money{});
}

TEST(Ledger, ZeroTransfersDropped) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, Money{});
    EXPECT_TRUE(ledger.transfers().empty());
}

TEST(Ledger, RejectsNegativeAndSelfTransfers) {
    Ledger ledger;
    EXPECT_THROW(ledger.record(kLmp0, kPoc, TransferKind::kPocAccess,
                               Money::from_dollars(-1.0)),
                 util::ContractViolation);
    EXPECT_THROW(ledger.record(kPoc, kPoc, TransferKind::kPocAccess, 1_usd),
                 util::ContractViolation);
}

TEST(Ledger, PocNetBreakEven) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, 100_usd);
    ledger.record(kPoc, kBp0, TransferKind::kLinkLease, 100_usd);
    EXPECT_EQ(ledger.poc_net(), Money{});
}

TEST(Ledger, StatementListsPartiesAndCategories) {
    Ledger ledger;
    ledger.record(Party{PartyKind::kCustomers, 0}, kLmp0, TransferKind::kCustomerAccess,
                  42_usd, "subs");
    const std::string s = ledger.statement();
    EXPECT_NE(s.find("Customers(LMP1)"), std::string::npos);
    EXPECT_NE(s.find("LMP1"), std::string::npos);
    EXPECT_NE(s.find("customer access"), std::string::npos);
    EXPECT_NE(s.find("$42.00"), std::string::npos);
}

TEST(Ledger, PartyLabelsDistinct) {
    EXPECT_EQ(party_label(kPoc), "POC");
    EXPECT_EQ(party_label(Party{PartyKind::kCsp, 2}), "CSP3");
    EXPECT_EQ(party_label(Party{PartyKind::kExternalIsp, 0}), "ISP1");
}

TEST(Ledger, MemoPreserved) {
    Ledger ledger;
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, 10_usd, "march invoice");
    ASSERT_EQ(ledger.transfers().size(), 1u);
    EXPECT_EQ(ledger.transfers()[0].memo, "march invoice");
}

TEST(Ledger, BalanceAccumulationOverflowFailsLoudly) {
    // Balances accumulate through Money::checked_sum: two near-max
    // transfers to one party must raise ContractViolation instead of
    // wrapping to a silently-wrong (negative) balance.
    Ledger ledger;
    const Money huge =
        Money::from_micros(std::numeric_limits<std::int64_t>::max() / 2 + 1);
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, huge, "near-max 1");
    ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, huge, "near-max 2");
    EXPECT_THROW(ledger.balance(kPoc), util::ContractViolation);
    EXPECT_THROW(ledger.total(TransferKind::kPocAccess), util::ContractViolation);
    // A single huge transfer is still representable and exact.
    Ledger single;
    single.record(kLmp0, kPoc, TransferKind::kPocAccess, huge);
    EXPECT_EQ(single.balance(kPoc), huge);
}

TEST(Ledger, ExactIntegerAccounting) {
    // One third of a dollar three times sums to 999999 micros with
    // floor rounding; Money's llround keeps the books exact instead.
    Ledger ledger;
    const Money third = Money::from_dollars(1.0 / 3.0);
    for (int i = 0; i < 3; ++i) {
        ledger.record(kLmp0, kPoc, TransferKind::kPocAccess, third);
    }
    EXPECT_EQ(ledger.balance(kPoc).micros(), 3 * third.micros());
    EXPECT_TRUE(ledger.conserves());
}

}  // namespace
}  // namespace poc::core
