#include "core/qos.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace poc::core {
namespace {

using util::operator""_usd;

QosCatalog three_tier() {
    QosCatalog c;
    c.add_tier({"platinum", 0, 12_usd});
    c.add_tier({"gold", 1, 6_usd});
    c.add_tier({"best-effort", 2, 2_usd});
    return c;
}

TEST(Qos, AddTierRejectsDuplicatePriority) {
    QosCatalog c = three_tier();
    EXPECT_THROW(c.add_tier({"dup", 1, 1_usd}), util::ContractViolation);
}

TEST(Qos, SubscriptionsAggregateByTier) {
    QosCatalog c = three_tier();
    c.subscribe(0, 10.0);
    c.subscribe(2, 50.0);
    c.subscribe(0, 5.0);
    const auto volume = c.volume_by_tier();
    EXPECT_DOUBLE_EQ(volume[0], 15.0);
    EXPECT_DOUBLE_EQ(volume[1], 0.0);
    EXPECT_DOUBLE_EQ(volume[2], 50.0);
}

TEST(Qos, RevenueSumsPostedPrices) {
    QosCatalog c = three_tier();
    c.subscribe(0, 10.0);  // 120
    c.subscribe(2, 50.0);  // 100
    EXPECT_EQ(c.monthly_revenue(), 220_usd);
}

TEST(Qos, PolicyRuleIsCompliant) {
    const QosCatalog c = three_tier();
    EXPECT_EQ(audit_rule(c.as_policy_rule()), Verdict::kCompliant);
}

TEST(Qos, DelayFactorsOrderedByPriority) {
    QosCatalog c = three_tier();
    c.subscribe(0, 20.0);
    c.subscribe(1, 30.0);
    c.subscribe(2, 40.0);
    const auto f = c.delay_factors(100.0);
    // Higher priority -> strictly smaller delay factor when loaded.
    EXPECT_LT(f[0], f[1]);
    EXPECT_LT(f[1], f[2]);
    EXPECT_GE(f[0], 1.0);
}

TEST(Qos, TopTierInsulatedFromLowerLoad) {
    // Load added below the platinum tier must not change platinum's
    // delay (strict priority).
    QosCatalog c = three_tier();
    c.subscribe(0, 20.0);
    const double before = c.delay_factors(100.0)[0];
    c.subscribe(2, 60.0);
    const double after = c.delay_factors(100.0)[0];
    EXPECT_NEAR(before, after, 1e-12);
}

TEST(Qos, LowTierSuffersFromHigherLoad) {
    QosCatalog c = three_tier();
    c.subscribe(2, 20.0);
    const double lightly = c.delay_factors(100.0)[2];
    c.subscribe(0, 80.0 - 1.0);  // near saturation above it
    const double heavily = c.delay_factors(100.0)[2];
    EXPECT_GT(heavily, 10.0 * lightly);
}

TEST(Qos, EmptySystemHasUnitFactors) {
    const QosCatalog c = three_tier();
    for (const double f : c.delay_factors(100.0)) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(Qos, DelayRequiresFittingLoad) {
    QosCatalog c = three_tier();
    c.subscribe(0, 120.0);
    EXPECT_THROW(c.delay_factors(100.0), util::ContractViolation);
}

TEST(Qos, SubscribeValidatesInput) {
    QosCatalog c = three_tier();
    EXPECT_THROW(c.subscribe(9, 1.0), util::ContractViolation);
    EXPECT_THROW(c.subscribe(0, 0.0), util::ContractViolation);
}

TEST(Qos, PriorityOrderIndependentOfInsertionOrder) {
    QosCatalog c;
    c.add_tier({"low", 5, 1_usd});
    c.add_tier({"high", 1, 9_usd});
    c.subscribe(0, 30.0);
    c.subscribe(1, 30.0);
    const auto f = c.delay_factors(100.0);
    EXPECT_LT(f[1], f[0]);  // "high" (index 1) is served first
}

}  // namespace
}  // namespace poc::core
