#include "core/entities.hpp"

#include <gtest/gtest.h>

#include "helpers/graphs.hpp"

namespace poc::core {
namespace {

using util::operator""_usd;

EntityRoster fixture_roster() {
    EntityRoster roster;
    roster.lmps = {
        {"EyeballEast", net::NodeId{0u}, 1'000'000.0, 50_usd},
        {"EyeballWest", net::NodeId{2u}, 500'000.0, 45_usd},
    };
    CspInfo video;
    video.name = "StreamCo";
    video.attachment = CspAttachment::kDirectToPoc;
    video.poc_router = net::NodeId{1u};
    video.subscription_price = 12_usd;
    video.take_rate = 0.4;
    video.gbps_per_1k_subscribers = 0.01;
    CspInfo hosted;
    hosted.name = "IndieCo";
    hosted.attachment = CspAttachment::kViaLmp;
    hosted.via_lmp = LmpId{0u};
    hosted.subscription_price = 5_usd;
    hosted.take_rate = 0.1;
    hosted.gbps_per_1k_subscribers = 0.002;
    roster.csps = {video, hosted};
    return roster;
}

TEST(Roster, ValidatesAgainstGraph) {
    net::Graph g = test::triangle();
    EXPECT_NO_THROW(fixture_roster().validate(g));
}

TEST(Roster, RejectsBadAttachment) {
    net::Graph g = test::triangle();
    EntityRoster r = fixture_roster();
    r.lmps[0].attachment = net::NodeId{9u};
    EXPECT_THROW(r.validate(g), util::ContractViolation);
}

TEST(Roster, RejectsBadViaLmp) {
    net::Graph g = test::triangle();
    EntityRoster r = fixture_roster();
    r.csps[1].via_lmp = LmpId{7u};
    EXPECT_THROW(r.validate(g), util::ContractViolation);
}

TEST(Roster, RejectsBadTakeRate) {
    net::Graph g = test::triangle();
    EntityRoster r = fixture_roster();
    r.csps[0].take_rate = 1.5;
    EXPECT_THROW(r.validate(g), util::ContractViolation);
}

TEST(RosterTraffic, VolumesMatchSubscriberMath) {
    const EntityRoster r = fixture_roster();
    const auto tm = roster_traffic(r, 0.0);  // no reverse traffic
    // StreamCo -> EyeballEast: 1M * 0.4 / 1000 * 0.01 = 4 Gbps.
    double found = 0.0;
    for (const net::Demand& d : tm) {
        if (d.src == net::NodeId{1u} && d.dst == net::NodeId{0u}) found = d.gbps;
    }
    EXPECT_NEAR(found, 4.0, 1e-9);
}

TEST(RosterTraffic, ReverseFractionAddsUpstream) {
    const EntityRoster r = fixture_roster();
    const auto tm = roster_traffic(r, 0.25);
    double down = 0.0;
    double up = 0.0;
    for (const net::Demand& d : tm) {
        if (d.src == net::NodeId{1u} && d.dst == net::NodeId{2u}) down = d.gbps;
        if (d.src == net::NodeId{2u} && d.dst == net::NodeId{1u}) up = d.gbps;
    }
    EXPECT_GT(down, 0.0);
    EXPECT_NEAR(up, down * 0.25, 1e-9);
}

TEST(RosterTraffic, HostedCspOriginatesAtItsLmp) {
    const EntityRoster r = fixture_roster();
    const auto tm = roster_traffic(r, 0.0);
    // IndieCo is hosted at LMP0 (router 0); its traffic to EyeballWest
    // (router 2) appears as 0 -> 2.
    bool found = false;
    for (const net::Demand& d : tm) {
        if (d.src == net::NodeId{0u} && d.dst == net::NodeId{2u}) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(RosterTraffic, SameRouterFlowsDropped) {
    // IndieCo hosted at LMP0 serving LMP0's own customers: src == dst,
    // never enters the POC matrix.
    const EntityRoster r = fixture_roster();
    for (const net::Demand& d : roster_traffic(r)) {
        EXPECT_NE(d.src, d.dst);
    }
}

TEST(RosterTraffic, AggregatesPerRouterPair) {
    // Two CSPs at the same router produce one aggregated demand per
    // destination.
    EntityRoster r = fixture_roster();
    CspInfo second = r.csps[0];
    second.name = "StreamCo2";
    r.csps.push_back(second);
    const auto tm = roster_traffic(r, 0.0);
    std::size_t count_1_to_0 = 0;
    for (const net::Demand& d : tm) {
        if (d.src == net::NodeId{1u} && d.dst == net::NodeId{0u}) ++count_1_to_0;
    }
    EXPECT_EQ(count_1_to_0, 1u);
}

}  // namespace
}  // namespace poc::core
