#include "core/tos.hpp"

#include <gtest/gtest.h>

namespace poc::core {
namespace {

PolicyRule rule(PolicyAction action, TrafficSelector selector, bool openly_priced = false) {
    PolicyRule r;
    r.action = action;
    r.selector = selector;
    r.openly_priced = openly_priced;
    return r;
}

TEST(Tos, TerminationFeeAlwaysViolates) {
    for (const TrafficSelector s :
         {TrafficSelector::kAll, TrafficSelector::kBySource, TrafficSelector::kByApplication}) {
        for (const bool priced : {false, true}) {
            EXPECT_EQ(audit_rule(rule(PolicyAction::kChargeTerminationFee, s, priced)),
                      Verdict::kViolatesNoTerminationFee);
        }
    }
}

TEST(Tos, SourceKeyedPriorityViolatesConditionI) {
    EXPECT_EQ(audit_rule(rule(PolicyAction::kPrioritize, TrafficSelector::kBySource)),
              Verdict::kViolatesConditionI);
    EXPECT_EQ(audit_rule(rule(PolicyAction::kDeprioritize, TrafficSelector::kByDestination)),
              Verdict::kViolatesConditionI);
    EXPECT_EQ(audit_rule(rule(PolicyAction::kBlock, TrafficSelector::kByApplication)),
              Verdict::kViolatesConditionI);
}

TEST(Tos, PaidFastLaneForOneCspStillViolates) {
    // The QoS carve-out covers openly-priced service sold to anyone,
    // not a priced rule keyed to one source.
    EXPECT_EQ(audit_rule(rule(PolicyAction::kPrioritize, TrafficSelector::kBySource, true)),
              Verdict::kViolatesConditionI);
}

TEST(Tos, OpenQosIsCompliant) {
    EXPECT_EQ(audit_rule(rule(PolicyAction::kPrioritize, TrafficSelector::kAll, true)),
              Verdict::kCompliant);
    EXPECT_EQ(audit_rule(rule(PolicyAction::kDeprioritize, TrafficSelector::kAll)),
              Verdict::kCompliant);
}

TEST(Tos, SecurityBlockingExempt) {
    PolicyRule r = rule(PolicyAction::kBlock, TrafficSelector::kBySource);
    r.security_exception = true;
    EXPECT_EQ(audit_rule(r), Verdict::kCompliant);
}

TEST(Tos, MaintenancePriorityExempt) {
    PolicyRule r = rule(PolicyAction::kPrioritize, TrafficSelector::kByApplication);
    r.maintenance_exception = true;
    EXPECT_EQ(audit_rule(r), Verdict::kCompliant);
}

TEST(Tos, SelectiveCdnViolatesConditionII) {
    EXPECT_EQ(audit_rule(rule(PolicyAction::kProvideCdn, TrafficSelector::kBySource)),
              Verdict::kViolatesConditionII);
    EXPECT_EQ(audit_rule(rule(PolicyAction::kProvideCdn, TrafficSelector::kAll, true)),
              Verdict::kCompliant);
}

TEST(Tos, SelectiveThirdPartyCdnViolatesConditionIII) {
    // "Allow Netflix to install services that enhance their traffic but
    // disallow others" - the paper's own example.
    EXPECT_EQ(audit_rule(rule(PolicyAction::kAllowThirdPartyCdn, TrafficSelector::kBySource)),
              Verdict::kViolatesConditionIII);
    EXPECT_EQ(audit_rule(rule(PolicyAction::kAllowThirdPartyCdn, TrafficSelector::kAll, true)),
              Verdict::kCompliant);
}

TEST(Tos, AuditAggregatesFindings) {
    LmpPolicy policy;
    policy.lmp_name = "ShadyLMP";
    policy.rules = {
        rule(PolicyAction::kPrioritize, TrafficSelector::kAll, true),       // ok
        rule(PolicyAction::kChargeTerminationFee, TrafficSelector::kAll),   // bad
        rule(PolicyAction::kProvideCdn, TrafficSelector::kByDestination),   // bad
    };
    const AuditReport report = audit_lmp(policy);
    EXPECT_EQ(report.lmp_name, "ShadyLMP");
    EXPECT_FALSE(report.compliant);
    EXPECT_EQ(report.violation_count(), 2u);
    ASSERT_EQ(report.findings.size(), 3u);
    EXPECT_EQ(report.findings[0].verdict, Verdict::kCompliant);
}

TEST(Tos, CleanPolicyCompliant) {
    LmpPolicy policy;
    policy.lmp_name = "GoodLMP";
    policy.rules = {rule(PolicyAction::kPrioritize, TrafficSelector::kAll, true),
                    rule(PolicyAction::kProvideCdn, TrafficSelector::kAll, true)};
    const AuditReport report = audit_lmp(policy);
    EXPECT_TRUE(report.compliant);
    EXPECT_EQ(report.violation_count(), 0u);
}

TEST(Tos, EmptyPolicyCompliant) {
    EXPECT_TRUE(audit_lmp({"Empty", {}}).compliant);
}

TEST(Tos, VerdictNamesHumanReadable) {
    EXPECT_NE(std::string(verdict_name(Verdict::kViolatesConditionI)).find("(i)"),
              std::string::npos);
    EXPECT_NE(std::string(verdict_name(Verdict::kViolatesNoTerminationFee)).find("termination"),
              std::string::npos);
}

}  // namespace
}  // namespace poc::core
