#include "core/cdn.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace poc::core {
namespace {

using util::operator""_usd;

net::TrafficMatrix sample_tm() {
    return {{net::NodeId{0u}, net::NodeId{1u}, 10.0}, {net::NodeId{0u}, net::NodeId{2u}, 20.0}};
}

CdnOffer open_offer() {
    CdnOffer offer;
    offer.fee_per_unit = 500_usd;
    offer.open_to_all = true;
    return offer;
}

TEST(HitCurve, ConcaveAndBounded) {
    HitCurve curve;
    curve.half_units = 4.0;
    EXPECT_DOUBLE_EQ(curve.hit_ratio(0.0), 0.0);
    EXPECT_DOUBLE_EQ(curve.hit_ratio(4.0), 0.5);
    EXPECT_LT(curve.hit_ratio(100.0), 1.0);
    // Diminishing returns.
    const double gain1 = curve.hit_ratio(2.0) - curve.hit_ratio(0.0);
    const double gain2 = curve.hit_ratio(4.0) - curve.hit_ratio(2.0);
    EXPECT_GT(gain1, gain2);
}

TEST(Cdn, ReducesDestinationDemand) {
    const std::vector<CdnDeployment> deps{{net::NodeId{1u}, 4.0}};  // hit 0.5
    const CdnEffect e = apply_cdn(sample_tm(), deps, open_offer(), /*cacheable=*/0.8);
    // Demand 0->1: 10 * (1 - 0.8*0.5) = 6; demand 0->2 untouched.
    EXPECT_NEAR(e.reduced[0].gbps, 6.0, 1e-9);
    EXPECT_NEAR(e.reduced[1].gbps, 20.0, 1e-9);
    EXPECT_NEAR(e.served_at_router[1], 4.0, 1e-9);
    EXPECT_NEAR(e.offload_fraction, 4.0 / 30.0, 1e-9);
}

TEST(Cdn, StackedDeploymentsAccumulate) {
    const std::vector<CdnDeployment> deps{{net::NodeId{1u}, 2.0}, {net::NodeId{1u}, 2.0}};
    const CdnEffect e = apply_cdn(sample_tm(), deps, open_offer(), 1.0);
    EXPECT_NEAR(e.reduced[0].gbps, 5.0, 1e-9);  // hit(4) = 0.5
}

TEST(Cdn, FeesChargePerUnit) {
    const std::vector<CdnDeployment> deps{{net::NodeId{1u}, 3.0}, {net::NodeId{2u}, 1.5}};
    const CdnEffect e = apply_cdn(sample_tm(), deps, open_offer(), 0.5);
    EXPECT_EQ(e.monthly_fees, util::Money::from_dollars(4.5 * 500.0));
}

TEST(Cdn, NoDeploymentNoEffect) {
    const CdnEffect e = apply_cdn(sample_tm(), {}, open_offer(), 0.9);
    EXPECT_DOUBLE_EQ(e.offload_fraction, 0.0);
    EXPECT_NEAR(e.reduced[0].gbps, 10.0, 1e-9);
    EXPECT_TRUE(e.monthly_fees.is_zero());
}

TEST(Cdn, ZeroCacheableFractionNoEffect) {
    const std::vector<CdnDeployment> deps{{net::NodeId{1u}, 100.0}};
    const CdnEffect e = apply_cdn(sample_tm(), deps, open_offer(), 0.0);
    EXPECT_DOUBLE_EQ(e.offload_fraction, 0.0);
}

TEST(Cdn, MoreCacheMoreOffload) {
    const CdnEffect small = apply_cdn(sample_tm(), {{net::NodeId{1u}, 1.0}}, open_offer(), 0.8);
    const CdnEffect big = apply_cdn(sample_tm(), {{net::NodeId{1u}, 16.0}}, open_offer(), 0.8);
    EXPECT_GT(big.offload_fraction, small.offload_fraction);
}

TEST(Cdn, ClosedOfferRejected) {
    CdnOffer closed = open_offer();
    closed.open_to_all = false;
    EXPECT_EQ(audit_offer(closed), Verdict::kViolatesConditionII);
    EXPECT_THROW(apply_cdn(sample_tm(), {}, closed, 0.5), util::ContractViolation);
}

TEST(Cdn, OpenOfferCompliant) {
    EXPECT_EQ(audit_offer(open_offer()), Verdict::kCompliant);
}

TEST(Cdn, RejectsBadFraction) {
    EXPECT_THROW(apply_cdn(sample_tm(), {}, open_offer(), 1.5), util::ContractViolation);
}

TEST(Cdn, TotalDemandConserved) {
    // reduced + served == offered, demand by demand.
    const std::vector<CdnDeployment> deps{{net::NodeId{1u}, 4.0}, {net::NodeId{2u}, 8.0}};
    const auto tm = sample_tm();
    const CdnEffect e = apply_cdn(tm, deps, open_offer(), 0.7);
    double served = 0.0;
    for (const double s : e.served_at_router) served += s;
    EXPECT_NEAR(net::total_demand(e.reduced) + served, net::total_demand(tm), 1e-9);
}

}  // namespace
}  // namespace poc::core
