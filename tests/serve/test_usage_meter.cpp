// Usage metering and admission control: over-quota backpressure that
// decays away, atomic billing refusal, and rollover reconciliation
// against the core ledger.
#include "serve/usage_meter.hpp"

#include <gtest/gtest.h>

namespace poc::serve {
namespace {

using util::Money;

MeterOptions cheap() {
    MeterOptions opt;
    opt.half_life_epochs = 2.0;
    opt.price_per_unit = Money::from_micros(1'000);  // $0.001/unit
    opt.quota_units = 10.0;
    return opt;
}

TEST(UsageMeter, AdmitsMetersAndBills) {
    UsageMeter meter(cheap());
    const Admission a = meter.admit("alice", 0.0, 4.0);
    ASSERT_TRUE(a.ok());
    EXPECT_DOUBLE_EQ(a.usage, 4.0);
    EXPECT_EQ(a.charged, Money::from_micros(4'000));
    EXPECT_DOUBLE_EQ(meter.usage("alice", 0.0), 4.0);
    EXPECT_EQ(meter.billed("alice"), Money::from_micros(4'000));
    // Unknown accounts read as zero, not as an error.
    EXPECT_DOUBLE_EQ(meter.usage("nobody", 0.0), 0.0);
    EXPECT_EQ(meter.billed("nobody"), Money{});
    EXPECT_EQ(meter.account_count(), 1u);
}

TEST(UsageMeter, OverQuotaRejectsThenDecaysBackUnder) {
    UsageMeter meter(cheap());  // quota 10, half-life 2
    ASSERT_TRUE(meter.admit("bob", 0.0, 8.0).ok());
    // 8 + 4 > 10: rejected, and the rejection charges nothing.
    const Admission rejected = meter.admit("bob", 0.0, 4.0);
    EXPECT_EQ(rejected.code, ServeError::kOverQuota);
    EXPECT_EQ(rejected.charged, Money{});
    EXPECT_EQ(meter.billed("bob"), Money::from_micros(8'000));
    EXPECT_EQ(meter.rejected(), 1u);
    // Two half-lives later the load average has decayed 8 -> 2, so the
    // same query is admitted: backpressure, not a permanent ban.
    const Admission later = meter.admit("bob", 4.0, 4.0);
    ASSERT_TRUE(later.ok());
    EXPECT_DOUBLE_EQ(later.usage, 6.0);
}

TEST(UsageMeter, AdmissionDisabledMetersWithoutRejecting) {
    MeterOptions opt = cheap();
    opt.admission_enabled = false;
    UsageMeter meter(opt);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(meter.admit("carol", 0.0, 100.0).ok());
    }
    EXPECT_EQ(meter.rejected(), 0u);
    EXPECT_DOUBLE_EQ(meter.usage("carol", 0.0), 500.0);
}

TEST(UsageMeter, BillingOverflowRefusedAtomically) {
    MeterOptions opt;
    opt.price_per_unit = Money::from_dollars(std::int64_t{1'000'000});
    opt.quota_units = 1e30;  // quota is not the constraint here
    UsageMeter meter(opt);
    // 10^12 micros * 10^13 units overflows int64: refused whole.
    const Admission refused = meter.admit("dave", 0.0, 1e13);
    EXPECT_EQ(refused.code, ServeError::kBillingRefused);
    EXPECT_EQ(meter.billed("dave"), Money{});
    EXPECT_DOUBLE_EQ(meter.usage("dave", 0.0), 0.0);
    EXPECT_EQ(meter.rejected(), 1u);
}

TEST(UsageMeter, ReconcileFlushesIntoBalancedLedger) {
    UsageMeter meter(cheap());
    ASSERT_TRUE(meter.admit("alice", 0.0, 4.0).ok());
    ASSERT_TRUE(meter.admit("bob", 0.0, 6.0).ok());

    const auto first = meter.reconcile(1);
    EXPECT_EQ(first.accounts_flushed, 2u);
    EXPECT_EQ(first.flushed, Money::from_micros(10'000));
    EXPECT_TRUE(first.balanced);

    // Nothing accrued since: the second rollover flushes zero and
    // still balances.
    const auto idle = meter.reconcile(2);
    EXPECT_EQ(idle.accounts_flushed, 0u);
    EXPECT_EQ(idle.flushed, Money{});
    EXPECT_TRUE(idle.balanced);

    // New charges flush as a delta, never double-billed.
    ASSERT_TRUE(meter.admit("alice", 2.0, 3.0).ok());
    const auto delta = meter.reconcile(3);
    EXPECT_EQ(delta.accounts_flushed, 1u);
    EXPECT_EQ(delta.flushed, Money::from_micros(3'000));
    EXPECT_TRUE(delta.balanced);

    const core::Ledger ledger = meter.billing_ledger();
    EXPECT_TRUE(ledger.conserves());
    EXPECT_EQ(ledger.total(core::TransferKind::kServiceFees), meter.total_billed());
    // The POC collects every service fee.
    EXPECT_EQ(ledger.poc_net(), Money::from_micros(13'000));
}

TEST(UsageMeter, ErrorNamesStable) {
    EXPECT_STREQ(serve_error_name(ServeError::kOk), "ok");
    EXPECT_STREQ(serve_error_name(ServeError::kNotServing), "not-serving");
    EXPECT_STREQ(serve_error_name(ServeError::kOverQuota), "over-quota");
    EXPECT_STREQ(serve_error_name(ServeError::kBillingRefused), "billing-refused");
    EXPECT_STREQ(serve_error_name(ServeError::kUnknownBp), "unknown-bp");
    EXPECT_STREQ(serve_error_name(ServeError::kUnknownNode), "unknown-node");
    EXPECT_STREQ(serve_error_name(ServeError::kUnreachable), "unreachable");
    EXPECT_STREQ(serve_error_name(ServeError::kHistoryUnavailable), "history-unavailable");
}

TEST(UsageMeter, ValidatesOptions) {
    MeterOptions bad_half_life;
    bad_half_life.half_life_epochs = 0.0;
    EXPECT_THROW(UsageMeter{bad_half_life}, util::ContractViolation);
    MeterOptions bad_quota;
    bad_quota.quota_units = 0.0;
    EXPECT_THROW(UsageMeter{bad_quota}, util::ContractViolation);
}

}  // namespace
}  // namespace poc::serve
