// The RCU publication point's ordering contract: same-epoch
// republish is idempotent (a restarted daemon or re-bootstrapped
// follower re-announces the epoch it recovered to), older epochs are
// rejected (readers never see time run backwards), and the guard
// holds under concurrent readers and racing publishers (the TSan
// target).
#include "serve/view_hub.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace poc::serve {
namespace {

std::shared_ptr<const EpochView> view_at(std::size_t completed_epochs,
                                         double marker = 0.0) {
    auto v = std::make_shared<EpochView>();
    v->epoch = completed_epochs == 0 ? 0 : completed_epochs - 1;
    v->completed_epochs = completed_epochs;
    v->record.epoch = v->epoch;
    v->record.demand_factor = marker;  // distinguishes same-epoch rebuilds
    return v;
}

TEST(ViewHubTest, PublishesMonotonicallyAndRejectsOlderEpochs) {
    ViewHub hub;
    EXPECT_EQ(hub.current(), nullptr);
    EXPECT_FALSE(hub.publish(nullptr));

    EXPECT_TRUE(hub.publish(view_at(3)));
    EXPECT_TRUE(hub.publish(view_at(4)));
    ASSERT_NE(hub.current(), nullptr);
    EXPECT_EQ(hub.current()->completed_epochs, 4u);

    // Older epoch: rejected, current unchanged, counted.
    EXPECT_FALSE(hub.publish(view_at(2)));
    EXPECT_FALSE(hub.publish(view_at(3)));
    EXPECT_EQ(hub.current()->completed_epochs, 4u);
    EXPECT_EQ(hub.published_count(), 2u);
    EXPECT_EQ(hub.rejected_count(), 2u);
}

TEST(ViewHubTest, SameEpochRepublishIsIdempotentAndInstallsTheNewView) {
    ViewHub hub;
    ASSERT_TRUE(hub.publish(view_at(5, /*marker=*/1.0)));

    // A same-epoch republish (restart / re-bootstrap re-announcement)
    // is accepted and swaps in the new instance.
    ASSERT_TRUE(hub.publish(view_at(5, /*marker=*/2.0)));
    ASSERT_NE(hub.current(), nullptr);
    EXPECT_EQ(hub.current()->completed_epochs, 5u);
    EXPECT_DOUBLE_EQ(hub.current()->record.demand_factor, 2.0);
    EXPECT_EQ(hub.published_count(), 2u);
    EXPECT_EQ(hub.rejected_count(), 0u);
}

TEST(ViewHubTest, OldViewsStayAliveForTheirReaders) {
    ViewHub hub;
    hub.publish(view_at(1));
    const auto pinned = hub.current();
    hub.publish(view_at(2));
    hub.publish(view_at(3));
    // RCU: the epoch-1 view dies with its last reader, not at swap.
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(pinned->completed_epochs, 1u);
    EXPECT_EQ(hub.current()->completed_epochs, 3u);
}

TEST(ViewHubTest, GuardHoldsUnderConcurrentPublishersAndReaders) {
    // TSan target: two publishers racing (one ascending, one replaying
    // old epochs) against reader threads. Readers must observe only
    // monotone, internally consistent views; the ascending publisher's
    // newest epoch must win.
    ViewHub hub;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> violations{0};

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            std::uint64_t last = 0;
            do {
                const auto v = hub.current();
                if (v) {
                    if (v->completed_epochs < last ||
                        v->epoch + 1 != v->completed_epochs) {
                        violations.fetch_add(1);
                    }
                    last = v->completed_epochs;
                }
            } while (!done.load(std::memory_order_acquire));
        });
    }

    constexpr std::uint64_t kTop = 512;
    std::thread ascending([&] {
        for (std::uint64_t n = 1; n <= kTop; ++n) hub.publish(view_at(n));
    });
    std::thread replayer([&] {
        // A lagging replica re-announcing stale epochs: every one of
        // these must lose to (or tie) the ascending publisher.
        for (std::uint64_t n = 1; n <= kTop; ++n) hub.publish(view_at((n % 7) + 1));
    });

    ascending.join();
    replayer.join();
    done.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();

    EXPECT_EQ(violations.load(), 0u);
    ASSERT_NE(hub.current(), nullptr);
    EXPECT_EQ(hub.current()->completed_epochs, kTop);
    EXPECT_EQ(hub.published_count() + hub.rejected_count(), 2 * kTop);
}

}  // namespace
}  // namespace poc::serve
