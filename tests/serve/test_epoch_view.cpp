// EpochView freezing: a committed epoch's quotes, backbone path
// trees, and ledger balances become an immutable value; SLA grading
// covers the healthy/degraded/violated/unprovisioned lattice.
#include "serve/epoch_view.hpp"

#include <gtest/gtest.h>

#include "helpers/market.hpp"

namespace poc::serve {
namespace {

using test::ParallelLinksFixture;
using util::Money;

/// Run one journald-off epoch and freeze its commit.
std::shared_ptr<const EpochView> one_epoch_view(const ParallelLinksFixture& fx,
                                                double demand_gbps,
                                                sim::RuntimeOptions opt = {}) {
    const market::OfferPool pool = fx.pool();
    const net::TrafficMatrix tm = fx.demand(demand_gbps);
    opt.epochs = 1;
    opt.demand_jitter = 0.0;
    std::shared_ptr<const EpochView> view;
    opt.on_epoch_commit = [&](const sim::EpochCommit& commit) {
        view = build_epoch_view(fx.graph, commit);
    };
    sim::EpochRuntime(pool, tm, opt).run();
    return view;
}

TEST(EpochView, FreezesQuotesBackboneAndBalances) {
    const ParallelLinksFixture fx;
    const auto view = one_epoch_view(fx, 5.0);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->epoch, 0u);
    EXPECT_EQ(view->completed_epochs, 1u);
    EXPECT_FALSE(view->replayed);
    ASSERT_TRUE(view->provisioned);

    // 5 Gbps over 10-capacity links: one link suffices; A is cheapest,
    // its VCG payment is B's price ($150).
    ASSERT_EQ(view->quotes.size(), 3u);
    const BpQuote* a = view->quote_for("A");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->payment, Money::from_dollars(std::int64_t{150}));
    EXPECT_EQ(a->links_won, 1u);
    EXPECT_EQ(view->quote_for("nope"), nullptr);
    EXPECT_EQ(view->total_outlay, view->record.outlay);

    ASSERT_EQ(view->backbone.size(), 1u);

    // The ledger has POC activity, and the view's balance lookup
    // agrees with poc_net.
    const auto poc = view->balance(core::Party{core::PartyKind::kPoc, 0});
    ASSERT_TRUE(poc.has_value());
    EXPECT_EQ(*poc, view->poc_net);
    EXPECT_FALSE(view->balance(core::Party{core::PartyKind::kLmp, 99}).has_value());
}

TEST(EpochView, PathTreesAnswerOnTheProvisionedBackbone) {
    const ParallelLinksFixture fx;
    const auto view = one_epoch_view(fx, 5.0);
    ASSERT_NE(view, nullptr);
    ASSERT_EQ(view->trees.size(), fx.graph.node_count());
    const net::NodeId left{0u};
    const net::NodeId right{1u};
    const net::ShortestPathTree& tree = view->trees[left.index()];
    ASSERT_TRUE(tree.reachable(right));
    const std::vector<net::LinkId> path = tree.path_to(right);
    ASSERT_EQ(path.size(), 1u);
    // The path runs over the winning (provisioned) link, not just any
    // graph link.
    EXPECT_EQ(path[0], view->backbone[0]);
    EXPECT_DOUBLE_EQ(tree.dist[right.index()], 1.0);
}

TEST(EpochView, UnprovisionedEpochIsolatesEveryNode) {
    const ParallelLinksFixture fx;
    // 100 Gbps cannot fit any subset of three 10-capacity links: the
    // auction finds no feasible set even under relaxation.
    const auto view = one_epoch_view(fx, 100.0);
    ASSERT_NE(view, nullptr);
    EXPECT_FALSE(view->provisioned);
    EXPECT_TRUE(view->quotes.empty());
    EXPECT_TRUE(view->backbone.empty());
    EXPECT_EQ(view->sla(0.999), SlaStatus::kUnprovisioned);
    EXPECT_FALSE(view->trees[0].reachable(net::NodeId{1u}));
}

TEST(EpochView, SlaGradesTheFullLattice) {
    EpochView view;
    view.provisioned = true;
    view.record.delivered_fraction = 1.0;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kHealthy);

    view.record.degraded_mode = true;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kDegraded);
    view.record.degraded_mode = false;
    view.record.breaker_open = true;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kDegraded);
    view.record.breaker_open = false;
    view.record.max_utilization = 1.25;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kDegraded);

    // A delivery shortfall outranks degradation flags.
    view.record.delivered_fraction = 0.9;
    view.record.degraded_mode = true;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kViolated);

    view.provisioned = false;
    EXPECT_EQ(view.sla(0.999), SlaStatus::kUnprovisioned);

    EXPECT_STREQ(sla_status_name(SlaStatus::kHealthy), "healthy");
    EXPECT_STREQ(sla_status_name(SlaStatus::kDegraded), "degraded");
    EXPECT_STREQ(sla_status_name(SlaStatus::kViolated), "violated");
    EXPECT_STREQ(sla_status_name(SlaStatus::kUnprovisioned), "unprovisioned");
}

TEST(EpochView, BuildsFromMaterializedState) {
    const ParallelLinksFixture fx;
    const market::OfferPool pool = fx.pool();
    const net::TrafficMatrix tm = fx.demand(5.0);
    sim::RuntimeOptions opt;
    opt.epochs = 2;
    const sim::RuntimeOutcome out = sim::EpochRuntime(pool, tm, opt).run();

    sim::RuntimeState state{out.epochs, out.auctions, out.ledger, out.final_rng, 0};
    const auto view = build_epoch_view(fx.graph, state);
    EXPECT_EQ(view->epoch, 1u);
    EXPECT_EQ(view->completed_epochs, 2u);
    EXPECT_TRUE(view->replayed);
    EXPECT_EQ(view->record, out.epochs.back());
}

}  // namespace
}  // namespace poc::serve
