// The always-on market daemon end to end: RCU rollovers under
// concurrent readers, structured error codes, admission backpressure,
// point-in-time materialization equal to a from-scratch rerun, and
// the read-only proof — a journaled run under a query storm stays
// bit-identical to one without.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "helpers/market.hpp"
#include "util/journal.hpp"

namespace poc::serve {
namespace {

using test::ParallelLinksFixture;
using util::Money;

/// Byte-exact comparison key for an optional auction result, with the
/// work-accounting diagnostics scrubbed (same rule as test_runtime).
std::string auction_bytes(const std::optional<market::AuctionResult>& a) {
    util::BinaryWriter w;
    w.boolean(a.has_value());
    if (a) {
        market::AuctionResult scrubbed = *a;
        scrubbed.oracle_queries = 0;
        scrubbed.oracle_cache_hits = 0;
        scrubbed.solve_cache_hits = 0;
        market::write_auction_result(w, scrubbed);
    }
    return w.bytes();
}

void expect_identical(const sim::RuntimeOutcome& got, const sim::RuntimeOutcome& want,
                      const std::string& context) {
    EXPECT_EQ(got.epochs, want.epochs) << context;
    EXPECT_EQ(got.ledger.transfers(), want.ledger.transfers()) << context;
    EXPECT_TRUE(got.final_rng == want.final_rng) << context;
    ASSERT_EQ(got.auctions.size(), want.auctions.size()) << context;
    for (std::size_t i = 0; i < got.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(got.auctions[i]), auction_bytes(want.auctions[i]))
            << context << " (epoch " << i << ")";
    }
}

class ServeEngineTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_serve_test_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string journal(const std::string& name) const { return (dir_ / name).string(); }

    sim::RuntimeOptions base_options(std::size_t epochs) const {
        sim::RuntimeOptions opt;
        opt.epochs = epochs;
        opt.seed = 7;
        opt.demand_jitter = 0.05;
        return opt;
    }

    ParallelLinksFixture fx_;
    std::filesystem::path dir_;
};

TEST_F(ServeEngineTest, ServesQuotesPathsAndSlaAcrossRollovers) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(4);
    opt.journal_path = journal("serve.wal");

    ServeEngine engine(pool, tm, opt, {});
    EXPECT_EQ(engine.current(), nullptr);
    EXPECT_EQ(engine.quote("acct", "A").code, ServeError::kNotServing);

    engine.attach(opt);
    sim::EpochRuntime(pool, tm, opt).run();

    // >= 3 rollovers happened and the newest epoch is published.
    EXPECT_EQ(engine.rollovers(), 4u);
    const auto view = engine.current();
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->epoch, 3u);
    EXPECT_EQ(view->completed_epochs, 4u);

    const auto quote = engine.quote("acct", "A");
    ASSERT_EQ(quote.code, ServeError::kOk);
    EXPECT_EQ(quote.epoch, 3u);
    EXPECT_EQ(quote.quote.payment, Money::from_dollars(std::int64_t{150}));
    EXPECT_EQ(engine.quote("acct", "Zed").code, ServeError::kUnknownBp);

    const auto path = engine.path("acct", net::NodeId{0u}, net::NodeId{1u});
    ASSERT_EQ(path.code, ServeError::kOk);
    EXPECT_EQ(path.links.size(), 1u);
    EXPECT_EQ(engine.path("acct", net::NodeId{0u}, net::NodeId{42u}).code,
              ServeError::kUnknownNode);
    EXPECT_EQ(engine.path("acct", net::NodeId{}, net::NodeId{1u}).code,
              ServeError::kUnknownNode);

    const auto sla = engine.sla("acct");
    ASSERT_EQ(sla.code, ServeError::kOk);
    EXPECT_EQ(sla.status, SlaStatus::kHealthy);
    EXPECT_DOUBLE_EQ(sla.delivered_fraction, 1.0);
}

TEST_F(ServeEngineTest, ConcurrentReadersNeverSeeATornRollover) {
    // The TSan target: query threads hammer the hub while the runtime
    // publishes >= 3 rollovers. Readers must always observe a fully
    // built epoch (monotone epoch numbers, internally consistent
    // views), and the run must complete with every reply well-formed.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(6);
    opt.journal_path = journal("concurrent.wal");

    ServeOptions sopt;
    sopt.workers = 3;
    sopt.meter.quota_units = 1e9;  // admission off the critical path
    ServeEngine engine(pool, tm, opt, sopt);
    engine.attach(opt);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> torn{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            const std::string account = "reader-" + std::to_string(t);
            std::size_t last_epoch = 0;
            // do-while: at least one full query round even if the run
            // outpaces thread startup.
            do {
                const auto view = engine.current();
                if (view) {
                    // Epochs only move forward, and a published view is
                    // complete: trees for every node, record matching
                    // the epoch number.
                    if (view->epoch + 1 != view->completed_epochs ||
                        view->epoch < last_epoch ||
                        view->trees.size() != pool.graph().node_count() ||
                        view->record.epoch != view->epoch) {
                        torn.fetch_add(1);
                    }
                    last_epoch = view->epoch;
                }
                const auto sla = engine.sla(account);
                if (view && sla.code != ServeError::kOk) torn.fetch_add(1);
                engine.quote(account, "A");
                engine.path(account, net::NodeId{0u}, net::NodeId{1u});
                reads.fetch_add(1);
            } while (!done.load(std::memory_order_acquire));
        });
    }

    const sim::RuntimeOutcome out = sim::EpochRuntime(pool, tm, opt).run();
    done.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();

    EXPECT_EQ(out.epochs.size(), 6u);
    EXPECT_EQ(engine.rollovers(), 6u);
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(reads.load(), 0u);
    // A reader that grabbed an old epoch's view still holds valid
    // state after every rollover (RCU: old epochs die with their last
    // reader, not at swap time).
    const auto view = engine.current();
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->epoch, 5u);
}

TEST_F(ServeEngineTest, QueryStormIsBitNonPerturbing) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);

    // Baseline: journaled run, no daemon attached.
    sim::RuntimeOptions quiet = base_options(5);
    quiet.journal_path = journal("quiet.wal");
    const sim::RuntimeOutcome baseline = sim::EpochRuntime(pool, tm, quiet).run();

    // Stormed: same run with the daemon attached and a query storm --
    // synchronous queries from the commit hook plus async ones on the
    // engine pool, including historical materializations that scan the
    // live journal mid-run.
    sim::RuntimeOptions stormed = base_options(5);
    stormed.journal_path = journal("stormed.wal");
    ServeOptions sopt;
    sopt.meter.quota_units = 1e9;
    ServeEngine engine(pool, tm, stormed, sopt);
    engine.attach(stormed);
    const auto user_hook = stormed.on_epoch_commit;
    stormed.on_epoch_commit = [&](const sim::EpochCommit& commit) {
        user_hook(commit);
        for (int i = 0; i < 8; ++i) {
            engine.quote("storm", "B");
            engine.sla("storm");
            engine.path("storm", net::NodeId{0u}, net::NodeId{1u});
            engine.async([&engine] { engine.sla("storm-async"); });
        }
        engine.at_epoch("storm", commit.completed_epochs);
    };
    const sim::RuntimeOutcome under_storm = sim::EpochRuntime(pool, tm, stormed).run();
    engine.wait_idle();

    expect_identical(under_storm, baseline, "query storm must not perturb the run");

    // And the stormed journal replays bit-identical: queries wrote
    // nothing. (Fresh runtime over the stormed journal, no daemon.)
    sim::RuntimeOptions replay = base_options(5);
    replay.journal_path = journal("stormed.wal");
    const sim::RuntimeOutcome replayed = sim::EpochRuntime(pool, tm, replay).run();
    EXPECT_EQ(replayed.replayed_epochs, 5u);
    expect_identical(replayed, baseline, "stormed journal replay");
}

TEST_F(ServeEngineTest, PointInTimeMatchesFromScratchAtEveryEpoch) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(5);
    opt.journal_path = journal("history.wal");
    opt.snapshot_interval = 2;  // mixed grounding: snapshots + suffix replay
    // Keep the full journal: compaction trades historical range for
    // log size (see CompactionBoundsTheProvableRange below).
    opt.compact_after_snapshot = false;

    ServeOptions sopt;
    sopt.meter.quota_units = 1e9;
    ServeEngine engine(pool, tm, opt, sopt);
    engine.attach(opt);
    sim::EpochRuntime(pool, tm, opt).run();

    for (std::uint64_t n = 1; n <= 5; ++n) {
        const auto got = engine.at_epoch("auditor", n);
        ASSERT_EQ(got.code, ServeError::kOk) << "epochs=" << n;
        ASSERT_NE(got.view, nullptr);

        // From-scratch rerun of exactly n epochs, fresh journal.
        sim::RuntimeOptions scratch = base_options(n);
        scratch.journal_path = journal("scratch-" + std::to_string(n) + ".wal");
        const sim::RuntimeOutcome want = sim::EpochRuntime(pool, tm, scratch).run();

        EXPECT_EQ(got.view->completed_epochs, n);
        EXPECT_EQ(got.view->record, want.epochs.back()) << "epochs=" << n;
        EXPECT_EQ(got.view->poc_net, want.ledger.poc_net()) << "epochs=" << n;
        ASSERT_FALSE(got.view->quotes.empty());
        EXPECT_EQ(want.auctions.back().has_value(), got.view->provisioned);
    }

    // Cached reuse answers without re-materializing.
    const auto again = engine.at_epoch("auditor", 3);
    ASSERT_EQ(again.code, ServeError::kOk);
    EXPECT_EQ(again.view->completed_epochs, 3u);

    // Unprovable targets are structured errors, not crashes.
    EXPECT_EQ(engine.at_epoch("auditor", 0).code, ServeError::kHistoryUnavailable);
    EXPECT_EQ(engine.at_epoch("auditor", 99).code, ServeError::kHistoryUnavailable);
}

TEST_F(ServeEngineTest, CompactionBoundsTheProvableRange) {
    // With compact_after_snapshot on (the default), the journal holds
    // only the suffix past the newest snapshot: point-in-time queries
    // can prove exactly the retained snapshots and epochs reachable
    // from them — earlier epochs answer kHistoryUnavailable instead of
    // silently wrong data.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(5);
    opt.journal_path = journal("compacted.wal");
    opt.snapshot_interval = 2;  // snapshots at 2 and 4, compacted after each

    ServeOptions sopt;
    sopt.meter.quota_units = 1e9;
    ServeEngine engine(pool, tm, opt, sopt);
    engine.attach(opt);
    sim::EpochRuntime(pool, tm, opt).run();

    // Provable: snapshot epochs and the journal suffix past them.
    for (const std::uint64_t n : {2u, 4u, 5u}) {
        const auto got = engine.at_epoch("auditor", n);
        EXPECT_EQ(got.code, ServeError::kOk) << "epochs=" << n;
        if (got.view) EXPECT_EQ(got.view->completed_epochs, n);
    }
    // Dropped by compaction: epoch 1 and 3 predate the snapshots and
    // their journal records are gone.
    for (const std::uint64_t n : {1u, 3u}) {
        EXPECT_EQ(engine.at_epoch("auditor", n).code, ServeError::kHistoryUnavailable)
            << "epochs=" << n;
    }
}

TEST_F(ServeEngineTest, AdmissionControlRejectsOverQuotaAccounts) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(3);
    opt.journal_path = journal("admission.wal");

    ServeOptions sopt;
    sopt.meter.quota_units = 5.0;
    sopt.meter.half_life_epochs = 4.0;
    sopt.quote_units = 2.0;
    ServeEngine engine(pool, tm, opt, sopt);
    engine.attach(opt);
    sim::EpochRuntime(pool, tm, opt).run();

    // 2 units per quote, quota 5: the third quote tips over.
    EXPECT_EQ(engine.quote("greedy", "A").code, ServeError::kOk);
    EXPECT_EQ(engine.quote("greedy", "A").code, ServeError::kOk);
    EXPECT_EQ(engine.quote("greedy", "A").code, ServeError::kOverQuota);
    EXPECT_GE(engine.meter().rejected(), 1u);
    // Other accounts are unaffected (per-account quotas).
    EXPECT_EQ(engine.quote("patient", "A").code, ServeError::kOk);
    // The rejected account was billed only for admitted queries.
    EXPECT_EQ(engine.meter().billed("greedy"),
              sopt.meter.price_per_unit.scaled(4.0));

    // Rollover reconciliation balances the serve-side ledger.
    const auto rec = engine.meter().reconcile(3);
    EXPECT_TRUE(rec.balanced);
    EXPECT_GT(rec.flushed, Money{});
}

TEST_F(ServeEngineTest, RestartedDaemonRepublishesFromTheJournal) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = base_options(3);
    opt.journal_path = journal("restart.wal");

    // First process: run to completion with a daemon attached.
    {
        ServeEngine engine(pool, tm, opt, {});
        engine.attach(opt);
        sim::EpochRuntime(pool, tm, opt).run();
        ASSERT_NE(engine.current(), nullptr);
        EXPECT_FALSE(engine.current()->replayed);
    }

    // Restarted process: recovery republishes the newest epoch with
    // replayed=true, so a fresh daemon serves without re-running.
    ServeEngine engine(pool, tm, opt, {});
    engine.attach(opt);
    const sim::RuntimeOutcome out = sim::EpochRuntime(pool, tm, opt).run();
    EXPECT_EQ(out.replayed_epochs, 3u);
    const auto view = engine.current();
    ASSERT_NE(view, nullptr);
    EXPECT_TRUE(view->replayed);
    EXPECT_EQ(view->epoch, 2u);
    EXPECT_EQ(view->completed_epochs, 3u);
    EXPECT_EQ(engine.quote("acct", "A").code, ServeError::kOk);
}

}  // namespace
}  // namespace poc::serve
