// The replicated read tier end to end: followers tailing a live
// writer produce EpochViews bit-identical to the leader's at every
// epoch; torn tails are retried, compaction swaps re-bootstrap, bit
// flips stall structurally instead of serving garbage; bounded
// staleness returns kStaleView exactly when lag exceeds the bound;
// and the replica supervisor survives crash/corrupt chaos traces.
#include "serve/follower.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "helpers/market.hpp"
#include "util/fault_injection.hpp"
#include "util/journal.hpp"
#include "util/state_history.hpp"

namespace poc::serve {
namespace {

using test::ParallelLinksFixture;

/// Frame overhead of one journal record (type + length + CRC), for
/// computing record-boundary byte offsets from a scan.
constexpr std::uint64_t kFrame = sizeof(std::uint16_t) + 2 * sizeof(std::uint32_t);

class FollowerTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_follower_test_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string journal(const std::string& name) const { return (dir_ / name).string(); }

    sim::RuntimeOptions leader_options(std::size_t epochs, const std::string& name) const {
        sim::RuntimeOptions opt;
        opt.epochs = epochs;
        opt.seed = 7;
        opt.demand_jitter = 0.05;
        opt.journal_path = journal(name);
        return opt;
    }

    /// Run the leader to completion, capturing the bit-exact encoding
    /// of its published view at every epoch.
    sim::RuntimeOutcome run_leader(const market::OfferPool& pool,
                                   const net::TrafficMatrix& tm, sim::RuntimeOptions opt,
                                   std::map<std::uint64_t, std::string>* views = nullptr) {
        if (views != nullptr) {
            opt.on_epoch_commit = [&pool, views](const sim::EpochCommit& commit) {
                (*views)[commit.completed_epochs] =
                    encode_epoch_view(*build_epoch_view(pool.graph(), commit));
            };
        }
        return sim::EpochRuntime(pool, tm, opt).run();
    }

    /// Poll the follower until `target` epochs are applied (or a poll
    /// stops progressing `stall_limit` times in a row), recording the
    /// encoding of every distinct epoch its hub publishes.
    void drain(Follower& f, std::uint64_t target,
               std::map<std::uint64_t, std::string>& views,
               std::size_t stall_limit = 64) {
        std::size_t stalls = 0;
        while (f.applied_epochs() < target && stalls < stall_limit) {
            const FollowerPoll p = f.poll();
            stalls = p.progressed ? 0 : stalls + 1;
            const auto v = f.hub()->current();
            if (v) views.emplace(v->completed_epochs, encode_epoch_view(*v));
        }
    }

    /// Every view the follower served must be byte-identical to the
    /// leader's view of the same epoch (excluding the `replayed`
    /// provenance bit, which encode_epoch_view omits by design).
    void expect_subset_identical(const std::map<std::uint64_t, std::string>& follower,
                                 const std::map<std::uint64_t, std::string>& leader,
                                 const std::string& context) {
        ASSERT_FALSE(follower.empty()) << context;
        for (const auto& [epochs, bytes] : follower) {
            const auto want = leader.find(epochs);
            ASSERT_NE(want, leader.end()) << context << ": follower served epoch count "
                                          << epochs << " the leader never committed";
            EXPECT_EQ(bytes, want->second) << context << " (completed=" << epochs << ")";
        }
    }

    ParallelLinksFixture fx_;
    std::filesystem::path dir_;
};

TEST_F(FollowerTest, TailsACompletedJournalBitIdenticalAtEveryEpoch) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(5, "static.wal");
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);
    ASSERT_EQ(leader.size(), 5u);

    // max_records_per_poll=1 steps every record boundary, so every
    // epoch's publication is observable between polls.
    FollowerOptions fopt;
    fopt.runtime = opt;
    fopt.max_records_per_poll = 1;
    Follower f(pool, tm, fopt);
    EXPECT_EQ(f.status(), FollowerStatus::kCold);

    std::map<std::uint64_t, std::string> follower;
    drain(f, 5, follower);

    EXPECT_EQ(f.applied_epochs(), 5u);
    EXPECT_EQ(f.lag_epochs(), 0u);
    EXPECT_EQ(f.status(), FollowerStatus::kTailing);
    EXPECT_EQ(follower.size(), 5u);
    expect_subset_identical(follower, leader, "static journal");
    EXPECT_EQ(f.stats().publish_rejects, 0u);

    // The cursor consumed the whole valid prefix.
    util::Journal::ScanResult scan;
    util::Journal::scan_file(opt.journal_path, scan);
    EXPECT_EQ(f.cursor_bytes(), scan.valid_end);
    EXPECT_EQ(f.cursor_records(), scan.records.size());
}

TEST_F(FollowerTest, NFollowersTailALiveWriterBitIdentically) {
    // The tentpole property: followers tailing a *live* writer — with
    // snapshots and compaction rewriting the journal underneath them —
    // serve only views byte-identical to what the leader committed.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(8, "live.wal");
    opt.snapshot_interval = 2;  // compact-while-tailing
    std::map<std::uint64_t, std::string> leader;

    constexpr int kFollowers = 3;
    std::vector<std::map<std::uint64_t, std::string>> seen(kFollowers);
    std::vector<std::uint64_t> rebootstraps(kFollowers, 0);
    std::vector<std::thread> tails;
    for (int i = 0; i < kFollowers; ++i) {
        tails.emplace_back([&, i] {
            FollowerOptions fopt;
            fopt.runtime = opt;
            fopt.max_records_per_poll = 1;
            Follower f(pool, tm, fopt);
            std::size_t idle = 0;
            // Generous idle budget: the writer runs concurrently and
            // may pause (snapshot I/O) between appends.
            while (f.applied_epochs() < 8 && idle < 4000) {
                const FollowerPoll p = f.poll();
                idle = p.progressed ? 0 : idle + 1;
                if (!p.progressed) {
                    std::this_thread::sleep_for(std::chrono::microseconds(200));
                }
                const auto v = f.hub()->current();
                if (v) seen[i].emplace(v->completed_epochs, encode_epoch_view(*v));
            }
            rebootstraps[i] = f.stats().rebootstraps;
        });
    }

    run_leader(pool, tm, opt, &leader);
    for (std::thread& t : tails) t.join();
    ASSERT_EQ(leader.size(), 8u);

    for (int i = 0; i < kFollowers; ++i) {
        const std::string ctx = "follower " + std::to_string(i);
        expect_subset_identical(seen[i], leader, ctx);
        // Every follower converged to the final epoch.
        ASSERT_TRUE(seen[i].count(8)) << ctx;
        // Bootstrapping happened at least once (cold start counts).
        EXPECT_GE(rebootstraps[i], 1u) << ctx;
    }
}

TEST_F(FollowerTest, TornTailAtEveryRecordBoundaryIsRetriedNotTruncated) {
    // Exhaustive torn-tail matrix: for every record boundary, a
    // journal cut 3 bytes into the next frame must (a) apply exactly
    // the complete prefix, (b) report kTornTail without throwing or
    // truncating, and (c) extend seamlessly once the "write" finishes.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(4, "torn-src.wal");
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);

    const std::string full = util::FaultyFile::slurp(opt.journal_path);
    util::Journal::ScanResult scan;
    util::Journal::scan_file(opt.journal_path, scan);
    std::vector<std::uint64_t> boundaries{scan.header_end};
    for (const util::JournalRecord& r : scan.records) {
        boundaries.push_back(boundaries.back() + kFrame + r.payload.size());
    }
    ASSERT_EQ(boundaries.back(), scan.valid_end);

    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
        const std::string torn_path = journal("torn-" + std::to_string(i) + ".wal");
        util::FaultyFile::spit(torn_path, full);
        util::FaultyFile::tear_at(torn_path, boundaries[i] + 3);

        sim::RuntimeOptions ropt = opt;
        ropt.journal_path = torn_path;
        FollowerOptions fopt;
        fopt.runtime = ropt;
        Follower f(pool, tm, fopt);

        const FollowerPoll p = f.poll();
        EXPECT_TRUE(p.torn_tail) << "boundary " << i;
        EXPECT_EQ(p.status, FollowerStatus::kTornTail) << "boundary " << i;
        EXPECT_EQ(f.cursor_records(), i) << "boundary " << i;
        EXPECT_EQ(f.cursor_bytes(), boundaries[i]) << "boundary " << i;
        // Read-only: the torn bytes are still on disk.
        EXPECT_EQ(util::FaultyFile::size(torn_path), boundaries[i] + 3)
            << "boundary " << i;

        // The writer finishes its append: same generation, the tail
        // extends, the follower completes bit-identically.
        util::FaultyFile::spit(torn_path, full);
        std::map<std::uint64_t, std::string> seen;
        drain(f, 4, seen);
        EXPECT_EQ(f.applied_epochs(), 4u) << "boundary " << i;
        expect_subset_identical(seen, leader, "boundary " + std::to_string(i));
    }
}

TEST_F(FollowerTest, BitFlipInEveryRecordStallsStructurallyThenRecovers) {
    // Corrupt-tail matrix: a bit flip inside record i must stop the
    // follower at record i (never a wrong view), escalate from
    // kTornTail to kCorrupt once the stall budget (and a snapshot
    // re-ground) is burned, and clear the moment the damage does.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(3, "flip-src.wal");
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);

    const std::string full = util::FaultyFile::slurp(opt.journal_path);
    util::Journal::ScanResult scan;
    util::Journal::scan_file(opt.journal_path, scan);
    std::vector<std::uint64_t> boundaries{scan.header_end};
    for (const util::JournalRecord& r : scan.records) {
        boundaries.push_back(boundaries.back() + kFrame + r.payload.size());
    }

    for (std::size_t i = 0; i < scan.records.size(); ++i) {
        const std::string path = journal("flip-" + std::to_string(i) + ".wal");
        util::FaultyFile::spit(path, full);
        // Flip a payload bit of record i.
        const std::uint64_t victim = boundaries[i] + kFrame + scan.records[i].payload.size() / 2;
        util::FaultyFile::flip_bit(path, victim, 5);

        sim::RuntimeOptions ropt = opt;
        ropt.journal_path = path;
        FollowerOptions fopt;
        fopt.runtime = ropt;
        fopt.stall_poll_budget = 2;  // fast escalation for the test
        Follower f(pool, tm, fopt);

        // First poll applies the clean prefix and reports a torn tail
        // (a flip is indistinguishable from an in-progress write).
        FollowerPoll p = f.poll();
        EXPECT_EQ(f.cursor_records(), i) << "record " << i;
        EXPECT_TRUE(p.torn_tail) << "record " << i;
        // No progress past the damage: the stall budget escalates to
        // kCorrupt (after one futile snapshot re-ground).
        for (int n = 0; n < 8 && f.status() != FollowerStatus::kCorrupt; ++n) {
            p = f.poll();
        }
        EXPECT_EQ(f.status(), FollowerStatus::kCorrupt) << "record " << i;
        // It kept serving its last proven view — never a wrong one.
        const auto held = f.hub()->current();
        if (held) {
            EXPECT_EQ(encode_epoch_view(*held), leader.at(held->completed_epochs))
                << "record " << i;
        }

        // The damage clears (a leader rewrite from clean state): the
        // follower converges bit-identically.
        util::FaultyFile::flip_bit(path, victim, 5);
        std::map<std::uint64_t, std::string> seen;
        drain(f, 3, seen);
        EXPECT_EQ(f.applied_epochs(), 3u) << "record " << i;
        EXPECT_EQ(f.status(), FollowerStatus::kTailing) << "record " << i;
        expect_subset_identical(seen, leader, "record " + std::to_string(i));
    }
}

TEST_F(FollowerTest, CompactionSwapTriggersRebootstrapFromSnapshot) {
    // Stage the compaction race deterministically: build both journal
    // generations of the *same* 8-epoch run (compaction is an engine
    // knob outside the configuration fingerprint), let the follower
    // tail the pre-compaction generation mid-way, then rename the
    // compacted generation over the path — exactly what the leader's
    // Journal::rewrite does underneath a live follower.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(8, "swap.wal");
    opt.snapshot_interval = 2;
    opt.snapshot_keep = 8;  // retain every generation for the staging
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);
    ASSERT_EQ(leader.size(), 8u);
    const std::string compacted = util::FaultyFile::slurp(opt.journal_path);

    // Pre-compaction generation of the identical run.
    sim::RuntimeOptions full = opt;
    full.journal_path = journal("full.wal");
    full.compact_after_snapshot = false;
    run_leader(pool, tm, full);
    util::FaultyFile::spit(opt.journal_path, util::FaultyFile::slurp(full.journal_path));

    // Hide the snapshots past epoch 4, so the follower grounds at 4
    // and tails the journal suffix (mid-catch-up when the swap lands).
    const util::SnapshotStore store(opt.journal_path, 8);
    for (const std::uint64_t n : {6u, 8u}) {
        std::filesystem::rename(store.path_for(n),
                                dir_ / ("stash-" + std::to_string(n)));
    }

    FollowerOptions fopt;
    fopt.runtime = opt;
    fopt.max_records_per_poll = 1;
    Follower f(pool, tm, fopt);
    std::map<std::uint64_t, std::string> seen;
    drain(f, 5, seen);
    ASSERT_EQ(f.applied_epochs(), 5u);
    ASSERT_GT(f.lag_epochs(), 0u);  // genuinely mid-tail
    const std::uint64_t bootstraps_before = f.stats().rebootstraps;

    // The leader compacts: new generation renamed over the path, the
    // newer snapshots reappear (install order is snapshot-then-compact).
    for (const std::uint64_t n : {6u, 8u}) {
        std::filesystem::rename(dir_ / ("stash-" + std::to_string(n)),
                                store.path_for(n));
    }
    const std::string incoming = journal("swap.wal.incoming");
    util::FaultyFile::spit(incoming, compacted);
    std::filesystem::rename(incoming, opt.journal_path);

    bool rebootstrapped = false;
    std::size_t stalls = 0;
    while (f.applied_epochs() < 8 && stalls < 64) {
        const FollowerPoll p = f.poll();
        rebootstrapped = rebootstrapped || p.rebootstrapped;
        stalls = p.progressed ? 0 : stalls + 1;
        const auto v = f.hub()->current();
        if (v) seen.emplace(v->completed_epochs, encode_epoch_view(*v));
    }

    EXPECT_TRUE(rebootstrapped);
    EXPECT_GT(f.stats().rebootstraps, bootstraps_before);
    EXPECT_EQ(f.applied_epochs(), 8u);
    expect_subset_identical(seen, leader, "compaction swap");
    // The hub never went backwards through the swap.
    const auto v = f.hub()->current();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->completed_epochs, 8u);
}

TEST_F(FollowerTest, StaleViewIsReturnedExactlyWhenLagExceedsTheBound) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(6, "stale.wal");
    run_leader(pool, tm, opt);

    FollowerOptions fopt;
    fopt.runtime = opt;
    fopt.max_records_per_poll = 1;
    Follower f(pool, tm, fopt);

    // Apply exactly 3 of 6 epochs; the scan has already proven all 6.
    std::size_t guard = 0;
    while (f.applied_epochs() < 3 && ++guard < 256) f.poll();
    ASSERT_EQ(f.applied_epochs(), 3u);
    ASSERT_EQ(f.known_epochs(), 6u);
    ASSERT_EQ(f.lag_epochs(), 3u);

    // lag == 3: bounds >= 3 answer, bounds < 3 refuse. Exactness at
    // the boundary on every query class.
    EXPECT_EQ(f.quote("A", 3).code, ServeError::kOk);
    EXPECT_EQ(f.quote("A", 2).code, ServeError::kStaleView);
    EXPECT_EQ(f.path(net::NodeId{0u}, net::NodeId{1u}, 3).code, ServeError::kOk);
    EXPECT_EQ(f.path(net::NodeId{0u}, net::NodeId{1u}, 2).code, ServeError::kStaleView);
    EXPECT_EQ(f.sla(3).code, ServeError::kOk);
    EXPECT_EQ(f.sla(2).code, ServeError::kStaleView);
    EXPECT_EQ(f.sla(0).code, ServeError::kStaleView);
    EXPECT_EQ(f.quote("A").code, ServeError::kOk);  // kNoLagBound
    EXPECT_EQ(f.stats().stale_rejects, 4u);

    // Graceful degradation: a stale replica still proves point-in-time
    // epochs it has history for.
    const auto past = f.at_epoch(2);
    ASSERT_EQ(past.code, ServeError::kOk);
    EXPECT_EQ(past.view->completed_epochs, 2u);
    EXPECT_EQ(f.at_epoch(0).code, ServeError::kHistoryUnavailable);
    EXPECT_EQ(f.at_epoch(99).code, ServeError::kHistoryUnavailable);

    // Caught up: lag 0, even max_lag_epochs=0 answers.
    std::map<std::uint64_t, std::string> seen;
    drain(f, 6, seen);
    EXPECT_EQ(f.lag_epochs(), 0u);
    EXPECT_EQ(f.quote("A", 0).code, ServeError::kOk);
    EXPECT_EQ(f.sla(0).code, ServeError::kOk);
}

TEST_F(FollowerTest, ForeignJournalIsRefusedAndMissingJournalIsWaitedOn) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);

    // Missing journal: wait, do not throw.
    sim::RuntimeOptions absent = leader_options(3, "never-written.wal");
    FollowerOptions fopt;
    fopt.runtime = absent;
    Follower waiting(pool, tm, fopt);
    const FollowerPoll p = waiting.poll();
    EXPECT_EQ(p.status, FollowerStatus::kWaitingForJournal);
    EXPECT_FALSE(p.progressed);
    EXPECT_EQ(waiting.applied_epochs(), 0u);
    EXPECT_EQ(waiting.quote("A").code, ServeError::kNotServing);

    // Foreign journal (different seed -> different fingerprint):
    // refused, never applied.
    sim::RuntimeOptions theirs = leader_options(3, "foreign.wal");
    run_leader(pool, tm, theirs);
    sim::RuntimeOptions mine = theirs;
    mine.seed = 999;
    FollowerOptions gopt;
    gopt.runtime = mine;
    Follower foreign(pool, tm, gopt);
    EXPECT_EQ(foreign.poll().status, FollowerStatus::kForeign);
    EXPECT_EQ(foreign.applied_epochs(), 0u);
    EXPECT_EQ(foreign.hub()->current(), nullptr);
}

TEST_F(FollowerTest, FollowerNeverSweepsTheWritersTempFiles) {
    // Temp-file ownership is writer-only: a follower bootstrapping
    // next to a leader mid-snapshot-install must leave the leader's
    // `.tmp` (and old snapshot generations) untouched.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(4, "temps.wal");
    opt.snapshot_interval = 2;
    opt.compact_after_snapshot = false;
    run_leader(pool, tm, opt);

    // Plant what looks exactly like a stale install temp — from the
    // follower's seat it could equally be the writer's in-flight
    // rename source.
    const util::SnapshotStore writer_store(opt.journal_path, 2);
    const std::string temp_victim = writer_store.path_for(4);
    util::FaultyFile::make_stale_temp(temp_victim, "half-written snapshot bytes");
    const std::string temp_path = temp_victim + ".tmp";
    ASSERT_TRUE(std::filesystem::exists(temp_path));

    FollowerOptions fopt;
    fopt.runtime = opt;
    Follower f(pool, tm, fopt);
    std::map<std::uint64_t, std::string> seen;
    drain(f, 4, seen);
    EXPECT_EQ(f.applied_epochs(), 4u);

    // Bootstrap + tail + queries left the writer's artifacts alone.
    EXPECT_TRUE(std::filesystem::exists(temp_path));
    EXPECT_EQ(util::FaultyFile::slurp(temp_path), "half-written snapshot bytes");
    EXPECT_EQ(writer_store.list().size(), 2u);  // snapshots at 2 and 4 intact
}

TEST_F(FollowerTest, SupervisorRestartsCrashedFollowersIntoTheSharedHub) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(6, "crash.wal");
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);

    std::vector<sim::Fault> trace;
    trace.push_back({.kind = sim::FaultKind::kFollowerCrash, .start_epoch = 2});
    trace.push_back({.kind = sim::FaultKind::kFollowerCrash, .start_epoch = 4});
    // Leader-side kinds in the same trace are ignored by the replica
    // supervisor.
    trace.push_back({.kind = sim::FaultKind::kLinkCut, .start_epoch = 1});

    FollowerOptions fopt;
    fopt.runtime = opt;
    const FollowerRunResult res = run_follower_with_recovery(pool, tm, fopt, 6, trace);

    EXPECT_EQ(res.restarts, 2u);
    EXPECT_EQ(res.applied_epochs, 6u);
    EXPECT_GE(res.rebootstraps, 3u);  // one cold bootstrap per incarnation
    ASSERT_NE(res.final_view, nullptr);
    EXPECT_EQ(res.final_view->completed_epochs, 6u);
    EXPECT_EQ(encode_epoch_view(*res.final_view), leader.at(6));
    // The shared hub carried views across incarnations.
    ASSERT_NE(res.hub, nullptr);
    EXPECT_EQ(res.hub->current(), res.final_view);
}

TEST_F(FollowerTest, SupervisorSurvivesTailCorruptionUnderALiveCompactingWriter) {
    // kFollowerTailCorrupt flips a bit in the suffix the replica has
    // yet to consume. With a live writer compacting every 2 epochs,
    // the follower must stall on the damage (never serve it) until a
    // compaction rewrites the journal from clean state, then converge
    // bit-identically.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(10, "livecorrupt.wal");
    opt.snapshot_interval = 2;
    opt.restart.max_attempts = 64;  // wide stall window: real I/O pacing
    std::map<std::uint64_t, std::string> leader;

    std::vector<sim::Fault> trace;
    trace.push_back({.kind = sim::FaultKind::kFollowerTailCorrupt, .start_epoch = 2});

    FollowerOptions fopt;
    fopt.runtime = opt;
    FollowerRunResult res;
    std::thread supervisor(
        [&] { res = run_follower_with_recovery(pool, tm, fopt, 10, trace); });
    run_leader(pool, tm, opt, &leader);
    supervisor.join();

    EXPECT_EQ(res.applied_epochs, 10u);
    EXPECT_EQ(res.restarts, 0u);
    ASSERT_NE(res.final_view, nullptr);
    EXPECT_EQ(res.final_view->completed_epochs, 10u);
    EXPECT_EQ(encode_epoch_view(*res.final_view), leader.at(10));
}

TEST_F(FollowerTest, SupervisorExhaustsOnAJournalThatNeverAppears) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(3, "ghost.wal");
    opt.restart.max_attempts = 2;

    FollowerOptions fopt;
    fopt.runtime = opt;
    fopt.stall_poll_budget = 2;  // 2 x 2 = 4 no-progress polls, then give up
    EXPECT_THROW(run_follower_with_recovery(pool, tm, fopt, 3, {}),
                 sim::RecoveryExhausted);
}

TEST_F(FollowerTest, TailUntilPacesRetriesAndFailsStructurallyOnCorruption) {
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(4, "tailuntil.wal");
    std::map<std::uint64_t, std::string> leader;
    run_leader(pool, tm, opt, &leader);

    // Happy path: catches up and returns.
    FollowerOptions fopt;
    fopt.runtime = opt;
    Follower f(pool, tm, fopt);
    f.tail_until(4);
    EXPECT_EQ(f.applied_epochs(), 4u);
    EXPECT_EQ(encode_epoch_view(*f.current()), leader.at(4));

    // Structural failure: a bit flip that nothing ever clears burns
    // the whole stall window and throws RetryExhausted.
    const std::string damaged = journal("tailuntil-damaged.wal");
    util::FaultyFile::spit(damaged, util::FaultyFile::slurp(opt.journal_path));
    util::Journal::ScanResult scan;
    util::Journal::scan_file(damaged, scan);
    util::FaultyFile::flip_bit(damaged, scan.header_end + kFrame + 1, 2);

    sim::RuntimeOptions dopt = opt;
    dopt.journal_path = damaged;
    FollowerOptions gopt;
    gopt.runtime = dopt;
    gopt.stall_poll_budget = 2;
    gopt.tail_backoff.max_attempts = 6;
    gopt.tail_backoff.base_backoff_ms = 0.1;
    gopt.tail_backoff.max_backoff_ms = 0.5;
    Follower stuck(pool, tm, gopt);
    EXPECT_THROW(stuck.tail_until(4), util::RetryExhausted);
    EXPECT_EQ(stuck.status(), FollowerStatus::kCorrupt);
    EXPECT_EQ(stuck.applied_epochs(), 0u);  // record 0 damaged: nothing proven
}

TEST_F(FollowerTest, ConcurrentQueriesNeverSeeATornViewWhileTailingLive) {
    // The TSan target: one live writer, one follower tail thread, and
    // query threads hammering the follower's hub + staleness-checked
    // queries concurrently. Every observed view must be internally
    // consistent and epoch-monotone.
    const market::OfferPool pool = fx_.pool();
    const net::TrafficMatrix tm = fx_.demand(5.0);
    sim::RuntimeOptions opt = leader_options(6, "tsan.wal");
    opt.snapshot_interval = 2;

    FollowerOptions fopt;
    fopt.runtime = opt;
    fopt.tail_backoff.max_attempts = 64;  // outlast writer startup
    Follower f(pool, tm, fopt);

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&] {
            std::uint64_t last_epochs = 0;
            do {
                const auto view = f.hub()->current();
                if (view) {
                    if (view->epoch + 1 != view->completed_epochs ||
                        view->completed_epochs < last_epochs ||
                        view->trees.size() != pool.graph().node_count() ||
                        view->record.epoch != view->epoch) {
                        torn.fetch_add(1);
                    }
                    last_epochs = view->completed_epochs;
                }
                const auto q = f.quote("A");
                if (view && q.code != ServeError::kOk &&
                    q.code != ServeError::kStaleView) {
                    torn.fetch_add(1);
                }
                f.sla(2);
                f.path(net::NodeId{0u}, net::NodeId{1u});
                (void)f.lag_epochs();
                (void)f.status();
                reads.fetch_add(1);
            } while (!done.load(std::memory_order_acquire));
        });
    }

    std::thread tail([&] { f.tail_until(6); });
    run_leader(pool, tm, opt);
    tail.join();
    done.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();

    EXPECT_EQ(f.applied_epochs(), 6u);
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(reads.load(), 0u);
    const auto v = f.current();
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->completed_epochs, 6u);
}

}  // namespace
}  // namespace poc::serve
