// Shared graph fixtures for the net/market tests.
#pragma once

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace poc::test {

/// A triangle: 0-1 (cap 10, len 1), 1-2 (cap 10, len 1), 0-2 (cap 5, len 3).
inline net::Graph triangle() {
    net::Graph g;
    const auto n0 = g.add_node("n0");
    const auto n1 = g.add_node("n1");
    const auto n2 = g.add_node("n2");
    g.add_link(n0, n1, 10.0, 1.0);
    g.add_link(n1, n2, 10.0, 1.0);
    g.add_link(n0, n2, 5.0, 3.0);
    return g;
}

/// Classic max-flow textbook graph with known max flow 23 from 0 to 5.
inline net::Graph maxflow_classic() {
    net::Graph g;
    g.add_nodes(6);
    using net::NodeId;
    g.add_link(NodeId{0u}, NodeId{1u}, 16.0, 1.0);
    g.add_link(NodeId{0u}, NodeId{2u}, 13.0, 1.0);
    g.add_link(NodeId{1u}, NodeId{2u}, 10.0, 1.0);
    g.add_link(NodeId{1u}, NodeId{3u}, 12.0, 1.0);
    g.add_link(NodeId{2u}, NodeId{4u}, 14.0, 1.0);
    g.add_link(NodeId{3u}, NodeId{2u}, 9.0, 1.0);
    g.add_link(NodeId{3u}, NodeId{5u}, 20.0, 1.0);
    g.add_link(NodeId{4u}, NodeId{3u}, 7.0, 1.0);
    g.add_link(NodeId{4u}, NodeId{5u}, 4.0, 1.0);
    return g;
}

/// A ring of n nodes, all links capacity `cap`, length 1.
inline net::Graph ring(std::size_t n, double cap = 10.0) {
    net::Graph g;
    g.add_nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
        g.add_link(net::NodeId{i}, net::NodeId{(i + 1) % n}, cap, 1.0);
    }
    return g;
}

/// A path (chain) of n nodes.
inline net::Graph chain(std::size_t n, double cap = 10.0) {
    net::Graph g;
    g.add_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        g.add_link(net::NodeId{i}, net::NodeId{i + 1}, cap, 1.0);
    }
    return g;
}

/// Random connected graph: a spanning chain plus extra random links.
inline net::Graph random_connected(util::Rng& rng, std::size_t n, std::size_t extra_links,
                                   double max_cap = 20.0) {
    net::Graph g;
    g.add_nodes(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        g.add_link(net::NodeId{i}, net::NodeId{i + 1}, rng.uniform(1.0, max_cap),
                   rng.uniform(1.0, 10.0));
    }
    for (std::size_t e = 0; e < extra_links; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (a == b) b = (b + 1) % n;
        g.add_link(net::NodeId{a}, net::NodeId{b}, rng.uniform(1.0, max_cap),
                   rng.uniform(1.0, 10.0));
    }
    return g;
}

}  // namespace poc::test
