// Shared auction fixtures: tiny offer pools with known optima.
#pragma once

#include "market/bid.hpp"
#include "market/constraints.hpp"
#include "helpers/graphs.hpp"

namespace poc::test {

using util::Money;

/// Two routers, three parallel links (cap 10 each, length 1) owned by
/// BPs A ($100), B ($150), C ($250). Demand-driven auctions between
/// node 0 and node 1 have easily hand-computed outcomes.
struct ParallelLinksFixture {
    net::Graph graph;
    std::vector<market::BpBid> bids;
    market::VirtualLinkContract contract;

    ParallelLinksFixture() {
        const auto a = graph.add_node("left");
        const auto b = graph.add_node("right");
        const auto l0 = graph.add_link(a, b, 10.0, 1.0);
        const auto l1 = graph.add_link(a, b, 10.0, 1.0);
        const auto l2 = graph.add_link(a, b, 10.0, 1.0);
        market::BpBid bid_a(market::BpId{0u}, "A");
        bid_a.offer(l0, Money::from_dollars(std::int64_t{100}));
        market::BpBid bid_b(market::BpId{1u}, "B");
        bid_b.offer(l1, Money::from_dollars(std::int64_t{150}));
        market::BpBid bid_c(market::BpId{2u}, "C");
        bid_c.offer(l2, Money::from_dollars(std::int64_t{250}));
        bids = {std::move(bid_a), std::move(bid_b), std::move(bid_c)};
    }

    market::OfferPool pool() const {
        return market::OfferPool(bids, contract, graph);
    }

    net::TrafficMatrix demand(double gbps) const {
        return {{net::NodeId{0u}, net::NodeId{1u}, gbps}};
    }
};

/// Random small instance for property tests: `links` parallel+serial
/// links over a 3-node triangle-ish multigraph, split among 3 BPs with
/// random prices. Small enough for the exact solver.
struct RandomSmallInstance {
    net::Graph graph;
    std::vector<market::BpBid> bids;
    market::VirtualLinkContract contract;
    net::TrafficMatrix tm;

    explicit RandomSmallInstance(std::uint64_t seed, std::size_t bp_count = 3) {
        util::Rng rng(seed);
        graph.add_nodes(3);
        for (std::size_t b = 0; b < bp_count; ++b) {
            bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
        }
        // 6-9 links, random endpoints among the 3 nodes, random owner.
        const std::size_t link_count = 6 + static_cast<std::size_t>(rng.uniform_int(
                                               std::uint64_t{4}));
        for (std::size_t i = 0; i < link_count; ++i) {
            const auto u = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}));
            const std::size_t v = (u + 1 + static_cast<std::size_t>(
                                               rng.uniform_int(std::uint64_t{2}))) % 3;
            const net::LinkId l = graph.add_link(net::NodeId{u}, net::NodeId{v},
                                                 rng.uniform(5.0, 15.0), rng.uniform(1.0, 4.0));
            const auto owner = static_cast<std::size_t>(
                rng.uniform_int(std::uint64_t{bp_count}));
            bids[owner].offer(l, Money::from_dollars(rng.uniform(50.0, 500.0)));
        }
        tm = {{net::NodeId{0u}, net::NodeId{1u}, rng.uniform(2.0, 6.0)},
              {net::NodeId{1u}, net::NodeId{2u}, rng.uniform(2.0, 6.0)}};
    }

    market::OfferPool pool() const { return market::OfferPool(bids, contract, graph); }
};

}  // namespace poc::test
