// Incremental re-clearing identity (DESIGN.md §7): warm-started
// auctions driven by market::DeltaReclearState, and repair-served
// path caches, must be bit-identical to cold solves everywhere the
// sim layers can take the incremental path — randomized flip walks
// across thread counts and cache modes, the k-link cutover boundary,
// chaos off-cycle re-auctions, and the journaled epoch runtime.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "market/delta_reclear.hpp"
#include "market/vcg.hpp"
#include "sim/chaos.hpp"
#include "sim/runtime.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace poc {
namespace {

using util::Money;

/// Byte-exact comparison key for an optional auction result, with the
/// work-accounting diagnostics scrubbed (they legitimately differ
/// between warm and cold engines; bit-identity covers the economic
/// outcome — same convention as test_runtime.cpp).
std::string auction_bytes(const std::optional<market::AuctionResult>& a) {
    util::BinaryWriter w;
    w.boolean(a.has_value());
    if (a) {
        market::AuctionResult scrubbed = *a;
        scrubbed.oracle_queries = 0;
        scrubbed.oracle_cache_hits = 0;
        scrubbed.solve_cache_hits = 0;
        market::write_auction_result(w, scrubbed);
    }
    return w.bytes();
}

/// A parallel-rich market: 6 routers, 18 links (doubled ring plus
/// doubled chords) split across 3 BPs, one of which posts volume
/// discounts so the per-link pricing digests exercise tier schedules.
/// Epoch pools are cut from the master offer list by a down-mask, so
/// consecutive pools differ by exactly the flipped links.
struct DeltaMarketFixture {
    net::Graph graph;
    std::vector<net::LinkId> links;
    std::vector<std::size_t> owner;      // link index -> BP index
    std::vector<Money> price;            // link index -> base price
    market::VirtualLinkContract contract;
    net::TrafficMatrix tm;

    DeltaMarketFixture() {
        graph.add_nodes(6);
        util::Rng rng(4242);
        const auto add = [&](std::size_t u, std::size_t v) {
            const net::LinkId l = graph.add_link(net::NodeId{u}, net::NodeId{v}, 10.0,
                                                 rng.uniform(1.0, 4.0));
            links.push_back(l);
            owner.push_back(links.size() % 3);
            price.push_back(Money::from_dollars(rng.uniform(80.0, 400.0)));
        };
        for (std::size_t i = 0; i < 6; ++i) {
            add(i, (i + 1) % 6);
            add(i, (i + 1) % 6);
        }
        for (std::size_t i = 0; i < 3; ++i) {
            add(i, i + 3);
            add(i, i + 3);
        }
        tm = {{net::NodeId{0u}, net::NodeId{3u}, 2.0},
              {net::NodeId{1u}, net::NodeId{5u}, 3.0},
              {net::NodeId{4u}, net::NodeId{2u}, 2.5}};
    }

    /// Offer every link whose down-flag is false.
    market::OfferPool pool(const std::vector<bool>& down) const {
        std::vector<market::BpBid> bids;
        for (std::size_t b = 0; b < 3; ++b) {
            bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
        }
        bids[0].add_discount({3, 0.05});
        bids[0].add_discount({6, 0.10});
        for (std::size_t i = 0; i < links.size(); ++i) {
            if (!down[i]) bids[owner[i]].offer(links[i], price[i]);
        }
        return market::OfferPool(bids, contract, graph);
    }

    market::AcceptabilityOracle oracle(const net::TrafficMatrix& traffic) const {
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        return market::AcceptabilityOracle(graph, traffic, market::ConstraintKind::kLoad,
                                           oopt);
    }

    core::ProvisioningRequest request() const {
        core::ProvisioningRequest req;
        req.constraint = market::ConstraintKind::kLoad;
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        req.oracle = oopt;
        return req;
    }
};

// --- Satellite: randomized epoch walks, 1..k flips per step, across
// threads x cache, with a mid-walk demand change forcing one cold
// fallback. Warm bytes == cold bytes every epoch, and every engine
// config reproduces the same byte stream. ---
TEST(DeltaIdentity, RandomFlipWalkMatchesColdAcrossThreadsAndCache) {
    const DeltaMarketFixture fx;
    constexpr std::size_t kEpochs = 10;

    std::vector<std::string> reference;  // warm bytes from the first config
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        for (const bool cache : {false, true}) {
            const std::string tag =
                "threads=" + std::to_string(threads) + " cache=" + std::to_string(cache);
            // Same seed per config: every config walks the same pools.
            util::Rng rng(777);
            std::vector<bool> down(fx.links.size(), false);
            net::TrafficMatrix tm = fx.tm;
            market::DeltaReclearState state;

            std::vector<std::string> walk;
            for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
                const std::size_t flips = 1 + static_cast<std::size_t>(
                                                  rng.uniform_int(std::uint64_t{8}));
                for (const std::size_t i :
                     rng.sample_without_replacement(fx.links.size(), flips)) {
                    down[i] = !down[i];
                }
                if (epoch == 5) {
                    for (auto& d : tm) d.gbps *= 1.25;  // context change -> cold
                }
                const market::OfferPool pool = fx.pool(down);
                const market::AcceptabilityOracle oracle = fx.oracle(tm);

                market::AuctionOptions warm_opt;
                warm_opt.threads = threads;
                warm_opt.parallel_min_pivots = 1;
                warm_opt.cache = cache;
                warm_opt.delta = &state;
                market::AuctionOptions cold_opt = warm_opt;
                cold_opt.delta = nullptr;

                const auto warm = market::run_auction(pool, oracle, warm_opt);
                const auto cold = market::run_auction(pool, oracle, cold_opt);
                EXPECT_EQ(auction_bytes(warm), auction_bytes(cold))
                    << tag << " epoch " << epoch;
                walk.push_back(auction_bytes(warm));
            }

            const auto st = state.stats();
            EXPECT_EQ(st.runs, kEpochs) << tag;
            EXPECT_GE(st.warm, 1u) << tag;       // small deltas reuse the memo
            EXPECT_GE(st.cold, 2u) << tag;       // the prime + the demand change
            EXPECT_EQ(st.warm + st.cold, st.runs) << tag;

            if (reference.empty()) {
                reference = walk;
            } else {
                EXPECT_EQ(walk, reference) << tag;
            }
        }
    }
}

// --- Satellite: the k-link cutover. Deltas of exactly k-1, k, and
// k+1 links against a pinned threshold: warm at k-1 and k, cold at
// k+1, bit-identical to a cold solve in all three. Also pins the
// shipped default so a drive-by change shows up here. ---
TEST(DeltaIdentity, CutoverBoundaryWarmAtThresholdColdBeyond) {
    EXPECT_EQ(market::AuctionOptions{}.delta_max_links, 8u);

    const DeltaMarketFixture fx;
    constexpr std::size_t kThreshold = 4;
    for (const std::size_t delta : {kThreshold - 1, kThreshold, kThreshold + 1}) {
        market::DeltaReclearState state;
        market::AuctionOptions opt;
        opt.delta = &state;
        opt.delta_max_links = kThreshold;

        const std::vector<bool> all_up(fx.links.size(), false);
        const market::AcceptabilityOracle oracle = fx.oracle(fx.tm);
        (void)market::run_auction(fx.pool(all_up), oracle, opt);  // cold prime
        ASSERT_EQ(state.stats().cold, 1u);

        std::vector<bool> down = all_up;
        for (std::size_t i = 0; i < delta; ++i) down[i] = true;
        const market::OfferPool pool = fx.pool(down);
        const auto warm = market::run_auction(pool, oracle, opt);

        market::AuctionOptions cold_opt;
        const auto cold = market::run_auction(pool, oracle, cold_opt);
        EXPECT_EQ(auction_bytes(warm), auction_bytes(cold)) << "delta " << delta;

        const auto st = state.stats();
        EXPECT_EQ(st.runs, 2u) << "delta " << delta;
        if (delta <= kThreshold) {
            EXPECT_EQ(st.warm, 1u) << "delta " << delta;
            EXPECT_EQ(st.delta_links, delta) << "delta " << delta;
        } else {
            EXPECT_EQ(st.warm, 0u) << "delta " << delta;
            EXPECT_EQ(st.cold, 2u) << "delta " << delta;
        }
    }
}

// --- Satellite: the chaos engine's off-cycle re-auction path. A full
// fault trace run with warm re-clearing and tree repair on must
// reproduce the cold run's SLA series and money flows exactly. ---
TEST(DeltaIdentity, ChaosReauctionPathIdenticalWarmVersusCold) {
    const DeltaMarketFixture fx;
    const std::vector<bool> all_up(fx.links.size(), false);
    const market::OfferPool pool = fx.pool(all_up);

    const auto srlgs = sim::shared_risk_groups(pool.graph());
    sim::FaultInjectorOptions fopt;
    fopt.epochs = 6;
    fopt.intensity = 1.5;
    fopt.seed = 99;
    const auto trace = sim::draw_fault_trace(pool, srlgs, fopt);
    ASSERT_FALSE(trace.empty());

    sim::ChaosOptions incremental;
    incremental.epochs = 6;
    incremental.request = fx.request();
    incremental.use_path_cache = true;
    incremental.path_cache_repair_budget = 8;
    incremental.use_delta_reclear = true;

    sim::ChaosOptions cold = incremental;
    cold.use_path_cache = false;
    cold.path_cache_repair_budget = 0;
    cold.use_delta_reclear = false;

    const sim::ChaosOutcome a = sim::run_chaos(pool, fx.tm, trace, incremental);
    const sim::ChaosOutcome b = sim::run_chaos(pool, fx.tm, trace, cold);

    ASSERT_TRUE(a.provisioned);
    ASSERT_EQ(a.provisioned, b.provisioned);
    // The trace must actually exercise the off-cycle re-auction path,
    // or this test proves nothing about warm re-clearing under chaos.
    ASSERT_GE(a.reauction_count, 1u);
    ASSERT_EQ(a.sla.size(), b.sla.size());
    for (std::size_t i = 0; i < a.sla.size(); ++i) {
        const sim::SlaRecord& ra = a.sla[i];
        const sim::SlaRecord& rb = b.sla[i];
        EXPECT_EQ(ra.offered_gbps, rb.offered_gbps) << "epoch " << i;
        EXPECT_EQ(ra.delivered_gbps, rb.delivered_gbps) << "epoch " << i;
        EXPECT_EQ(ra.delivered_fraction, rb.delivered_fraction) << "epoch " << i;
        EXPECT_EQ(ra.stretch, rb.stretch) << "epoch " << i;
        EXPECT_EQ(ra.virtual_share, rb.virtual_share) << "epoch " << i;
        EXPECT_EQ(ra.links_down, rb.links_down) << "epoch " << i;
        EXPECT_EQ(ra.links_degraded, rb.links_degraded) << "epoch " << i;
        EXPECT_EQ(ra.emergency_virtual_cost, rb.emergency_virtual_cost) << "epoch " << i;
        EXPECT_EQ(ra.outlay, rb.outlay) << "epoch " << i;
        EXPECT_EQ(ra.reauction_triggered, rb.reauction_triggered) << "epoch " << i;
        EXPECT_EQ(ra.degraded_mode, rb.degraded_mode) << "epoch " << i;
    }
    EXPECT_EQ(a.reauction_count, b.reauction_count);
    EXPECT_EQ(a.failed_reauctions, b.failed_reauctions);
    EXPECT_EQ(a.min_delivered_fraction, b.min_delivered_fraction);
    EXPECT_EQ(a.mean_delivered_fraction, b.mean_delivered_fraction);
    EXPECT_EQ(a.total_undelivered_gbps, b.total_undelivered_gbps);
    EXPECT_EQ(a.epochs_to_restore, b.epochs_to_restore);
    EXPECT_EQ(a.total_recovery_cost, b.total_recovery_cost);
    EXPECT_EQ(a.baseline_outlay, b.baseline_outlay);
}

// --- Satellite: scripted scenarios (recalls + failures are exactly
// the small offer-set deltas the warm path targets). ---
TEST(DeltaIdentity, ScenarioOutcomesIdenticalWarmVersusCold) {
    const DeltaMarketFixture fx;
    const std::vector<bool> all_up(fx.links.size(), false);
    const market::OfferPool pool = fx.pool(all_up);

    std::vector<sim::ScenarioEvent> events(3);
    events[0].kind = sim::ScenarioEvent::Kind::kLinkFailure;
    events[0].epoch = 1;
    events[0].count = 2;
    events[1].kind = sim::ScenarioEvent::Kind::kBpRecall;
    events[1].epoch = 2;
    events[1].bp = 1;
    events[1].fraction = 0.3;
    events[2].kind = sim::ScenarioEvent::Kind::kLinkFailure;
    events[2].epoch = 3;
    events[2].count = 1;

    sim::ScenarioOptions incremental;
    incremental.epochs = 4;
    incremental.request = fx.request();
    sim::ScenarioOptions cold = incremental;
    cold.use_path_cache = false;
    cold.path_cache_repair_budget = 0;
    cold.use_delta_reclear = false;

    const auto a = sim::run_scenario(pool, fx.tm, events, incremental);
    const auto b = sim::run_scenario(pool, fx.tm, events, cold);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].provisioned, b[i].provisioned) << "epoch " << i;
        EXPECT_EQ(a[i].outlay, b[i].outlay) << "epoch " << i;
        EXPECT_EQ(a[i].selected_links, b[i].selected_links) << "epoch " << i;
        EXPECT_EQ(a[i].mean_pob, b[i].mean_pob) << "epoch " << i;
        EXPECT_EQ(a[i].flows.total_routed_gbps, b[i].flows.total_routed_gbps)
            << "epoch " << i;
        EXPECT_EQ(a[i].flows.max_utilization, b[i].flows.max_utilization) << "epoch " << i;
        EXPECT_EQ(a[i].flows.stretch, b[i].flows.stretch) << "epoch " << i;
    }
}

// --- Satellite: the journaled epoch runtime. Warm re-clearing must
// leave auction bytes, the ledger, and the RNG stream bit-identical
// to the cold engine, and flipping the knob must not invalidate an
// existing journal (it is an engine knob, not scenario meta). ---
TEST(DeltaIdentity, JournaledRuntimeIdenticalAndResumableAcrossKnobFlip) {
    const DeltaMarketFixture fx;
    const std::vector<bool> all_up(fx.links.size(), false);
    const market::OfferPool pool = fx.pool(all_up);

    const auto dir = std::filesystem::temp_directory_path() / "poc_delta_identity_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    sim::RuntimeOptions warm_opt;
    warm_opt.epochs = 4;
    warm_opt.seed = 11;
    warm_opt.demand_jitter = 0.0;  // stable demand: epochs 1..3 re-clear warm
    warm_opt.request = fx.request();
    warm_opt.journal_path = (dir / "delta.journal").string();
    warm_opt.use_delta_reclear = true;

    sim::RuntimeOptions cold_opt = warm_opt;
    cold_opt.journal_path.clear();
    cold_opt.use_delta_reclear = false;
    cold_opt.use_path_cache = false;
    cold_opt.path_cache_repair_budget = 0;

    const auto warm = sim::EpochRuntime(pool, fx.tm, warm_opt).run();
    const auto cold = sim::EpochRuntime(pool, fx.tm, cold_opt).run();

    EXPECT_EQ(warm.ledger.transfers(), cold.ledger.transfers());
    EXPECT_TRUE(warm.final_rng == cold.final_rng);
    ASSERT_EQ(warm.auctions.size(), cold.auctions.size());
    for (std::size_t i = 0; i < warm.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(warm.auctions[i]), auction_bytes(cold.auctions[i]))
            << "epoch " << i;
    }

    // Replay the warm run's journal with the knob flipped off: same
    // meta fingerprint, full replay, identical outcome.
    sim::RuntimeOptions replay_opt = warm_opt;
    replay_opt.use_delta_reclear = false;
    const auto replayed = sim::EpochRuntime(pool, fx.tm, replay_opt).run();
    EXPECT_EQ(replayed.replayed_epochs, warm_opt.epochs);
    EXPECT_EQ(replayed.ledger.transfers(), warm.ledger.transfers());
    ASSERT_EQ(replayed.auctions.size(), warm.auctions.size());
    for (std::size_t i = 0; i < replayed.auctions.size(); ++i) {
        EXPECT_EQ(auction_bytes(replayed.auctions[i]), auction_bytes(warm.auctions[i]))
            << "epoch " << i;
    }

    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace poc
