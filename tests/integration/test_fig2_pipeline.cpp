// Reduced-scale Figure 2 pipeline: synthetic BP networks -> POC
// topology -> pricing -> VCG auction under all three constraints.
// Asserts the structural properties the paper reports, at a scale that
// runs in seconds (the full-scale run lives in bench/fig2_auction).
#include <gtest/gtest.h>

#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "topo/traffic.hpp"

namespace poc {
namespace {

struct Fig2Fixture {
    topo::PocTopology topology;
    market::OfferPool pool;
    net::TrafficMatrix tm;

    Fig2Fixture() : topology(make_topology()), pool(make_pool(topology)), tm(make_tm(topology)) {}

    static topo::PocTopology make_topology() {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = 6;
        bopt.min_cities = 6;
        bopt.max_cities = 14;
        bopt.seed = 31;
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        return topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    }

    static market::OfferPool make_pool(topo::PocTopology& topology) {
        market::PricingOptions pricing;
        pricing.seed = 17;
        market::VirtualLinkOptions vopt;
        vopt.attach_count = 3;
        return market::make_offer_pool(topology, pricing, vopt);
    }

    static net::TrafficMatrix make_tm(const topo::PocTopology& topology) {
        topo::GravityOptions gopt;
        gopt.total_gbps = 400.0;
        return topo::aggregate_top_n(topo::gravity_traffic(topology, gopt), 25);
    }
};

std::optional<market::AuctionResult> run_constraint(const Fig2Fixture& fx,
                                                    market::ConstraintKind kind) {
    market::OracleOptions oopt;
    oopt.fidelity = market::OracleFidelity::kFast;
    const market::AcceptabilityOracle oracle(fx.pool.graph(), fx.tm, kind, oopt);
    return market::run_auction(fx.pool, oracle);
}

TEST(Fig2Pipeline, AllThreeConstraintsProvisionable) {
    const Fig2Fixture fx;
    for (const auto kind :
         {market::ConstraintKind::kLoad, market::ConstraintKind::kSingleFailure,
          market::ConstraintKind::kPerPairFailure}) {
        const auto result = run_constraint(fx, kind);
        ASSERT_TRUE(result.has_value()) << market::constraint_name(kind);
        EXPECT_GT(result->selection.links.size(), 0u);
        EXPECT_GT(result->selection.cost, util::Money{});
    }
}

TEST(Fig2Pipeline, PaymentsIndividuallyRational) {
    const Fig2Fixture fx;
    const auto result = run_constraint(fx, market::ConstraintKind::kLoad);
    ASSERT_TRUE(result.has_value());
    for (const market::BpOutcome& out : result->outcomes) {
        EXPECT_GE(out.payment, out.bid_cost) << out.name;
        EXPECT_GE(out.pob, 0.0) << out.name;
    }
}

TEST(Fig2Pipeline, ResilienceCostsAtLeastPlainLoad) {
    // Stricter constraints need at least as much (usually more) budget.
    // Heuristic noise can nudge costs a little, so allow 2% slack.
    const Fig2Fixture fx;
    const auto load = run_constraint(fx, market::ConstraintKind::kLoad);
    const auto failure = run_constraint(fx, market::ConstraintKind::kSingleFailure);
    ASSERT_TRUE(load && failure);
    EXPECT_GE(failure->selection.cost.dollars(), load->selection.cost.dollars() * 0.98);
    EXPECT_GE(failure->selection.links.size(), load->selection.links.size());
}

TEST(Fig2Pipeline, SelectedSetPassesExactValidation) {
    // The kFast search result must satisfy the exact oracle (the bench
    // validates its final selection the same way).
    const Fig2Fixture fx;
    const auto result = run_constraint(fx, market::ConstraintKind::kLoad);
    ASSERT_TRUE(result.has_value());
    const market::AcceptabilityOracle exact(fx.pool.graph(), fx.tm,
                                            market::ConstraintKind::kLoad);
    EXPECT_TRUE(exact.accepts(net::Subgraph(fx.pool.graph(), result->selection.links)));
}

TEST(Fig2Pipeline, PobVariesAcrossBps) {
    // The paper highlights "the high variation in the PoB" - margins
    // should not be uniform across winners.
    const Fig2Fixture fx;
    const auto result = run_constraint(fx, market::ConstraintKind::kLoad);
    ASSERT_TRUE(result.has_value());
    double min_pob = 1e9;
    double max_pob = -1e9;
    for (const market::BpOutcome& out : result->outcomes) {
        if (out.selected_links.empty()) continue;
        min_pob = std::min(min_pob, out.pob);
        max_pob = std::max(max_pob, out.pob);
    }
    EXPECT_GT(max_pob, min_pob);
}

TEST(Fig2Pipeline, OutlayDecomposition) {
    const Fig2Fixture fx;
    const auto result = run_constraint(fx, market::ConstraintKind::kLoad);
    ASSERT_TRUE(result.has_value());
    util::Money payments = result->virtual_cost;
    for (const market::BpOutcome& out : result->outcomes) payments += out.payment;
    EXPECT_EQ(payments, result->total_outlay);
}

}  // namespace
}  // namespace poc
