// End-to-end Figure 1 simulation at test scale: generated topology,
// auction-provisioned backbone, entity roster, flow simulation, billing
// epoch, and a multi-epoch scenario on top.
#include <gtest/gtest.h>

#include "core/billing.hpp"
#include "core/flow_sim.hpp"
#include "market/pricing.hpp"
#include "sim/scenario.hpp"
#include "topo/traffic.hpp"

namespace poc {
namespace {

using util::operator""_usd;

struct EndToEndFixture {
    topo::PocTopology topology;
    market::OfferPool pool;
    core::EntityRoster roster;
    net::TrafficMatrix tm;

    EndToEndFixture() : topology(make_topology()), pool(make_pool(topology)) {
        // LMPs at the first three routers, one direct CSP at the fourth.
        roster.lmps = {
            {"MetroNet", net::NodeId{0u}, 800'000.0, 55_usd},
            {"RuralLink", net::NodeId{1u}, 200'000.0, 60_usd},
            {"CityFiber", net::NodeId{2u}, 500'000.0, 45_usd},
        };
        core::CspInfo stream;
        stream.name = "StreamCo";
        stream.attachment = core::CspAttachment::kDirectToPoc;
        stream.poc_router = net::NodeId{3u};
        stream.subscription_price = 14_usd;
        stream.take_rate = 0.35;
        stream.gbps_per_1k_subscribers = 0.02;
        core::CspInfo indie;
        indie.name = "IndieCo";
        indie.attachment = core::CspAttachment::kViaLmp;
        indie.via_lmp = core::LmpId{0u};
        indie.subscription_price = 6_usd;
        indie.take_rate = 0.08;
        indie.gbps_per_1k_subscribers = 0.005;
        roster.csps = {stream, indie};
        roster.external_isps = {{"GlobalTransit", {net::NodeId{0u}, net::NodeId{1u}}, 2000_usd}};
        tm = core::roster_traffic(roster);
    }

    static topo::PocTopology make_topology() {
        topo::BpGeneratorOptions bopt;
        bopt.bp_count = 6;
        bopt.min_cities = 6;
        bopt.max_cities = 14;
        bopt.seed = 47;
        topo::PocTopologyOptions popt;
        popt.min_colocated_bps = 3;
        return topo::build_poc_topology(topo::generate_bp_networks(bopt), popt);
    }

    static market::OfferPool make_pool(topo::PocTopology& topology) {
        market::VirtualLinkOptions vopt;
        vopt.attach_count = 3;
        return market::make_offer_pool(topology, {}, vopt);
    }

    core::ProvisioningRequest request() const {
        core::ProvisioningRequest req;
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        req.oracle = oopt;
        return req;
    }
};

TEST(EndToEnd, ProvisionRouteBill) {
    EndToEndFixture fx;
    const auto backbone = core::provision(fx.pool, fx.tm, fx.request());
    ASSERT_TRUE(backbone.has_value());

    // Traffic flows over the provisioned backbone.
    const core::FlowReport flows = core::simulate_flows(backbone->selected, fx.tm);
    EXPECT_TRUE(flows.fully_routed);
    EXPECT_LE(flows.max_utilization, 1.0 + 1e-6);

    // Billing: exact conservation and break-even.
    const core::EpochReport epoch = core::run_billing_epoch(*backbone, fx.roster, fx.pool);
    EXPECT_TRUE(epoch.ledger.conserves());
    EXPECT_EQ(epoch.ledger.poc_net(), util::Money{});
    EXPECT_GT(epoch.poc_outlay, util::Money{});

    // Section 3.2 flow directions: BPs and ISPs end positive, the POC
    // at zero, customers negative.
    EXPECT_LT(epoch.ledger.balance(core::Party{core::PartyKind::kCustomers, 0}),
              util::Money{});
    EXPECT_GT(epoch.ledger.total(core::TransferKind::kLinkLease), util::Money{});
}

TEST(EndToEnd, ScenarioOverProvisionedMarket) {
    EndToEndFixture fx;
    sim::ScenarioOptions sopt;
    sopt.epochs = 3;
    sopt.request = fx.request();
    std::vector<sim::ScenarioEvent> events(2);
    events[0].kind = sim::ScenarioEvent::Kind::kDemandGrowth;
    events[0].epoch = 1;
    events[0].factor = 1.5;
    events[1].kind = sim::ScenarioEvent::Kind::kBpRecall;
    events[1].epoch = 2;
    events[1].bp = 0;
    events[1].fraction = 0.5;
    const auto outcomes = sim::run_scenario(fx.pool, fx.tm, events, sopt);
    ASSERT_EQ(outcomes.size(), 3u);
    for (const auto& o : outcomes) {
        EXPECT_TRUE(o.provisioned) << "epoch " << o.epoch;
        EXPECT_TRUE(o.flows.fully_routed) << "epoch " << o.epoch;
    }
    EXPECT_NEAR(outcomes[1].total_demand_gbps, outcomes[0].total_demand_gbps * 1.5, 1e-6);
    EXPECT_LT(outcomes[2].offered_links, outcomes[1].offered_links);
}

TEST(EndToEnd, RosterValidatedAgainstProvisionedGraph) {
    EndToEndFixture fx;
    EXPECT_NO_THROW(fx.roster.validate(fx.pool.graph()));
}

}  // namespace
}  // namespace poc
