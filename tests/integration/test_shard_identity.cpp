// Sharded data-plane identity (DESIGN.md §9): with the kPrimary
// routing mode, every engine knob of the sharded flow engine — shard
// count, thread count, path-cache mode — must leave chaos walks,
// scripted scenarios, and the journaled epoch runtime bit-identical.
// Shard count is an engine knob and therefore excluded from the
// journal meta fingerprint (a journaled run resumes under any shard
// count); flow_routing is semantic and fingerprinted, so flipping it
// against an existing journal must be refused.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "sim/chaos.hpp"
#include "sim/runtime.hpp"
#include "sim/scenario.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace poc {
namespace {

using util::Money;

/// Same parallel-rich market as test_delta_identity.cpp: 6 routers,
/// 18 links across 3 BPs, pools cut from a down-mask.
struct ShardMarketFixture {
    net::Graph graph;
    std::vector<net::LinkId> links;
    std::vector<std::size_t> owner;
    std::vector<Money> price;
    market::VirtualLinkContract contract;
    net::TrafficMatrix tm;

    ShardMarketFixture() {
        graph.add_nodes(6);
        util::Rng rng(2424);
        const auto add = [&](std::size_t u, std::size_t v) {
            const net::LinkId l = graph.add_link(net::NodeId{u}, net::NodeId{v}, 10.0,
                                                 rng.uniform(1.0, 4.0));
            links.push_back(l);
            owner.push_back(links.size() % 3);
            price.push_back(Money::from_dollars(rng.uniform(80.0, 400.0)));
        };
        for (std::size_t i = 0; i < 6; ++i) {
            add(i, (i + 1) % 6);
            add(i, (i + 1) % 6);
        }
        for (std::size_t i = 0; i < 3; ++i) {
            add(i, i + 3);
            add(i, i + 3);
        }
        // Several demands per source so the SoA blocks are non-trivial.
        tm = {{net::NodeId{0u}, net::NodeId{3u}, 2.0},
              {net::NodeId{0u}, net::NodeId{4u}, 1.5},
              {net::NodeId{1u}, net::NodeId{5u}, 3.0},
              {net::NodeId{2u}, net::NodeId{5u}, 1.0},
              {net::NodeId{4u}, net::NodeId{2u}, 2.5}};
    }

    market::OfferPool pool() const {
        std::vector<market::BpBid> bids;
        for (std::size_t b = 0; b < 3; ++b) {
            bids.emplace_back(market::BpId{b}, "BP" + std::to_string(b + 1));
        }
        for (std::size_t i = 0; i < links.size(); ++i) {
            bids[owner[i]].offer(links[i], price[i]);
        }
        return market::OfferPool(bids, contract, graph);
    }

    core::ProvisioningRequest request() const {
        core::ProvisioningRequest req;
        req.constraint = market::ConstraintKind::kLoad;
        market::OracleOptions oopt;
        oopt.fidelity = market::OracleFidelity::kFast;
        req.oracle = oopt;
        return req;
    }
};

void expect_sla_identical(const std::vector<sim::SlaRecord>& a,
                          const std::vector<sim::SlaRecord>& b, const std::string& tag) {
    ASSERT_EQ(a.size(), b.size()) << tag;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].offered_gbps, b[i].offered_gbps) << tag << " epoch " << i;
        EXPECT_EQ(a[i].delivered_gbps, b[i].delivered_gbps) << tag << " epoch " << i;
        EXPECT_EQ(a[i].delivered_fraction, b[i].delivered_fraction)
            << tag << " epoch " << i;
        EXPECT_EQ(a[i].stretch, b[i].stretch) << tag << " epoch " << i;
        EXPECT_EQ(a[i].virtual_share, b[i].virtual_share) << tag << " epoch " << i;
        EXPECT_EQ(a[i].links_down, b[i].links_down) << tag << " epoch " << i;
        EXPECT_EQ(a[i].outlay, b[i].outlay) << tag << " epoch " << i;
        EXPECT_EQ(a[i].reauction_triggered, b[i].reauction_triggered)
            << tag << " epoch " << i;
        EXPECT_EQ(a[i].degraded_mode, b[i].degraded_mode) << tag << " epoch " << i;
    }
}

// --- Chaos fault walks: one fault trace, kPrimary routing, every
// shard/thread/cache config reproduces the same SLA series and money
// flows bit for bit. ---
TEST(ShardIdentity, ChaosFaultWalkIdenticalAcrossShardConfigs) {
    const ShardMarketFixture fx;
    const market::OfferPool pool = fx.pool();

    const auto srlgs = sim::shared_risk_groups(pool.graph());
    sim::FaultInjectorOptions fopt;
    fopt.epochs = 6;
    fopt.intensity = 1.5;
    fopt.seed = 99;
    const auto trace = sim::draw_fault_trace(pool, srlgs, fopt);
    ASSERT_FALSE(trace.empty());

    sim::ChaosOptions base;
    base.epochs = 6;
    base.request = fx.request();
    base.flow_routing = core::FlowRouting::kPrimary;

    sim::ChaosOutcome reference;
    bool have_reference = false;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                     std::size_t{8}}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
            for (const bool cache : {false, true}) {
                const std::string tag = "shards=" + std::to_string(shards) +
                                        " threads=" + std::to_string(threads) +
                                        " cache=" + std::to_string(cache);
                sim::ChaosOptions opt = base;
                opt.flow_shards = shards;
                opt.flow_threads = threads;
                opt.use_path_cache = cache;
                opt.path_cache_repair_budget = cache ? 8 : 0;
                const sim::ChaosOutcome got = sim::run_chaos(pool, fx.tm, trace, opt);
                ASSERT_TRUE(got.provisioned) << tag;
                if (!have_reference) {
                    reference = got;
                    have_reference = true;
                    continue;
                }
                expect_sla_identical(reference.sla, got.sla, tag);
                EXPECT_EQ(reference.reauction_count, got.reauction_count) << tag;
                EXPECT_EQ(reference.min_delivered_fraction, got.min_delivered_fraction)
                    << tag;
                EXPECT_EQ(reference.total_undelivered_gbps, got.total_undelivered_gbps)
                    << tag;
                EXPECT_EQ(reference.total_recovery_cost, got.total_recovery_cost) << tag;
            }
        }
    }
    // Under primary-path routing the routed path IS the shortest path.
    for (const sim::SlaRecord& r : reference.sla) EXPECT_EQ(r.stretch, 1.0);
}

// --- Scripted scenarios: failures shrink the active set mid-run; the
// flow reports stay identical across shard counts. ---
TEST(ShardIdentity, ScenarioOutcomesIdenticalAcrossShardConfigs) {
    const ShardMarketFixture fx;
    const market::OfferPool pool = fx.pool();

    std::vector<sim::ScenarioEvent> events(2);
    events[0].kind = sim::ScenarioEvent::Kind::kLinkFailure;
    events[0].epoch = 1;
    events[0].count = 2;
    events[1].kind = sim::ScenarioEvent::Kind::kLinkFailure;
    events[1].epoch = 2;
    events[1].count = 1;

    sim::ScenarioOptions base;
    base.epochs = 4;
    base.request = fx.request();
    base.flow_routing = core::FlowRouting::kPrimary;

    const auto reference = sim::run_scenario(pool, fx.tm, events, base);
    for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
        sim::ScenarioOptions opt = base;
        opt.flow_shards = shards;
        opt.flow_threads = 2;
        const auto got = sim::run_scenario(pool, fx.tm, events, opt);
        ASSERT_EQ(reference.size(), got.size()) << "shards " << shards;
        for (std::size_t i = 0; i < reference.size(); ++i) {
            const std::string tag = "shards " + std::to_string(shards) + " epoch " +
                                    std::to_string(i);
            EXPECT_EQ(reference[i].provisioned, got[i].provisioned) << tag;
            EXPECT_EQ(reference[i].outlay, got[i].outlay) << tag;
            EXPECT_EQ(reference[i].selected_links, got[i].selected_links) << tag;
            EXPECT_EQ(reference[i].flows.total_routed_gbps, got[i].flows.total_routed_gbps)
                << tag;
            EXPECT_EQ(reference[i].flows.max_utilization, got[i].flows.max_utilization)
                << tag;
            EXPECT_EQ(reference[i].flows.link_load_gbps, got[i].flows.link_load_gbps)
                << tag;
            EXPECT_EQ(reference[i].flows.stretch, got[i].flows.stretch) << tag;
        }
    }
}

// --- The journaled epoch runtime: shard count is an engine knob (a
// journal written at shards=1 replays under shards=4 and vice versa),
// while flow_routing is semantic meta (flipping it against an existing
// journal is refused). ---
TEST(ShardIdentity, JournaledRuntimeResumesAcrossShardCountButNotRoutingFlip) {
    const ShardMarketFixture fx;
    const market::OfferPool pool = fx.pool();

    const auto dir = std::filesystem::temp_directory_path() / "poc_shard_identity_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    sim::RuntimeOptions opt1;
    opt1.epochs = 4;
    opt1.seed = 11;
    opt1.request = fx.request();
    opt1.flow_routing = core::FlowRouting::kPrimary;
    opt1.flow_shards = 1;
    opt1.journal_path = (dir / "shard.journal").string();

    sim::RuntimeOptions opt4 = opt1;
    opt4.flow_shards = 4;
    opt4.flow_threads = 2;

    // Fresh runs at different shard counts are bit-identical.
    sim::RuntimeOptions fresh4 = opt4;
    fresh4.journal_path.clear();
    const auto run1 = sim::EpochRuntime(pool, fx.tm, opt1).run();
    const auto run4 = sim::EpochRuntime(pool, fx.tm, fresh4).run();
    EXPECT_EQ(run4.replayed_epochs, 0u);
    EXPECT_TRUE(run1.final_rng == run4.final_rng);
    EXPECT_EQ(run1.ledger.transfers(), run4.ledger.transfers());
    ASSERT_EQ(run1.epochs.size(), run4.epochs.size());
    for (std::size_t i = 0; i < run1.epochs.size(); ++i) {
        EXPECT_EQ(run1.epochs[i], run4.epochs[i]) << "epoch " << i;
    }

    // The journal written at shards=1 replays fully at shards=4: shard
    // count is not part of the meta fingerprint.
    const auto replayed = sim::EpochRuntime(pool, fx.tm, opt4).run();
    EXPECT_EQ(replayed.replayed_epochs, opt1.epochs);
    EXPECT_TRUE(replayed.final_rng == run1.final_rng);
    EXPECT_EQ(replayed.ledger.transfers(), run1.ledger.transfers());
    ASSERT_EQ(replayed.epochs.size(), run1.epochs.size());
    for (std::size_t i = 0; i < replayed.epochs.size(); ++i) {
        EXPECT_EQ(replayed.epochs[i], run1.epochs[i]) << "epoch " << i;
    }

    // Flipping the routing mode against the same journal is a
    // different run configuration and must be refused.
    sim::RuntimeOptions flipped = opt1;
    flipped.flow_routing = core::FlowRouting::kGreedy;
    EXPECT_THROW((void)sim::EpochRuntime(pool, fx.tm, flipped).run(), util::JournalError);

    std::filesystem::remove_all(dir);
}

// --- kPrimary versus kGreedy is a real semantic difference (the
// fingerprint bump is not vacuous): on a market where greedy
// water-filling spills onto longer paths, reports differ. ---
TEST(ShardIdentity, RoutingModesDifferSemantically) {
    const ShardMarketFixture fx;

    // Saturate: big demands against 10 Gbps links force kGreedy to
    // spill while kPrimary stays on the primary path.
    net::TrafficMatrix heavy = fx.tm;
    for (net::Demand& d : heavy) d.gbps *= 20.0;

    const net::Subgraph sg(fx.graph);
    core::FlowSimOptions greedy;
    core::FlowSimOptions primary;
    primary.routing = core::FlowRouting::kPrimary;
    const core::FlowReport a = core::simulate_flows(sg, heavy, {}, greedy);
    const core::FlowReport b = core::simulate_flows(sg, heavy, {}, primary);
    EXPECT_EQ(b.stretch, 1.0);
    EXPECT_EQ(a.total_offered_gbps, b.total_offered_gbps);
    // Greedy respects capacity and spills; primary is oblivious.
    EXPECT_NE(a.link_load_gbps, b.link_load_gbps);
}

}  // namespace
}  // namespace poc
