#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace poc::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
    Table t({"BP", "bid", "PoB"});
    t.add_row({"BP1", "12.0", "0.09"});
    t.add_row({"BP2", "7.5", "0.15"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| BP "), std::string::npos);
    EXPECT_NE(out.find("BP1"), std::string::npos);
    EXPECT_NE(out.find("0.15"), std::string::npos);
    // Separator row present.
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, AlignmentPadsCorrectly) {
    Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "23"});
    const std::string out = t.render();
    // Numbers right-aligned: " 1 |" has the digit flush right.
    EXPECT_NE(out.find("|     1 |"), std::string::npos);
    EXPECT_NE(out.find("| x      |"), std::string::npos);
}

TEST(Table, CustomAlignment) {
    Table t({"a", "b"});
    t.set_alignment({Align::kRight, Align::kLeft});
    t.add_row({"1", "xx"});
    t.add_row({"22", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("|  1 |"), std::string::npos);
    EXPECT_NE(out.find("| y  |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
    Table t({"name", "note"});
    t.add_row({"a,b", "say \"hi\""});
    const std::string csv = t.render_csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainValuesUnquoted) {
    Table t({"x"});
    t.add_row({"42"});
    EXPECT_EQ(t.render_csv(), "x\n42\n");
}

TEST(Table, CountsRowsAndColumns) {
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.column_count(), 3u);
    EXPECT_EQ(t.row_count(), 0u);
    t.add_row({"1", "2", "3"});
    EXPECT_EQ(t.row_count(), 1u);
}

TEST(Cell, FormatsDoublesAndInts) {
    EXPECT_EQ(cell(3.14159, 2), "3.14");
    EXPECT_EQ(cell(std::int64_t{-7}), "-7");
    EXPECT_EQ(cell(std::size_t{9}), "9");
}

TEST(Cell, FormatsPercent) {
    EXPECT_EQ(cell_pct(0.123, 1), "12.3%");
    EXPECT_EQ(cell_pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace poc::util
