// State-history store: varint/XOR-delta codec properties, snapshot
// file framing and atomic install, newest-valid fallback, pruning,
// stale-temp sweeping, and the byte-surgery fault toolkit itself.
#include "util/state_history.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace poc::util {
namespace {

class StateHistoryTest : public ::testing::Test {
protected:
    void SetUp() override {
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_state_history_test_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const std::string& name) const { return (dir_ / name).string(); }

    std::filesystem::path dir_;
};

TEST(Varint, RoundTripsRepresentativeValues) {
    const std::uint64_t values[] = {0,    1,    127,        128,
                                    255,  300,  16383,      16384,
                                    1u << 20, (1ull << 32) - 1, 1ull << 62, ~0ull};
    for (const std::uint64_t v : values) {
        std::string buf;
        put_varint(buf, v);
        std::size_t pos = 0;
        EXPECT_EQ(get_varint(buf, pos), v);
        EXPECT_EQ(pos, buf.size());
    }
    // Packed back to back.
    std::string buf;
    for (const std::uint64_t v : values) put_varint(buf, v);
    std::size_t pos = 0;
    for (const std::uint64_t v : values) EXPECT_EQ(get_varint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, RejectsTruncatedAndOverlongBytes) {
    std::size_t pos = 0;
    EXPECT_THROW(get_varint("", pos), StateHistoryError);
    pos = 0;
    EXPECT_THROW(get_varint("\x80", pos), StateHistoryError);  // continuation, no end
    pos = 0;
    // 11 continuation bytes: more than a u64 can carry.
    const std::string overlong(11, '\x80');
    EXPECT_THROW(get_varint(overlong, pos), StateHistoryError);
}

TEST(XorDelta, RoundTripsEveryShapeCombination) {
    const std::vector<std::string> shapes = {
        "",
        "a",
        "identical-bytes-identical-bytes",
        "identical-bytes-identicaX-bytes",
        std::string(200, 'z'),
        std::string(200, 'z') + "tail",
        std::string("\0\0\0\0binary\0payload", 18),
        "completely different content here",
    };
    for (const std::string& base : shapes) {
        for (const std::string& next : shapes) {
            const std::string delta = xor_delta_encode(base, next);
            EXPECT_EQ(xor_delta_decode(base, delta), next)
                << "base size " << base.size() << ", next size " << next.size();
        }
    }
}

TEST(XorDelta, NearIdenticalPayloadsShrink) {
    // The runtime's steady state: same shape, a few changed fields.
    std::string base(512, '\0');
    for (std::size_t i = 0; i < base.size(); ++i) base[i] = static_cast<char>(i * 7);
    std::string next = base;
    next[10] = 'X';
    next[300] = 'Y';
    const std::string delta = xor_delta_encode(base, next);
    EXPECT_LT(delta.size(), 32u);  // two short literal runs, not 512 bytes
    EXPECT_EQ(xor_delta_decode(base, delta), next);
    // Identical payloads collapse to (almost) nothing.
    EXPECT_LT(xor_delta_encode(base, base).size(), 8u);
}

TEST(XorDelta, RoundTripsRandomizedPairs) {
    Rng rng(20200809);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t base_len = rng.uniform_int(std::uint64_t{64});
        std::string base(base_len, '\0');
        for (char& c : base) c = static_cast<char>(rng.uniform_int(std::uint64_t{256}));
        // next = base with random mutations, resizes, or fresh bytes.
        std::string next = base;
        next.resize(rng.uniform_int(std::uint64_t{64}));
        for (char& c : next) {
            if (rng.bernoulli(0.3)) c = static_cast<char>(rng.uniform_int(std::uint64_t{256}));
        }
        const std::string delta = xor_delta_encode(base, next);
        EXPECT_EQ(xor_delta_decode(base, delta), next) << "trial " << trial;
    }
}

TEST(XorDelta, RejectsMalformedDeltaBytes) {
    const std::string base = "some base payload";
    // Truncated mid-run.
    std::string delta = xor_delta_encode(base, "some base Xayload");
    ASSERT_GT(delta.size(), 2u);
    EXPECT_THROW(xor_delta_decode(base, delta.substr(0, delta.size() - 1)),
                 StateHistoryError);
    // Trailing garbage after the declared payload.
    EXPECT_THROW(xor_delta_decode(base, delta + "x"), StateHistoryError);
    // A literal run longer than the declared total.
    std::string evil;
    put_varint(evil, 2);   // total
    put_varint(evil, 0);   // skip
    put_varint(evil, 10);  // literal overruns total
    evil.append("0123456789");
    EXPECT_THROW(xor_delta_decode(base, evil), StateHistoryError);
    // A skip run that would read past the declared total.
    std::string evil2;
    put_varint(evil2, 2);
    put_varint(evil2, ~0ull);  // absurd skip: must not overflow checks
    put_varint(evil2, 0);
    EXPECT_THROW(xor_delta_decode(base, evil2), StateHistoryError);
}

TEST_F(StateHistoryTest, SnapshotFileRoundTripsAndInstallsAtomically) {
    const std::string p = path("state.snap-000000000004");
    const std::string payload(1000, '\x5A');
    write_snapshot_file(p, 4, "meta-v1", payload);
    EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));  // temp renamed away

    const auto snap = read_snapshot_file(p);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 4u);
    EXPECT_EQ(snap->meta, "meta-v1");
    EXPECT_EQ(snap->payload, payload);
    EXPECT_EQ(snap->path, p);

    // Overwrite-in-place is atomic too: the new content replaces the
    // old wholesale.
    write_snapshot_file(p, 4, "meta-v1", "tiny");
    EXPECT_EQ(read_snapshot_file(p)->payload, "tiny");
}

TEST_F(StateHistoryTest, SnapshotReadRejectsEveryTruncationOffset) {
    const std::string p = path("snap");
    write_snapshot_file(p, 7, "m", "payload-bytes-here");
    const std::string intact = FaultyFile::slurp(p);
    ASSERT_FALSE(intact.empty());
    for (std::uint64_t cut = 0; cut < intact.size(); ++cut) {
        FaultyFile::spit(p, intact);
        FaultyFile::tear_at(p, cut);
        EXPECT_FALSE(read_snapshot_file(p).has_value()) << "cut at " << cut;
    }
}

TEST_F(StateHistoryTest, SnapshotReadRejectsEverySingleBitFlip) {
    const std::string p = path("snap");
    write_snapshot_file(p, 7, "m", "payload-bytes-here");
    const std::string intact = FaultyFile::slurp(p);
    for (std::uint64_t off = 0; off < intact.size(); ++off) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            FaultyFile::spit(p, intact);
            FaultyFile::flip_bit(p, off, bit);
            EXPECT_FALSE(read_snapshot_file(p).has_value())
                << "flip at byte " << off << " bit " << bit;
        }
    }
    // Control: the untouched file still validates.
    FaultyFile::spit(p, intact);
    EXPECT_TRUE(read_snapshot_file(p).has_value());
}

TEST_F(StateHistoryTest, SnapshotReadRejectsGarbageAndMissingFiles) {
    EXPECT_FALSE(read_snapshot_file(path("missing")).has_value());
    FaultyFile::spit(path("garbage"), "this is not a snapshot at all");
    EXPECT_FALSE(read_snapshot_file(path("garbage")).has_value());
    // Appended trailing bytes break the exact-size frame.
    const std::string p = path("snap");
    write_snapshot_file(p, 1, "m", "x");
    FaultyFile::append_garbage(p, "trailing");
    EXPECT_FALSE(read_snapshot_file(p).has_value());
}

TEST_F(StateHistoryTest, StoreListsWritesAndPrunesGenerations) {
    const SnapshotStore store(path("journal"), /*keep=*/2);
    EXPECT_TRUE(store.enabled());
    EXPECT_TRUE(store.list().empty());

    store.write(4, "m", "four");
    store.write(8, "m", "eight");
    auto snaps = store.list();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].completed_epochs, 4u);
    EXPECT_EQ(snaps[1].completed_epochs, 8u);

    // A third generation prunes the oldest (keep = 2).
    store.write(12, "m", "twelve");
    snaps = store.list();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].completed_epochs, 8u);
    EXPECT_EQ(snaps[1].completed_epochs, 12u);

    // Foreign files and stale temps next to the journal are not listed.
    FaultyFile::spit(path("journal.snap-notdigits"), "x");
    FaultyFile::make_stale_temp(store.path_for(16), "partial install");
    EXPECT_EQ(store.list().size(), 2u);
}

TEST_F(StateHistoryTest, LoadNewestValidFallsBackPastCorruptAndForeign) {
    const SnapshotStore store(path("journal"), /*keep=*/3);
    store.write(4, "mine", "four");
    store.write(8, "mine", "eight");
    store.write(12, "mine", "twelve");

    // Newest wins when everything validates.
    auto snap = store.load_newest_valid("mine");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 12u);

    // Corrupt the newest: the next-older generation answers.
    FaultyFile::flip_bit(store.path_for(12), 20, 2);
    snap = store.load_newest_valid("mine");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 8u);
    EXPECT_EQ(snap->payload, "eight");

    // A foreign configuration's snapshot is skipped, not loaded.
    write_snapshot_file(store.path_for(8), 8, "theirs", "not-yours");
    snap = store.load_newest_valid("mine");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 4u);

    // Nothing survives: nullopt, never a throw.
    FaultyFile::tear_at(store.path_for(4), 3);
    EXPECT_FALSE(store.load_newest_valid("mine").has_value());
}

TEST_F(StateHistoryTest, LoadAtPicksNewestGenerationAtOrBelowTarget) {
    const SnapshotStore store(path("journal"), /*keep=*/4);
    store.write(4, "mine", "four");
    store.write(8, "mine", "eight");
    store.write(12, "mine", "twelve");

    // Exact hit, between generations, above all, below all.
    ASSERT_TRUE(store.load_at(8, "mine").has_value());
    EXPECT_EQ(store.load_at(8, "mine")->completed_epochs, 8u);
    EXPECT_EQ(store.load_at(11, "mine")->completed_epochs, 8u);
    EXPECT_EQ(store.load_at(100, "mine")->completed_epochs, 12u);
    EXPECT_EQ(store.load_at(4, "mine")->payload, "four");
    EXPECT_FALSE(store.load_at(3, "mine").has_value());
}

TEST_F(StateHistoryTest, LoadAtFallsBackPastCorruptAndForeignGenerations) {
    const SnapshotStore store(path("journal"), /*keep=*/4);
    store.write(4, "mine", "four");
    store.write(8, "mine", "eight");
    store.write(12, "mine", "twelve");

    // Corrupt the best candidate for target 10: the older generation
    // answers instead (grounding further back is always sound — the
    // journal suffix replay just gets longer).
    FaultyFile::flip_bit(store.path_for(8), 20, 2);
    auto snap = store.load_at(10, "mine");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 4u);
    EXPECT_EQ(snap->payload, "four");

    // A newer-than-target generation is never consulted, even intact.
    EXPECT_EQ(store.load_at(11, "mine")->completed_epochs, 4u);
    // Foreign fingerprint at 4 too: nothing ≤ target survives.
    write_snapshot_file(store.path_for(4), 4, "theirs", "not-yours");
    EXPECT_FALSE(store.load_at(10, "mine").has_value());
    // But the intact 12-generation still serves higher targets.
    EXPECT_EQ(store.load_at(12, "mine")->completed_epochs, 12u);
}

TEST_F(StateHistoryTest, HistoryReaderGroundsAndScansReadOnly) {
    // A runtime-shaped layout: live journal + snapshot generations
    // next to it, with the writer still holding the append handle.
    const std::string jp = path("journal");
    Journal writer = Journal::create(jp, "run-meta");
    writer.append(1, "epoch-0");
    const SnapshotStore store(jp, /*keep=*/4);
    store.write(1, "run-meta", "state@1");
    writer.append(1, "epoch-1");

    const HistoryReader reader(jp);
    EXPECT_EQ(reader.journal_path(), jp);

    auto snap = reader.snapshot_at(1, "run-meta");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 1u);
    EXPECT_EQ(snap->payload, "state@1");
    EXPECT_FALSE(reader.snapshot_at(0, "run-meta").has_value());

    Journal::ScanResult scan;
    reader.scan_journal(scan);
    EXPECT_EQ(scan.meta, "run-meta");
    ASSERT_EQ(scan.records.size(), 2u);

    // The scan is read-only: the live writer keeps appending and the
    // next scan sees its record.
    writer.append(1, "epoch-2");
    reader.scan_journal(scan);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[2].payload, "epoch-2");
}

TEST_F(StateHistoryTest, SweepRemovesOnlyStaleTemps) {
    const SnapshotStore store(path("journal"), 2);
    store.write(4, "m", "real");
    FaultyFile::make_stale_temp(store.path_for(8), "died before rename");
    FaultyFile::spit(path("unrelated.tmp"), "not ours");

    EXPECT_EQ(store.sweep_stale_temps(), 1u);
    EXPECT_FALSE(std::filesystem::exists(store.path_for(8) + ".tmp"));
    EXPECT_TRUE(std::filesystem::exists(path("unrelated.tmp")));
    ASSERT_EQ(store.list().size(), 1u);
    EXPECT_TRUE(read_snapshot_file(store.path_for(4)).has_value());
    EXPECT_EQ(store.sweep_stale_temps(), 0u);
}

TEST_F(StateHistoryTest, ReadOnlyStoreObservesButNeverMutates) {
    // Writer-only temp-file ownership: a follower's (HistoryReader's)
    // store must never write, prune, or sweep — a "stale" .tmp next to
    // the journal may be the live leader mid-install.
    const SnapshotStore writer(path("journal"), /*keep=*/2);
    writer.write(4, "m", "four");
    writer.write(8, "m", "eight");
    FaultyFile::make_stale_temp(writer.path_for(12), "leader mid-install");

    const SnapshotStore ro(path("journal"), /*keep=*/1, /*read_only=*/true);
    EXPECT_TRUE(ro.read_only());
    EXPECT_FALSE(writer.read_only());

    // Reads all work.
    EXPECT_EQ(ro.list().size(), 2u);
    auto snap = ro.load_newest_valid("m");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 8u);

    // Mutations are refused (write) or inert (prune/sweep) — even with
    // keep=1, which would prune generation 4 on a writable store.
    EXPECT_THROW(ro.write(12, "m", "twelve"), StateHistoryError);
    EXPECT_EQ(ro.prune(), 0u);
    EXPECT_EQ(ro.sweep_stale_temps(), 0u);
    EXPECT_EQ(ro.list().size(), 2u);
    EXPECT_TRUE(std::filesystem::exists(writer.path_for(12) + ".tmp"));

    // The HistoryReader's store is always the read-only flavor.
    const HistoryReader reader(path("journal"));
    EXPECT_TRUE(reader.store().read_only());
    EXPECT_EQ(reader.store().sweep_stale_temps(), 0u);
    EXPECT_TRUE(std::filesystem::exists(writer.path_for(12) + ".tmp"));
}

TEST_F(StateHistoryTest, DisabledStoreIsInert) {
    const SnapshotStore store;
    EXPECT_FALSE(store.enabled());
    EXPECT_TRUE(store.list().empty());
    EXPECT_FALSE(store.load_newest_valid("m").has_value());
    EXPECT_EQ(store.prune(), 0u);
    EXPECT_EQ(store.sweep_stale_temps(), 0u);
}

TEST_F(StateHistoryTest, FileSnapshotSinkWritesThrough) {
    FileSnapshotSink sink{SnapshotStore(path("journal"), 2)};
    sink.emit(4, "m", "payload");
    const auto snap = sink.store().load_newest_valid("m");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->completed_epochs, 4u);
    EXPECT_EQ(snap->payload, "payload");
}

TEST_F(StateHistoryTest, FaultyFileByteSurgeryIsExact) {
    const std::string p = path("victim");
    FaultyFile::spit(p, "0123456789");
    EXPECT_EQ(FaultyFile::size(p), 10u);
    EXPECT_EQ(FaultyFile::slurp(p), "0123456789");

    FaultyFile::tear_at(p, 6);
    EXPECT_EQ(FaultyFile::slurp(p), "012345");
    FaultyFile::tear_at(p, 100);  // beyond EOF: no-op
    EXPECT_EQ(FaultyFile::slurp(p), "012345");

    FaultyFile::flip_bit(p, 0, 0);  // '0' (0x30) -> '1' (0x31)
    EXPECT_EQ(FaultyFile::slurp(p), "112345");
    FaultyFile::flip_bit(p, 999, 0);  // beyond EOF: no-op
    EXPECT_EQ(FaultyFile::slurp(p), "112345");

    FaultyFile::truncate_tail(p, 2);
    EXPECT_EQ(FaultyFile::slurp(p), "1123");
    FaultyFile::truncate_tail(p, 100);  // clamped
    EXPECT_EQ(FaultyFile::slurp(p), "");

    FaultyFile::spit(p, "abcdef");
    FaultyFile::duplicate_range(p, 2, 3);
    EXPECT_EQ(FaultyFile::slurp(p), "abcdefcde");
    FaultyFile::duplicate_range(p, 7, 100);  // clamped to the tail
    EXPECT_EQ(FaultyFile::slurp(p), "abcdefcdede");

    FaultyFile::append_garbage(p, "!!");
    EXPECT_EQ(FaultyFile::slurp(p), "abcdefcdede!!");

    FaultyFile::make_stale_temp(p, "half-written");
    EXPECT_EQ(FaultyFile::slurp(p + ".tmp"), "half-written");

    EXPECT_EQ(FaultyFile::slurp(path("missing")), "");
    EXPECT_EQ(FaultyFile::size(path("missing")), 0u);
}

}  // namespace
}  // namespace poc::util
