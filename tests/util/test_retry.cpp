// Retry/backoff/breaker engine: deterministic fake-clock tests pinning
// the failure model the durable epoch runtime depends on.
#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace poc::util {
namespace {

/// Injectable monotonic clock; advance() models time passing.
struct FakeClock {
    double now_ms = 0.0;
    Retrier::Clock fn() {
        return [this] { return now_ms; };
    }
};

RetryPolicy quick_policy(std::size_t attempts = 3) {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.deadline_ms = 100.0;
    p.base_backoff_ms = 10.0;
    p.backoff_multiplier = 2.0;
    p.max_backoff_ms = 40.0;
    p.jitter_fraction = 0.0;  // exact backoff values in tests
    return p;
}

TEST(Retry, FirstAttemptSuccessTouchesNothing) {
    FakeClock clock;
    Retrier r(quick_policy(), {}, clock.fn());
    const int out = r.call([](const Deadline&) { return 41 + 1; });
    EXPECT_EQ(out, 42);
    EXPECT_EQ(r.stats().calls, 1u);
    EXPECT_EQ(r.stats().attempts, 1u);
    EXPECT_EQ(r.stats().successes, 1u);
    EXPECT_EQ(r.stats().failures, 0u);
    EXPECT_EQ(r.breaker_state(), BreakerState::kClosed);
}

TEST(Retry, TransientFailuresAreRetriedThenSucceed) {
    FakeClock clock;
    Retrier r(quick_policy(3), {}, clock.fn());
    int tries = 0;
    const int out = r.call([&](const Deadline&) {
        if (++tries < 3) throw TransientError("flaky");
        return tries;
    });
    EXPECT_EQ(out, 3);
    EXPECT_EQ(r.stats().attempts, 3u);
    EXPECT_EQ(r.stats().failures, 2u);
    EXPECT_EQ(r.stats().successes, 1u);
    // Exact backoff (jitter off): 10 then 20 ms, virtual (no clock
    // movement, but accounted).
    EXPECT_DOUBLE_EQ(r.stats().backoff_ms_total, 30.0);
}

TEST(Retry, ExhaustionThrowsAndCounts) {
    FakeClock clock;
    Retrier r(quick_policy(2), {}, clock.fn());
    EXPECT_THROW(r.call([](const Deadline&) -> int { throw TransientError("down"); }),
                 RetryExhausted);
    EXPECT_EQ(r.stats().attempts, 2u);
    EXPECT_EQ(r.stats().exhausted, 1u);
    EXPECT_EQ(r.stats().successes, 0u);
}

TEST(Retry, NonTransientExceptionsPropagateImmediately) {
    FakeClock clock;
    Retrier r(quick_policy(3), {}, clock.fn());
    EXPECT_THROW(r.call([](const Deadline&) -> int { throw std::logic_error("bug"); }),
                 std::logic_error);
    EXPECT_EQ(r.stats().attempts, 1u);
    EXPECT_EQ(r.stats().exhausted, 0u);
}

TEST(Retry, CooperativeDeadlineCheckAborts) {
    FakeClock clock;
    Retrier r(quick_policy(2), {}, clock.fn());
    EXPECT_THROW(r.call([&](const Deadline& d) -> int {
        clock.now_ms += 200.0;  // blow the 100 ms budget
        d.check();
        ADD_FAILURE() << "check() must throw past the deadline";
        return 0;
    }),
                 RetryExhausted);
    EXPECT_EQ(r.stats().timeouts, 2u);
}

TEST(Retry, SlowSuccessCountsAsTimeout) {
    FakeClock clock;
    Retrier r(quick_policy(2), {}, clock.fn());
    int runs = 0;
    const int out = r.call([&](const Deadline&) {
        ++runs;
        // First attempt overruns its budget without ever polling;
        // second is quick.
        if (runs == 1) clock.now_ms += 150.0;
        return runs;
    });
    EXPECT_EQ(out, 2);
    EXPECT_EQ(r.stats().timeouts, 1u);
    EXPECT_EQ(r.stats().failures, 1u);
    EXPECT_EQ(r.stats().successes, 1u);
}

TEST(Retry, BackoffIsCappedAndJitterIsDeterministic) {
    RetryPolicy p = quick_policy(4);
    p.jitter_fraction = 0.2;
    FakeClock clock;
    std::vector<double> slept;
    Retrier a(p, {}, clock.fn(), [&](double ms) { slept.push_back(ms); });
    EXPECT_THROW(a.call([](const Deadline&) -> int { throw TransientError("x"); }),
                 RetryExhausted);
    ASSERT_EQ(slept.size(), 3u);
    // Base 10, 20, 40(capped); jitter multiplies by [0.8, 1.2).
    EXPECT_GE(slept[0], 8.0);
    EXPECT_LT(slept[0], 12.0);
    EXPECT_GE(slept[2], 32.0);
    EXPECT_LT(slept[2], 48.0);

    // Same seed => bit-identical jitter sequence.
    FakeClock clock2;
    std::vector<double> slept2;
    Retrier b(p, {}, clock2.fn(), [&](double ms) { slept2.push_back(ms); });
    EXPECT_THROW(b.call([](const Deadline&) -> int { throw TransientError("x"); }),
                 RetryExhausted);
    EXPECT_EQ(slept, slept2);
}

TEST(Breaker, OpensAfterConsecutiveExhaustedCallsAndFastFails) {
    FakeClock clock;
    BreakerPolicy bp{2, 1000.0};
    Retrier r(quick_policy(1), bp, clock.fn());
    auto fail = [](const Deadline&) -> int { throw TransientError("down"); };

    EXPECT_THROW(r.call(fail), RetryExhausted);
    EXPECT_EQ(r.breaker_state(), BreakerState::kClosed);
    EXPECT_THROW(r.call(fail), RetryExhausted);
    EXPECT_EQ(r.breaker_state(), BreakerState::kOpen);
    EXPECT_EQ(r.stats().breaker_opens, 1u);

    // Fast-fail: the callable must not even run.
    bool ran = false;
    EXPECT_THROW(r.call([&](const Deadline&) -> int {
        ran = true;
        return 0;
    }),
                 BreakerOpen);
    EXPECT_FALSE(ran);
    EXPECT_EQ(r.stats().breaker_fast_fails, 1u);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess) {
    FakeClock clock;
    Retrier r(quick_policy(1), {1, 500.0}, clock.fn());
    EXPECT_THROW(r.call([](const Deadline&) -> int { throw TransientError("x"); }),
                 RetryExhausted);
    EXPECT_EQ(r.breaker_state(), BreakerState::kOpen);

    clock.now_ms += 600.0;  // past cooldown
    EXPECT_EQ(r.breaker_state(), BreakerState::kHalfOpen);
    EXPECT_EQ(r.call([](const Deadline&) { return 7; }), 7);
    EXPECT_EQ(r.breaker_state(), BreakerState::kClosed);
}

TEST(Breaker, HalfOpenProbeFailureReopens) {
    FakeClock clock;
    Retrier r(quick_policy(1), {1, 500.0}, clock.fn());
    auto fail = [](const Deadline&) -> int { throw TransientError("x"); };
    EXPECT_THROW(r.call(fail), RetryExhausted);
    clock.now_ms += 600.0;
    EXPECT_THROW(r.call(fail), RetryExhausted);  // the probe itself fails
    EXPECT_EQ(r.breaker_state(), BreakerState::kOpen);
    EXPECT_EQ(r.stats().breaker_opens, 2u);
    // Still fast-failing before the new cooldown elapses.
    EXPECT_THROW(r.call([](const Deadline&) { return 0; }), BreakerOpen);
}

TEST(Breaker, SuccessResetsConsecutiveCount) {
    FakeClock clock;
    Retrier r(quick_policy(1), {2, 1000.0}, clock.fn());
    auto fail = [](const Deadline&) -> int { throw TransientError("x"); };
    EXPECT_THROW(r.call(fail), RetryExhausted);
    EXPECT_EQ(r.call([](const Deadline&) { return 1; }), 1);  // streak broken
    EXPECT_THROW(r.call(fail), RetryExhausted);
    EXPECT_EQ(r.breaker_state(), BreakerState::kClosed) << "2 non-consecutive failures";
}

TEST(Breaker, AdministrativeReset) {
    FakeClock clock;
    Retrier r(quick_policy(1), {1, 1e9}, clock.fn());
    EXPECT_THROW(r.call([](const Deadline&) -> int { throw TransientError("x"); }),
                 RetryExhausted);
    EXPECT_EQ(r.breaker_state(), BreakerState::kOpen);
    r.reset_breaker();
    EXPECT_EQ(r.breaker_state(), BreakerState::kClosed);
    EXPECT_EQ(r.call([](const Deadline&) { return 3; }), 3);
}

TEST(Retry, PolicyValidation) {
    EXPECT_THROW(Retrier(RetryPolicy{.max_attempts = 0}), ContractViolation);
    RetryPolicy bad;
    bad.jitter_fraction = 1.5;
    EXPECT_THROW((Retrier(bad)), ContractViolation);
    BreakerPolicy bad_breaker{0, 10.0};
    EXPECT_THROW((Retrier(RetryPolicy{}, bad_breaker)), ContractViolation);
}

}  // namespace
}  // namespace poc::util
