#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace poc::util {
namespace {

class LogTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_sink(&sink_);
        set_log_level(LogLevel::kDebug);
    }
    void TearDown() override {
        set_log_sink(nullptr);
        set_log_level(LogLevel::kWarn);
    }
    std::ostringstream sink_;
};

TEST_F(LogTest, WritesAtOrAboveLevel) {
    set_log_level(LogLevel::kWarn);
    POC_INFO("hidden");
    POC_WARN("visible warning");
    POC_ERROR("visible error");
    const std::string out = sink_.str();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("visible warning"), std::string::npos);
    EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST_F(LogTest, LevelTagsAppear) {
    POC_DEBUG("d-msg");
    POC_ERROR("e-msg");
    const std::string out = sink_.str();
    EXPECT_NE(out.find("[DEBUG]"), std::string::npos);
    EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LogTest, StreamExpressionsCompose) {
    POC_INFO("x=" << 42 << " y=" << 1.5);
    EXPECT_NE(sink_.str().find("x=42 y=1.5"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
    set_log_level(LogLevel::kOff);
    POC_ERROR("nope");
    EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, ExpressionNotEvaluatedBelowLevel) {
    set_log_level(LogLevel::kError);
    int calls = 0;
    auto probe = [&] {
        ++calls;
        return 1;
    };
    POC_DEBUG("value " << probe());
    EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace poc::util
