#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace poc::util {
namespace {

class LogTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_log_sink(&sink_);
        set_log_level(LogLevel::kDebug);
    }
    void TearDown() override {
        set_log_sink(nullptr);
        set_log_level(LogLevel::kWarn);
    }
    std::ostringstream sink_;
};

TEST_F(LogTest, WritesAtOrAboveLevel) {
    set_log_level(LogLevel::kWarn);
    POC_INFO("hidden");
    POC_WARN("visible warning");
    POC_ERROR("visible error");
    const std::string out = sink_.str();
    EXPECT_EQ(out.find("hidden"), std::string::npos);
    EXPECT_NE(out.find("visible warning"), std::string::npos);
    EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST_F(LogTest, LevelTagsAppear) {
    POC_DEBUG("d-msg");
    POC_ERROR("e-msg");
    const std::string out = sink_.str();
    EXPECT_NE(out.find("[DEBUG]"), std::string::npos);
    EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LogTest, StreamExpressionsCompose) {
    POC_INFO("x=" << 42 << " y=" << 1.5);
    EXPECT_NE(sink_.str().find("x=42 y=1.5"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
    set_log_level(LogLevel::kOff);
    POC_ERROR("nope");
    EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LogTest, ExpressionNotEvaluatedBelowLevel) {
    set_log_level(LogLevel::kError);
    int calls = 0;
    auto probe = [&] {
        ++calls;
        return 1;
    };
    POC_DEBUG("value " << probe());
    EXPECT_EQ(calls, 0);
}

TEST_F(LogTest, ConcurrentWritersNeverInterleaveWithinALine) {
    // Sink writes are mutex-guarded: every emitted line must be exactly
    // one writer's complete message, never a mid-line interleaving.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i) {
                POC_INFO("thread-" << t << " msg-" << i << " tail");
            }
        });
    }
    for (auto& w : writers) w.join();

    std::istringstream lines(sink_.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        ++count;
        // A whole line: level tag, exactly one thread-N token, terminal
        // "tail". Interleaving would corrupt this shape.
        ASSERT_GE(line.size(), std::string("[INFO ] thread-0 msg-0 tail").size()) << line;
        EXPECT_EQ(line.rfind("[INFO ] thread-", 0), 0u) << line;
        EXPECT_EQ(line.find("thread-", 16), std::string::npos) << line;
        EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
    }
    EXPECT_EQ(count, kThreads * kPerThread);
}

}  // namespace
}  // namespace poc::util
