#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace poc::util {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) { EXPECT_NO_THROW(POC_EXPECTS(1 + 1 == 2)); }

TEST(Contracts, ExpectsThrowsOnFalse) {
    EXPECT_THROW(POC_EXPECTS(1 + 1 == 3), ContractViolation);
}

TEST(Contracts, EnsuresThrowsOnFalse) { EXPECT_THROW(POC_ENSURES(false), ContractViolation); }

TEST(Contracts, AssertThrowsOnFalse) { EXPECT_THROW(POC_ASSERT(false), ContractViolation); }

TEST(Contracts, MessageNamesKindExpressionAndLocation) {
    try {
        POC_EXPECTS(2 < 1);
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Precondition"), std::string::npos);
        EXPECT_NE(what.find("2 < 1"), std::string::npos);
        EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    }
}

TEST(Contracts, ViolationIsLogicError) {
    EXPECT_THROW(POC_EXPECTS(false), std::logic_error);
}

TEST(Contracts, ConditionEvaluatedExactlyOnce) {
    int calls = 0;
    auto probe = [&] {
        ++calls;
        return true;
    };
    POC_EXPECTS(probe());
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace poc::util
