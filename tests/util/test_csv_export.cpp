#include "util/csv_export.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/contracts.hpp"

namespace poc::util {
namespace {

class CsvExportTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "poc_csv_test";
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override {
        unsetenv("POC_CSV_DIR");
        std::filesystem::remove_all(dir_);
    }

    Table sample() const {
        Table t({"a", "b"});
        t.add_row({"1", "x,y"});
        return t;
    }

    std::filesystem::path dir_;
};

TEST_F(CsvExportTest, DisabledWithoutEnvVar) {
    unsetenv("POC_CSV_DIR");
    EXPECT_FALSE(csv_export_dir().has_value());
    EXPECT_FALSE(maybe_export_csv(sample(), "t").has_value());
}

TEST_F(CsvExportTest, EmptyEnvVarDisables) {
    setenv("POC_CSV_DIR", "", 1);
    EXPECT_FALSE(csv_export_dir().has_value());
}

TEST_F(CsvExportTest, WritesFileWhenEnabled) {
    setenv("POC_CSV_DIR", dir_.c_str(), 1);
    const auto path = maybe_export_csv(sample(), "mytable");
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (dir_ / "mytable.csv").string());
    std::ifstream in(*path);
    std::string header;
    std::string row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(header, "a,b");
    EXPECT_EQ(row, "1,\"x,y\"");
}

TEST_F(CsvExportTest, UnwritableDirectoryFailsLoudly) {
    setenv("POC_CSV_DIR", (dir_ / "does_not_exist").c_str(), 1);
    EXPECT_THROW(maybe_export_csv(sample(), "t"), ContractViolation);
}

TEST_F(CsvExportTest, RejectsPathTraversalNames) {
    setenv("POC_CSV_DIR", dir_.c_str(), 1);
    EXPECT_THROW(maybe_export_csv(sample(), "nested/name"), ContractViolation);
    EXPECT_THROW(maybe_export_csv(sample(), ""), ContractViolation);
}

TEST_F(CsvExportTest, OverwritesExistingFile) {
    setenv("POC_CSV_DIR", dir_.c_str(), 1);
    maybe_export_csv(sample(), "t");
    Table other({"only"});
    other.add_row({"42"});
    maybe_export_csv(other, "t");
    std::ifstream in(dir_ / "t.csv");
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "only");
}

}  // namespace
}  // namespace poc::util
