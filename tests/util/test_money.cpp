#include "util/money.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/contracts.hpp"

namespace poc::util {
namespace {

TEST(Money, DefaultIsZero) {
    Money m;
    EXPECT_TRUE(m.is_zero());
    EXPECT_EQ(m.micros(), 0);
}

TEST(Money, FromDollarsWhole) {
    EXPECT_EQ(Money::from_dollars(std::int64_t{3}).micros(), 3'000'000);
    EXPECT_EQ(Money::from_dollars(std::int64_t{-2}).micros(), -2'000'000);
}

TEST(Money, FromDollarsDoubleRounds) {
    EXPECT_EQ(Money::from_dollars(1.0000004).micros(), 1'000'000);
    EXPECT_EQ(Money::from_dollars(1.0000006).micros(), 1'000'001);
    EXPECT_EQ(Money::from_dollars(-1.0000006).micros(), -1'000'001);
}

TEST(Money, FromDollarsRejectsNonFinite) {
    EXPECT_THROW(Money::from_dollars(std::numeric_limits<double>::infinity()),
                 ContractViolation);
    EXPECT_THROW(Money::from_dollars(std::numeric_limits<double>::quiet_NaN()),
                 ContractViolation);
}

TEST(Money, ArithmeticIsExact) {
    const Money a = Money::from_dollars(0.1);
    const Money b = Money::from_dollars(0.2);
    EXPECT_EQ((a + b).micros(), 300'000);  // no float drift
    EXPECT_EQ((b - a).micros(), 100'000);
    EXPECT_EQ((-a).micros(), -100'000);
}

TEST(Money, CompoundAssignment) {
    Money m = 10_usd;
    m += 5_usd;
    m -= 3_usd;
    EXPECT_EQ(m, 12_usd);
}

TEST(Money, ComparisonOrdering) {
    EXPECT_LT(1_usd, 2_usd);
    EXPECT_GT(2_usd, 1_usd);
    EXPECT_LE(2_usd, 2_usd);
    EXPECT_EQ(Money::from_dollars(1.5), Money::from_micros(1'500'000));
}

TEST(Money, ScaledRoundsToNearestMicro) {
    const Money m = 10_usd;
    EXPECT_EQ(m.scaled(0.5), 5_usd);
    EXPECT_EQ(Money::from_micros(3).scaled(0.5).micros(), 2);  // 1.5 rounds away
    EXPECT_EQ(m.scaled(0.0), Money{});
}

TEST(Money, RatioComputesDivision) {
    EXPECT_DOUBLE_EQ(ratio(3_usd, 2_usd), 1.5);
    EXPECT_THROW(ratio(1_usd, Money{}), ContractViolation);
}

TEST(Money, StrFormatsWithSeparatorsAndCents) {
    EXPECT_EQ((1234_usd + Money::from_dollars(0.56)).str(), "$1,234.56");
    EXPECT_EQ(Money::from_dollars(std::int64_t{1'000'000}).str(), "$1,000,000.00");
    EXPECT_EQ(Money{}.str(), "$0.00");
    EXPECT_EQ(Money::from_dollars(0.05).str(), "$0.05");
}

TEST(Money, StrNegative) {
    EXPECT_EQ(Money::from_dollars(-1234.5).str(), "-$1,234.50");
}

TEST(Money, StrRoundsMicrosToCentsWithCarry) {
    // 999'996 micros = $0.999996 -> rounds to $1.00.
    EXPECT_EQ(Money::from_micros(999'996).str(), "$1.00");
}

TEST(Money, StreamOperator) {
    std::ostringstream os;
    os << 42_usd;
    EXPECT_EQ(os.str(), "$42.00");
}

TEST(Money, DollarsRoundTrip) {
    const Money m = Money::from_dollars(1234.567891);
    EXPECT_NEAR(m.dollars(), 1234.567891, 1e-6);
}

TEST(Money, Predicates) {
    EXPECT_TRUE(Money::from_dollars(-1.0).is_negative());
    EXPECT_FALSE(Money{}.is_negative());
    EXPECT_FALSE(1_usd .is_negative());
}

// Overflow safety: ledger accumulation goes through checked_add /
// checked_sum, which must detect int64 wrap instead of producing a
// silently-wrong balance.

TEST(Money, CheckedAddDetectsPositiveOverflow) {
    const Money max = Money::from_micros(std::numeric_limits<std::int64_t>::max());
    EXPECT_FALSE(Money::checked_add(max, Money::from_micros(1)).has_value());
    EXPECT_FALSE(Money::checked_add(max, max).has_value());
    // Exactly at the boundary is fine.
    const auto at_max = Money::checked_add(Money::from_micros(
                                               std::numeric_limits<std::int64_t>::max() - 1),
                                           Money::from_micros(1));
    ASSERT_TRUE(at_max.has_value());
    EXPECT_EQ(at_max->micros(), std::numeric_limits<std::int64_t>::max());
}

TEST(Money, CheckedAddDetectsNegativeOverflow) {
    const Money min = Money::from_micros(std::numeric_limits<std::int64_t>::min());
    EXPECT_FALSE(Money::checked_add(min, Money::from_micros(-1)).has_value());
    EXPECT_FALSE(Money::checked_add(min, min).has_value());
    const auto at_min = Money::checked_add(Money::from_micros(
                                               std::numeric_limits<std::int64_t>::min() + 1),
                                           Money::from_micros(-1));
    ASSERT_TRUE(at_min.has_value());
    EXPECT_EQ(at_min->micros(), std::numeric_limits<std::int64_t>::min());
}

TEST(Money, CheckedAddMatchesPlainAdditionInRange) {
    const Money a = Money::from_dollars(123.456789);
    const Money b = Money::from_dollars(-987.654321);
    const auto sum = Money::checked_add(a, b);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(*sum, a + b);
    // Opposite-sign extremes can never overflow.
    const Money max = Money::from_micros(std::numeric_limits<std::int64_t>::max());
    const Money min = Money::from_micros(std::numeric_limits<std::int64_t>::min());
    ASSERT_TRUE(Money::checked_add(max, min).has_value());
    EXPECT_EQ(Money::checked_add(max, min)->micros(), -1);
}

TEST(Money, CheckedSumThrowsOnOverflow) {
    const Money max = Money::from_micros(std::numeric_limits<std::int64_t>::max());
    EXPECT_THROW(Money::checked_sum(max, 1_usd), ContractViolation);
    EXPECT_THROW(Money::checked_sum(-max, Money::from_dollars(std::int64_t{-2})),
                 ContractViolation);
    EXPECT_EQ(Money::checked_sum(2_usd, 3_usd), 5_usd);
}

}  // namespace
}  // namespace poc::util
