#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace poc::util {
namespace {

TEST(ThreadPool, RequiresAtLeastOneWorker) {
    EXPECT_THROW(ThreadPool(0), ContractViolation);
    ThreadPool pool(3);
    EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForZeroCountReturnsImmediately) {
    ThreadPool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, CallerParticipatesInDraining) {
    // More tasks than workers; the calling thread must help, otherwise
    // a 1-worker pool would serialize these with no benefit. We only
    // assert completion plus that at least the worker or caller ran
    // tasks (timing-independent).
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.parallel_for(64, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches) {
    ThreadPool pool(2);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 5; ++batch) {
        pool.parallel_for(20, [&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, UnevenTaskCostsAllComplete) {
    // Work stealing: one deque receives the heavy tasks (round-robin
    // distribution puts every 4th task there); idle workers steal them.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.parallel_for(32, [&](std::size_t i) {
        if (i % 4 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&ran] { ran.fetch_add(1); });
        }
        // No wait_idle: the destructor must finish the queue.
    }
    EXPECT_EQ(ran.load(), 50);
}

#if POC_OBS_ENABLED
TEST(ThreadPool, IdlePoolSubmissionsBarelySteal) {
    // Regression for the daemon's steady state: a mostly-idle pool
    // serving occasional tasks. submit() must hand each task directly
    // to a parked worker (targeted wakeup, never via a stealable
    // deque), not wake an arbitrary worker that then steals it — both
    // so the obs "steals" counter measures real load imbalance and so
    // an idle pool does no rebalancing work. Before the targeted-
    // handoff fix, ~3/4 of these single-task submissions landed as
    // steals.
    ThreadPool pool(4);
    // Warm up and let every worker reach its parked state.
    pool.parallel_for(8, [](std::size_t) {});
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto steals_before = obs::registry().counter("util.pool.steals").value();
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
        pool.wait_idle();
    }
    EXPECT_EQ(ran.load(), kTasks);
    const auto growth = obs::registry().counter("util.pool.steals").value() - steals_before;
    // Near-zero, not exactly zero: with >= 3 of the 4 workers parked at
    // every submit, each task takes the direct-handoff path, which has
    // nothing to steal. The tiny slack covers a submit landing in the
    // instant all four workers happen to be between task and park.
    EXPECT_LE(growth, 4u) << "idle-pool submissions ran as steals";
}
#endif

TEST(ThreadPool, BurstAfterLongIdleCompletes) {
    // All workers parked for a while, then a burst wider than the pool:
    // targeted wakeups must revive every worker, and the round-robin
    // fallback must still spread the overflow.
    ThreadPool pool(4);
    pool.parallel_for(4, [](std::size_t) {});
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::atomic<int> ran{0};
    for (int i = 0; i < 256; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 256);
}

TEST(ThreadPool, TasksRunOnMultipleThreadsWhenAvailable) {
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    pool.parallel_for(64, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(mutex);
        ids.insert(std::this_thread::get_id());
    });
    // Workers + caller bound; at least one thread must have run tasks.
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), pool.worker_count() + 1);
}

}  // namespace
}  // namespace poc::util
