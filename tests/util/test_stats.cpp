#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace poc::util {
namespace {

TEST(Accumulator, EmptyRejectsQueries) {
    Accumulator a;
    EXPECT_TRUE(a.empty());
    EXPECT_THROW(a.mean(), ContractViolation);
    EXPECT_THROW(a.min(), ContractViolation);
}

TEST(Accumulator, SingleValue) {
    Accumulator a;
    a.add(3.5);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
    EXPECT_THROW(a.variance(), ContractViolation);  // needs n >= 2
}

TEST(Accumulator, KnownMoments) {
    Accumulator a;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, NegativeValues) {
    // min/max tracking must not assume observations are positive (the
    // members initialize to 0.0, so an all-negative stream is the trap).
    Accumulator a;
    for (const double x : {-5.0, -1.0, -3.0}) a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), -3.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), -1.0);
    EXPECT_DOUBLE_EQ(a.sum(), -9.0);
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
}

TEST(Accumulator, MixedSignValuesCancelInSumButNotVariance) {
    Accumulator a;
    a.add(-2.0);
    a.add(2.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_NEAR(a.variance(), 8.0, 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(Accumulator, MatchesDirectComputationOnRandomData) {
    Rng rng(3);
    Accumulator a;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(7.0, 3.0);
        xs.push_back(x);
        a.add(x);
    }
    double mean = 0.0;
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double var = 0.0;
    for (const double x : xs) var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size() - 1);
    EXPECT_NEAR(a.mean(), mean, 1e-9);
    EXPECT_NEAR(a.variance(), var, 1e-6);
}

TEST(Percentile, MedianOfOddSample) {
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
    // Quartile of {1,2,3,4}: rank 0.25*3 = 0.75 -> 1 + 0.75*(2-1).
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(Percentile, Extremes) {
    const std::vector<double> v{5.0, 1.0, 9.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
    EXPECT_THROW(percentile({}, 0.5), ContractViolation);
    EXPECT_THROW(percentile({1.0}, 1.5), ContractViolation);
}

TEST(MeanOf, Computes) { EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 6.0}), 3.0); }

TEST(Histogram, BinsValuesAndTracksOverflow) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0
    h.add(1.99);   // bin 0
    h.add(5.0);    // bin 2
    h.add(9.999);  // bin 4
    h.add(10.0);   // overflow (right-open)
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count_in_bin(0), 2u);
    EXPECT_EQ(h.count_in_bin(2), 1u);
    EXPECT_EQ(h.count_in_bin(4), 1u);
}

TEST(Histogram, BinEdges) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
    EXPECT_THROW(h.bin_lo(5), ContractViolation);
}

TEST(Histogram, AsciiRenderIncludesCounts) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.2);
    h.add(0.9);
    const std::string art = h.ascii(10);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find("2"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 3), ContractViolation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, EmptyIsQueryableAndRenders) {
    Histogram h(0.0, 10.0, 4);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t b = 0; b < h.bin_count(); ++b) EXPECT_EQ(h.count_in_bin(b), 0u);
    EXPECT_FALSE(h.ascii().empty());  // renders without samples
}

TEST(Histogram, SingleSample) {
    Histogram h(0.0, 10.0, 4);
    h.add(2.5);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.count_in_bin(1), 1u);
    EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, NegativeRange) {
    // Ranges entirely below zero must bin correctly (the bin index
    // computation divides by the width of a negative-origin range).
    Histogram h(-10.0, 0.0, 5);  // [-10, 0), bins of width 2
    h.add(-10.0);  // bin 0 (left-closed)
    h.add(-9.5);   // bin 0
    h.add(-0.01);  // bin 4
    h.add(0.0);    // overflow (hi is right-open)
    h.add(-11.0);  // underflow
    EXPECT_EQ(h.count_in_bin(0), 2u);
    EXPECT_EQ(h.count_in_bin(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), -10.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(4), 0.0);
}

}  // namespace
}  // namespace poc::util
