#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/contracts.hpp"

namespace poc::util {
namespace {

TEST(Rng, DeterministicAcrossInstancesWithSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedReproducesStream) {
    Rng r(7);
    const auto first = r.next();
    r.reseed(7);
    EXPECT_EQ(r.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(5);
    for (int i = 0; i < 10'000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 7.5);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.5);
    }
}

TEST(Rng, UniformMeanCloseToHalf) {
    Rng r(11);
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllResidues) {
    Rng r(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(std::uint64_t{7}));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveRange) {
    Rng r(19);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(std::int64_t{-5}, std::int64_t{5});
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntRejectsZeroRange) {
    Rng r(1);
    EXPECT_THROW(r.uniform_int(std::uint64_t{0}), ContractViolation);
}

TEST(Rng, NormalMomentsMatch) {
    Rng r(23);
    const int n = 200'000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
    Rng r(29);
    const int n = 100'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
    Rng r(31);
    const int n = 100'000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScaleFloor) {
    Rng r(37);
    for (int i = 0; i < 10'000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LognormalIsPositive) {
    Rng r(41);
    for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequencyTracksP) {
    Rng r(43);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
    Rng r(47);
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, DiscreteRespectsWeights) {
    Rng r(53);
    const std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40'000;
    for (int i = 0; i < n; ++i) ++counts[r.discrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, DiscreteRejectsAllZero) {
    Rng r(1);
    EXPECT_THROW(r.discrete({0.0, 0.0}), ContractViolation);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
    Rng r(59);
    const auto picks = r.sample_without_replacement(10, 6);
    EXPECT_EQ(picks.size(), 6u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 6u);
    for (const std::size_t p : picks) EXPECT_LT(p, 10u);
}

TEST(Rng, SampleWholePopulation) {
    Rng r(61);
    const auto picks = r.sample_without_replacement(5, 5);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng r(67);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
    Rng parent(71);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace poc::util
