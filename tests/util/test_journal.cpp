// Write-ahead journal: framing, checksums, torn-tail truncation, and
// the binary (de)serialization substrate.
#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

namespace poc::util {
namespace {

class JournalTest : public ::testing::Test {
protected:
    void SetUp() override {
        // Per-test directory: ctest runs each case as its own process,
        // so a shared fixed path would let concurrent cases clobber
        // each other's files via remove_all.
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::filesystem::temp_directory_path() /
               ("poc_journal_test_" + std::string(info->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string path(const std::string& name) const { return (dir_ / name).string(); }

    /// Raw file bytes (for corruption surgery).
    static std::string slurp(const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    }
    static void spit(const std::string& p, const std::string& bytes) {
        std::ofstream out(p, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    std::filesystem::path dir_;
};

TEST(BinaryRoundTrip, AllScalarTypes) {
    BinaryWriter w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(3.141592653589793);
    w.boolean(true);
    w.boolean(false);
    w.str("hello\0world");  // literal truncates at NUL; checks prefix form
    w.str(std::string("bin\0ary", 7));

    BinaryReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.141592653589793);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), std::string("bin\0ary", 7));
    EXPECT_TRUE(r.exhausted());
}

TEST(BinaryRoundTrip, ReaderThrowsOnUnderrun) {
    BinaryWriter w;
    w.u32(7);
    BinaryReader r(w.bytes());
    EXPECT_THROW(r.u64(), JournalError);
    // A length-prefixed string whose length exceeds the buffer must
    // throw, not allocate garbage.
    BinaryWriter w2;
    w2.u64(1'000'000);
    BinaryReader r2(w2.bytes());
    EXPECT_THROW(r2.str(), JournalError);
}

TEST(Crc32, KnownVectors) {
    // IEEE 802.3 reference values.
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST_F(JournalTest, CreateAppendOpenRoundTrip) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "meta-v1");
        j.append(1, "first");
        j.append(2, std::string("second\0payload", 14));
        j.append(3, "");  // empty payloads are legal
    }
    Journal::ScanResult scan;
    Journal j = Journal::open(p, scan);
    EXPECT_EQ(scan.meta, "meta-v1");
    EXPECT_FALSE(scan.tail_truncated);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, 1);
    EXPECT_EQ(scan.records[0].payload, "first");
    EXPECT_EQ(scan.records[1].type, 2);
    EXPECT_EQ(scan.records[1].payload, std::string("second\0payload", 14));
    EXPECT_EQ(scan.records[2].type, 3);
    EXPECT_EQ(scan.records[2].payload, "");

    // The reopened journal appends to the same log.
    j.append(4, "resumed");
    Journal::ScanResult scan2;
    Journal::open(p, scan2);
    ASSERT_EQ(scan2.records.size(), 4u);
    EXPECT_EQ(scan2.records[3].payload, "resumed");
}

TEST_F(JournalTest, ScanFileReadsWithoutTruncatingOrAppending) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "meta-ro");
        j.append(1, "alpha");
        j.append(2, "beta");
    }
    // A torn tail (crash mid-append) must be *reported* by scan_file,
    // never repaired: the owning runtime may still hold the file.
    const std::string intact = slurp(p);
    BinaryWriter torn;
    torn.u16(3);
    torn.u32(100);
    torn.u32(0);
    spit(p, intact + torn.bytes() + "partial");
    const auto size_before = std::filesystem::file_size(p);

    Journal::ScanResult scan;
    Journal::scan_file(p, scan);
    EXPECT_EQ(scan.meta, "meta-ro");
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].payload, "alpha");
    EXPECT_EQ(scan.records[1].payload, "beta");
    EXPECT_TRUE(scan.tail_truncated);
    EXPECT_GT(scan.dropped_bytes, 0u);
    // The file is byte-for-byte untouched — torn tail and all.
    EXPECT_EQ(std::filesystem::file_size(p), size_before);
    EXPECT_EQ(slurp(p).size(), size_before);

    // And the scan agrees with what open() would recover.
    Journal::ScanResult opened;
    Journal::open(p, opened);
    EXPECT_EQ(opened.meta, scan.meta);
    ASSERT_EQ(opened.records.size(), scan.records.size());
    for (std::size_t i = 0; i < opened.records.size(); ++i) {
        EXPECT_EQ(opened.records[i].type, scan.records[i].type);
        EXPECT_EQ(opened.records[i].payload, scan.records[i].payload);
    }
}

TEST_F(JournalTest, ScanFileWhileWriterHoldsAppendHandle) {
    // The daemon's point-in-time path: a read-only scan races no one —
    // the writer's appended records show up on the next scan.
    const std::string p = path("wal");
    Journal j = Journal::create(p, "m");
    j.append(1, "one");

    Journal::ScanResult scan;
    Journal::scan_file(p, scan);
    ASSERT_EQ(scan.records.size(), 1u);

    j.append(2, "two");  // writer continues on its own handle
    Journal::scan_file(p, scan);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[1].payload, "two");
    EXPECT_FALSE(scan.tail_truncated);

    j.append(3, "three");  // the scan did not break the writer
    Journal::scan_file(p, scan);
    ASSERT_EQ(scan.records.size(), 3u);
}

TEST_F(JournalTest, ScanFileThrowsLikeOpenOnBadHeaders) {
    Journal::ScanResult scan;
    EXPECT_THROW(Journal::scan_file(path("missing"), scan), JournalError);
    spit(path("garbage"), "definitely not a journal header at all");
    EXPECT_THROW(Journal::scan_file(path("garbage"), scan), JournalError);
}

TEST_F(JournalTest, TornTailIsTruncatedNotReplayed) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        j.append(1, "alpha");
        j.append(2, "beta");
    }
    const std::string intact = slurp(p);
    // Simulate a crash mid-append: a record frame whose payload never
    // made it to disk.
    BinaryWriter torn;
    torn.u16(3);
    torn.u32(100);  // claims 100 payload bytes...
    torn.u32(0);
    spit(p, intact + torn.bytes() + "only-a-few");  // ...delivers 10

    Journal::ScanResult scan;
    Journal::open(p, scan);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_TRUE(scan.tail_truncated);
    EXPECT_GT(scan.dropped_bytes, 0u);
    // The truncation is physical: a second open sees a clean log.
    EXPECT_EQ(slurp(p), intact);
    Journal::ScanResult scan2;
    Journal::open(p, scan2);
    EXPECT_FALSE(scan2.tail_truncated);
    ASSERT_EQ(scan2.records.size(), 2u);
}

TEST_F(JournalTest, CorruptTailChecksumIsDetectedAndDropped) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        j.append(1, "alpha");
        j.append(2, "beta");
    }
    std::string bytes = slurp(p);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5A);  // flip a payload bit
    spit(p, bytes);

    Journal::ScanResult scan;
    Journal::open(p, scan);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].payload, "alpha");
    EXPECT_TRUE(scan.tail_truncated);
}

TEST_F(JournalTest, AppendAfterTruncationContinuesCleanly) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        j.append(1, "alpha");
    }
    spit(p, slurp(p) + "garbage-tail");
    Journal::ScanResult scan;
    Journal j = Journal::open(p, scan);
    EXPECT_TRUE(scan.tail_truncated);
    j.append(2, "beta");
    Journal::ScanResult scan2;
    Journal::open(p, scan2);
    ASSERT_EQ(scan2.records.size(), 2u);
    EXPECT_EQ(scan2.records[1].payload, "beta");
    EXPECT_FALSE(scan2.tail_truncated);
}

TEST_F(JournalTest, BadMagicOrMetaChecksumThrows) {
    const std::string p = path("wal");
    { Journal::create(p, "meta"); }
    std::string bytes = slurp(p);
    {
        std::string evil = bytes;
        evil[0] = 'X';
        spit(p, evil);
        Journal::ScanResult scan;
        EXPECT_THROW(Journal::open(p, scan), JournalError);
    }
    {
        std::string evil = bytes;
        evil[bytes.size() - 1] = static_cast<char>(evil[bytes.size() - 1] ^ 0xFF);
        spit(p, evil);  // meta crc no longer matches
        Journal::ScanResult scan;
        EXPECT_THROW(Journal::open(p, scan), JournalError);
    }
    Journal::ScanResult scan;
    EXPECT_THROW(Journal::open(path("missing"), scan), JournalError);
}

TEST_F(JournalTest, DetachedJournalIsANoOp) {
    Journal j;
    EXPECT_FALSE(j.attached());
    j.append(1, "dropped");  // must not crash or write anywhere
    EXPECT_EQ(j.size_bytes(), 0u);
}

// The exhaustive torn-write matrix: tear the file at *every* byte
// offset of the record region. Whatever the offset, open() must land
// on a clean record prefix — never throw, never surface a partial
// record — and must truncate the file so a second open is clean.
TEST_F(JournalTest, TornTailMatrixAtEveryByteOffset) {
    const std::string p = path("wal");
    std::uint64_t header_end = 0;
    {
        Journal j = Journal::create(p, "matrix-meta");
        header_end = j.size_bytes();
        j.append(7, "first-payload");
        j.append(8, "");
        j.append(9, std::string("second\0payload", 14));
    }
    const std::string intact = slurp(p);
    // Frame boundaries: offsets at which a tear still leaves k whole
    // records (frame = 10 fixed bytes + payload).
    const std::uint64_t b1 = header_end + 10 + 13;
    const std::uint64_t b2 = b1 + 10;
    const std::uint64_t b3 = b2 + 10 + 14;
    ASSERT_EQ(intact.size(), b3);

    for (std::uint64_t cut = header_end; cut <= intact.size(); ++cut) {
        spit(p, intact.substr(0, cut));
        Journal::ScanResult scan;
        ASSERT_NO_THROW(Journal::open(p, scan)) << "cut at " << cut;
        const std::size_t expect =
            cut >= b3 ? 3u : (cut >= b2 ? 2u : (cut >= b1 ? 1u : 0u));
        ASSERT_EQ(scan.records.size(), expect) << "cut at " << cut;
        EXPECT_EQ(scan.tail_truncated, cut != b1 && cut != b2 && cut != b3 &&
                                           cut != header_end)
            << "cut at " << cut;
        if (!scan.records.empty()) {
            EXPECT_EQ(scan.records[0].payload, "first-payload");
        }
        // The truncation is physical: a re-open reports a clean log
        // and an append continues it.
        Journal::ScanResult again;
        Journal j = Journal::open(p, again);
        EXPECT_FALSE(again.tail_truncated) << "cut at " << cut;
        j.append(42, "resumed");
        Journal::ScanResult resumed;
        Journal::open(p, resumed);
        ASSERT_EQ(resumed.records.size(), expect + 1) << "cut at " << cut;
        EXPECT_EQ(resumed.records.back().payload, "resumed");
    }
}

TEST_F(JournalTest, FsyncOnAppendKnob) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m", /*fsync_on_append=*/true);
        EXPECT_TRUE(j.fsync_on_append());
        j.append(1, "durable");
        j.set_fsync_on_append(false);
        EXPECT_FALSE(j.fsync_on_append());
        j.append(2, "buffered");
        j.set_fsync_on_append(true);
        EXPECT_TRUE(j.fsync_on_append());
        j.append(3, "durable-again");
    }
    // The knob changes durability, never bytes: the log replays the
    // same either way.
    Journal::ScanResult scan;
    Journal j = Journal::open(p, scan, /*fsync_on_append=*/true);
    EXPECT_TRUE(j.fsync_on_append());
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].payload, "durable");
    EXPECT_EQ(scan.records[1].payload, "buffered");
    EXPECT_EQ(scan.records[2].payload, "durable-again");
}

TEST_F(JournalTest, RewriteCompactsAtomically) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        for (int i = 0; i < 8; ++i) {
            j.append(static_cast<std::uint16_t>(i + 1), std::string(100, 'x'));
        }
    }
    const auto before = std::filesystem::file_size(p);

    Journal::RewriteStats stats;
    Journal j = Journal::rewrite(p, "m", {JournalRecord{9, "suffix"}}, &stats);
    EXPECT_EQ(stats.records, 1u);
    EXPECT_EQ(stats.bytes_before, before);
    EXPECT_LT(stats.bytes_after, stats.bytes_before);
    EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));

    // The rewritten log is a normal journal: same meta, the kept
    // record, and the returned handle appends to it.
    j.append(10, "appended");
    Journal::ScanResult scan;
    Journal::open(p, scan);
    EXPECT_EQ(scan.meta, "m");
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].type, 9);
    EXPECT_EQ(scan.records[0].payload, "suffix");
    EXPECT_EQ(scan.records[1].payload, "appended");

    // Rewrite to empty = a fresh log with only the header.
    Journal::rewrite(p, "m", {});
    Journal::ScanResult empty;
    Journal::open(p, empty);
    EXPECT_EQ(empty.meta, "m");
    EXPECT_TRUE(empty.records.empty());
}

// ---- live-tail contract (pinned for the follower read tier) --------
//
// scan_file is the one journal entry point replicas may use against a
// file another process owns. These tests pin its read-only semantics:
// it never throws on damaged tails, never writes, and its cursor
// fields (header_end / valid_end / file_size) delimit exactly the
// prefix a tailer may consume.

TEST_F(JournalTest, ScanFileCursorFieldsDelimitTheValidPrefix) {
    const std::string p = path("wal");
    std::uint64_t header_end = 0;
    {
        Journal j = Journal::create(p, "cursor-meta");
        header_end = j.size_bytes();
        j.append(1, "alpha");
        j.append(2, "beta-longer");
    }
    const std::string intact = slurp(p);
    const std::uint64_t b1 = header_end + 10 + 5;
    const std::uint64_t b2 = b1 + 10 + 11;
    ASSERT_EQ(intact.size(), b2);

    // Clean log: the valid prefix is the whole file.
    Journal::ScanResult scan;
    Journal::scan_file(p, scan);
    EXPECT_EQ(scan.header_end, header_end);
    EXPECT_EQ(scan.valid_end, b2);
    EXPECT_EQ(scan.file_size, b2);

    // In-progress append (torn tail): valid_end stops at the last
    // record boundary, file_size reports the physical tail beyond it.
    spit(p, intact + std::string(7, '\x7f'));
    Journal::ScanResult torn;
    ASSERT_NO_THROW(Journal::scan_file(p, torn));
    EXPECT_EQ(torn.header_end, header_end);
    EXPECT_EQ(torn.valid_end, b2);
    EXPECT_EQ(torn.file_size, b2 + 7);
    EXPECT_TRUE(torn.tail_truncated);
    ASSERT_EQ(torn.records.size(), 2u);

    // A tear *inside* a record pulls valid_end back to the previous
    // boundary; a scan never rounds forward into damaged bytes.
    spit(p, intact.substr(0, b2 - 3));
    Journal::ScanResult mid;
    ASSERT_NO_THROW(Journal::scan_file(p, mid));
    EXPECT_EQ(mid.valid_end, b1);
    EXPECT_EQ(mid.file_size, b2 - 3);
    ASSERT_EQ(mid.records.size(), 1u);
    EXPECT_EQ(mid.records[0].payload, "alpha");
}

TEST_F(JournalTest, ScanFileNeverRepairsTornOrCorruptTails) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        j.append(1, "alpha");
        j.append(2, "beta");
    }
    std::string bytes = slurp(p);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x10);  // corrupt last record
    bytes += "and-a-torn-frame-behind-it";                  // plus torn garbage
    spit(p, bytes);

    // Repeated scans are stable, silent, and leave the file untouched:
    // the tailer keeps the last good prefix, the *writer* decides
    // whether to truncate (via open) — never the reader.
    for (int round = 0; round < 3; ++round) {
        Journal::ScanResult scan;
        ASSERT_NO_THROW(Journal::scan_file(p, scan)) << "round " << round;
        ASSERT_EQ(scan.records.size(), 1u) << "round " << round;
        EXPECT_EQ(scan.records[0].payload, "alpha");
        EXPECT_TRUE(scan.tail_truncated);
        EXPECT_LT(scan.valid_end, scan.file_size);
        EXPECT_EQ(slurp(p), bytes) << "scan_file wrote to the file";
    }
}

TEST_F(JournalTest, FileIdentityPinsTheJournalGeneration) {
    const std::string p = path("wal");
    {
        Journal j = Journal::create(p, "m");
        j.append(1, "alpha");
    }
    const std::uint64_t id = Journal::file_identity(p);
    EXPECT_NE(id, 0u);
    EXPECT_EQ(Journal::file_identity(path("missing")), 0u);

    // Appends and in-place corruption keep the identity: same inode,
    // same generation — a tailer must not re-bootstrap over these.
    {
        Journal::ScanResult scan;
        Journal j = Journal::open(p, scan);
        j.append(2, "beta");
    }
    EXPECT_EQ(Journal::file_identity(p), id);
    spit(p, slurp(p));  // in-place rewrite keeps the inode
    EXPECT_EQ(Journal::file_identity(p), id);

    // Compaction swaps a new file into place: new generation.
    Journal::rewrite(p, "m", {JournalRecord{3, "compacted"}});
    EXPECT_NE(Journal::file_identity(p), id);
}

}  // namespace
}  // namespace poc::util
