#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace poc::util {
namespace {

using AppleId = Id<struct AppleTag>;
using PearId = Id<struct PearTag>;

TEST(Ids, DefaultIsInvalid) {
    AppleId id;
    EXPECT_FALSE(id.valid());
}

TEST(Ids, ConstructedIsValid) {
    AppleId id{3u};
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.value(), 3u);
    EXPECT_EQ(id.index(), 3u);
}

TEST(Ids, ComparisonAndOrdering) {
    EXPECT_EQ(AppleId{1u}, AppleId{1u});
    EXPECT_NE(AppleId{1u}, AppleId{2u});
    EXPECT_LT(AppleId{1u}, AppleId{2u});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
    static_assert(!std::is_same_v<AppleId, PearId>);
    static_assert(!std::is_convertible_v<AppleId, PearId>);
}

TEST(Ids, Hashable) {
    std::unordered_set<AppleId> set;
    set.insert(AppleId{1u});
    set.insert(AppleId{1u});
    set.insert(AppleId{2u});
    EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamsValueOrInvalid) {
    std::ostringstream os;
    os << AppleId{5u} << " " << AppleId{};
    EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(Ids, SizeTConstructionTruncatesConsistently) {
    AppleId id{std::size_t{7}};
    EXPECT_EQ(id.value(), 7u);
}

}  // namespace
}  // namespace poc::util
