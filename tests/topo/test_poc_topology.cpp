#include "topo/poc_topology.hpp"

#include <gtest/gtest.h>

#include "net/connectivity.hpp"
#include "util/contracts.hpp"

namespace poc::topo {
namespace {

std::vector<BpNetwork> small_bps(std::uint64_t seed = 11) {
    BpGeneratorOptions opt;
    opt.bp_count = 8;
    opt.min_cities = 8;
    opt.max_cities = 18;
    opt.seed = seed;
    return generate_bp_networks(opt);
}

PocTopologyOptions loose_options() {
    PocTopologyOptions opt;
    opt.min_colocated_bps = 3;
    return opt;
}

TEST(PocTopology, RoutersOnlyAtColocatedCities) {
    const auto bps = small_bps();
    const auto presence = bp_presence_by_city(bps, world_cities().size());
    const auto topo = build_poc_topology(bps, loose_options());
    for (const std::size_t city : topo.router_city) {
        EXPECT_GE(presence[city], 3u);
    }
}

TEST(PocTopology, HigherThresholdFewerRouters) {
    const auto bps = small_bps();
    PocTopologyOptions lo = loose_options();
    PocTopologyOptions hi = loose_options();
    hi.min_colocated_bps = 5;
    const auto t_lo = build_poc_topology(bps, lo);
    const auto t_hi = build_poc_topology(bps, hi);
    EXPECT_GE(t_lo.router_city.size(), t_hi.router_city.size());
}

TEST(PocTopology, LinkOwnersAligned) {
    const auto topo = build_poc_topology(small_bps(), loose_options());
    EXPECT_EQ(topo.link_owner.size(), topo.graph.link_count());
    for (const std::uint32_t owner : topo.link_owner) {
        EXPECT_LT(owner, topo.bp_count);
    }
}

TEST(PocTopology, SharesSumToOne) {
    const auto topo = build_poc_topology(small_bps(), loose_options());
    double total = 0.0;
    for (std::size_t b = 0; b < topo.bp_count; ++b) {
        total += topo.share_of(static_cast<std::uint32_t>(b));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PocTopology, LinksOfMatchesOwnership) {
    const auto topo = build_poc_topology(small_bps(), loose_options());
    std::size_t counted = 0;
    for (std::size_t b = 0; b < topo.bp_count; ++b) {
        for (const net::LinkId l : topo.links_of(static_cast<std::uint32_t>(b))) {
            EXPECT_EQ(topo.link_owner[l.index()], b);
            ++counted;
        }
    }
    EXPECT_EQ(counted, topo.graph.link_count());
}

TEST(PocTopology, CircuitousnessBoundRespected) {
    const PocTopologyOptions opt = loose_options();
    const auto topo = build_poc_topology(small_bps(), opt);
    const auto& cities = world_cities();
    for (const net::LinkId l : topo.graph.all_links()) {
        const net::Link& link = topo.graph.link(l);
        const double direct =
            haversine_km(cities[topo.router_city[link.a.index()]].location,
                         cities[topo.router_city[link.b.index()]].location);
        EXPECT_LE(link.length_km, opt.max_circuitousness * std::max(direct, 1.0) + 1e-6);
        EXPECT_LE(link.length_km, opt.max_circuit_km + 1e-6);
        EXPECT_GT(link.capacity_gbps, 0.0);
    }
}

TEST(PocTopology, LogicalLengthAtLeastDirectDistance) {
    // A realizing path cannot be shorter than the great-circle distance.
    const auto topo = build_poc_topology(small_bps(), loose_options());
    const auto& cities = world_cities();
    for (const net::LinkId l : topo.graph.all_links()) {
        const net::Link& link = topo.graph.link(l);
        const double direct =
            haversine_km(cities[topo.router_city[link.a.index()]].location,
                         cities[topo.router_city[link.b.index()]].location);
        EXPECT_GE(link.length_km, direct - 1.0);
    }
}

TEST(PocTopology, DefaultScaleApproximatesPaper) {
    // Full-scale defaults: ~20 BPs, thousands of logical links, shares
    // spread over roughly an order of magnitude (paper: 2%..12%).
    const auto bps = generate_bp_networks({});
    const auto topo = build_poc_topology(bps);
    EXPECT_GE(topo.graph.link_count(), 2000u);
    EXPECT_LE(topo.graph.link_count(), 8000u);
    double max_share = 0.0;
    for (std::size_t b = 0; b < topo.bp_count; ++b) {
        max_share = std::max(max_share, topo.share_of(static_cast<std::uint32_t>(b)));
    }
    EXPECT_GE(max_share, 0.06);
    EXPECT_LE(max_share, 0.20);
}

TEST(PocTopology, GraphIsConnected) {
    const auto topo = build_poc_topology(small_bps(), loose_options());
    const net::Subgraph sg(topo.graph);
    EXPECT_TRUE(net::spanning_connected(sg));
}

TEST(PocTopology, RejectsEmptyInput) {
    EXPECT_THROW(build_poc_topology({}, loose_options()), util::ContractViolation);
}

}  // namespace
}  // namespace poc::topo
