// Synthetic continental topology generator (DESIGN.md §9): region-major
// id layout, connectivity, determinism, sizing, and the bounded-source
// heavy-tailed traffic generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "net/connectivity.hpp"
#include "topo/synthetic.hpp"

using namespace poc;

namespace {

TEST(SyntheticTopology, RegionMajorLayoutAndCoordinates) {
    topo::SyntheticTopologyOptions opt;
    opt.nodes = 500;
    opt.regions = 9;
    const topo::SyntheticTopology t = topo::build_synthetic_topology(opt);

    ASSERT_EQ(t.graph.node_count(), opt.nodes);
    ASSERT_EQ(t.region_of.size(), opt.nodes);
    ASSERT_EQ(t.x_km.size(), opt.nodes);
    ASSERT_EQ(t.y_km.size(), opt.nodes);
    EXPECT_EQ(t.region_count, opt.regions);

    // region_of is nondecreasing (region-major ids) and covers every
    // region; region_range agrees with it.
    EXPECT_TRUE(std::is_sorted(t.region_of.begin(), t.region_of.end()));
    EXPECT_EQ(t.region_of.front(), 0u);
    EXPECT_EQ(t.region_of.back(), opt.regions - 1);
    std::size_t covered = 0;
    for (std::size_t r = 0; r < t.region_count; ++r) {
        const auto [lo, hi] = t.region_range(r);
        EXPECT_LT(lo, hi) << "region " << r << " empty";
        covered += hi.index() - lo.index();
        for (std::size_t i = lo.index(); i < hi.index(); ++i) {
            EXPECT_EQ(t.region_of[i], r);
        }
    }
    EXPECT_EQ(covered, opt.nodes);

    // Coordinates live inside their region's grid cell.
    const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(9.0)));
    for (std::size_t i = 0; i < opt.nodes; ++i) {
        const std::size_t r = t.region_of[i];
        const double cx = static_cast<double>(r % cols) * opt.region_span_km;
        const double cy = static_cast<double>(r / cols) * opt.region_span_km;
        EXPECT_GE(t.x_km[i], cx);
        EXPECT_LE(t.x_km[i], cx + opt.region_span_km);
        EXPECT_GE(t.y_km[i], cy);
        EXPECT_LE(t.y_km[i], cy + opt.region_span_km);
    }
}

TEST(SyntheticTopology, ConnectedWithPositiveLengthsAndBoundedCapacities) {
    topo::SyntheticTopologyOptions opt;
    opt.nodes = 1200;
    opt.regions = 16;
    opt.avg_degree = 4.0;
    const topo::SyntheticTopology t = topo::build_synthetic_topology(opt);

    EXPECT_EQ(net::connected_components(net::Subgraph(t.graph)).count, 1u);
    // Degree budget reached (the skeleton alone is smaller).
    EXPECT_GE(t.graph.link_count(),
              static_cast<std::size_t>(static_cast<double>(opt.nodes) * opt.avg_degree / 2.0));
    for (const net::LinkId l : t.graph.all_links()) {
        const net::Link& link = t.graph.link(l);
        EXPECT_GE(link.length_km, 0.0);
        EXPECT_GE(link.capacity_gbps, opt.min_capacity_gbps);
        EXPECT_LE(link.capacity_gbps, opt.max_capacity_gbps);
    }
}

TEST(SyntheticTopology, DeterministicInOptionsAndSeedSensitive) {
    topo::SyntheticTopologyOptions opt;
    opt.nodes = 300;
    opt.regions = 4;
    const topo::SyntheticTopology a = topo::build_synthetic_topology(opt);
    const topo::SyntheticTopology b = topo::build_synthetic_topology(opt);
    ASSERT_EQ(a.graph.link_count(), b.graph.link_count());
    for (const net::LinkId l : a.graph.all_links()) {
        EXPECT_EQ(a.graph.link(l).a, b.graph.link(l).a);
        EXPECT_EQ(a.graph.link(l).b, b.graph.link(l).b);
        EXPECT_EQ(a.graph.link(l).capacity_gbps, b.graph.link(l).capacity_gbps);
        EXPECT_EQ(a.graph.link(l).length_km, b.graph.link(l).length_km);
    }
    EXPECT_EQ(a.x_km, b.x_km);

    opt.seed += 1;
    const topo::SyntheticTopology c = topo::build_synthetic_topology(opt);
    EXPECT_NE(a.x_km, c.x_km);
}

TEST(SyntheticTopology, MoreRegionsThanNodesClampsAndStaysConnected) {
    topo::SyntheticTopologyOptions opt;
    opt.nodes = 5;
    opt.regions = 64;
    const topo::SyntheticTopology t = topo::build_synthetic_topology(opt);
    EXPECT_EQ(t.region_count, opt.nodes);
    EXPECT_EQ(net::connected_components(net::Subgraph(t.graph)).count, 1u);
}

TEST(ContinentalTraffic, BoundedSourcesExactTotalAndDeterminism) {
    const topo::SyntheticTopology t = topo::build_synthetic_topology(
        {.nodes = 400, .regions = 8, .seed = 5});
    topo::ContinentalTrafficOptions opt;
    opt.demands = 3000;
    opt.total_gbps = 1234.5;
    opt.max_sources = 32;
    const net::TrafficMatrix tm = topo::continental_traffic(t, opt);

    ASSERT_EQ(tm.size(), opt.demands);
    std::set<net::NodeId> sources;
    double total = 0.0;
    for (const net::Demand& d : tm) {
        EXPECT_NE(d.src, d.dst);
        EXPECT_GT(d.gbps, 0.0);
        sources.insert(d.src);
        total += d.gbps;
    }
    EXPECT_LE(sources.size(), opt.max_sources);
    EXPECT_GE(sources.size(), opt.max_sources / 2);  // nearly all hit at 3000 draws
    EXPECT_NEAR(total, opt.total_gbps, 1e-6 * opt.total_gbps);

    const net::TrafficMatrix again = topo::continental_traffic(t, opt);
    ASSERT_EQ(again.size(), tm.size());
    for (std::size_t j = 0; j < tm.size(); ++j) {
        EXPECT_EQ(again[j].src, tm[j].src);
        EXPECT_EQ(again[j].dst, tm[j].dst);
        EXPECT_EQ(again[j].gbps, tm[j].gbps);
    }
}

}  // namespace
