#include "topo/geo.hpp"

#include <gtest/gtest.h>

#include <set>

namespace poc::topo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
    const GeoPoint p{40.0, -74.0};
    EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
    const GeoPoint a{40.71, -74.01};
    const GeoPoint b{51.51, -0.13};
    EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, NewYorkToLondonApprox) {
    const GeoPoint ny{40.71, -74.01};
    const GeoPoint lon{51.51, -0.13};
    const double d = haversine_km(ny, lon);
    EXPECT_NEAR(d, 5570.0, 60.0);  // great-circle ~5570 km
}

TEST(Haversine, EquatorQuarterTurn) {
    const GeoPoint a{0.0, 0.0};
    const GeoPoint b{0.0, 90.0};
    EXPECT_NEAR(haversine_km(a, b), 6371.0 * 3.14159265 / 2.0, 5.0);
}

TEST(Haversine, Antipodes) {
    const GeoPoint a{0.0, 0.0};
    const GeoPoint b{0.0, 180.0};
    EXPECT_NEAR(haversine_km(a, b), 6371.0 * 3.14159265, 5.0);
}

TEST(Haversine, TriangleInequalityOnSamples) {
    const auto& cities = world_cities();
    const GeoPoint a = cities[0].location;
    const GeoPoint b = cities[20].location;
    const GeoPoint c = cities[40].location;
    EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-6);
}

TEST(WorldCities, HasEnoughEntriesForTopologies) {
    EXPECT_GE(world_cities().size(), 60u);
}

TEST(WorldCities, NamesUniqueAndDataSane) {
    std::set<std::string> names;
    for (const City& c : world_cities()) {
        EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
        EXPECT_GT(c.population_m, 0.0);
        EXPECT_GE(c.location.lat_deg, -90.0);
        EXPECT_LE(c.location.lat_deg, 90.0);
        EXPECT_GE(c.location.lon_deg, -180.0);
        EXPECT_LE(c.location.lon_deg, 180.0);
    }
}

TEST(WorldCities, StableReference) {
    // Same vector object across calls (indices are stable ids).
    EXPECT_EQ(&world_cities(), &world_cities());
}

}  // namespace
}  // namespace poc::topo
