#include "topo/traffic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/contracts.hpp"

namespace poc::topo {
namespace {

PocTopology fixture_topology() {
    BpGeneratorOptions opt;
    opt.bp_count = 8;
    opt.min_cities = 8;
    opt.max_cities = 18;
    opt.seed = 13;
    PocTopologyOptions popt;
    popt.min_colocated_bps = 3;
    return build_poc_topology(generate_bp_networks(opt), popt);
}

TEST(GravityTraffic, TotalMatchesTarget) {
    const auto topo = fixture_topology();
    GravityOptions opt;
    opt.total_gbps = 1234.0;
    const auto tm = gravity_traffic(topo, opt);
    EXPECT_NEAR(net::total_demand(tm), 1234.0, 1e-6);
}

TEST(GravityTraffic, NoSelfDemands) {
    const auto tm = gravity_traffic(fixture_topology(), {});
    for (const net::Demand& d : tm) {
        EXPECT_NE(d.src, d.dst);
        EXPECT_GT(d.gbps, 0.0);
    }
}

TEST(GravityTraffic, FloorSparsifies) {
    const auto topo = fixture_topology();
    GravityOptions dense;
    dense.floor_fraction = 0.0;
    GravityOptions sparse;
    sparse.floor_fraction = 0.2;
    EXPECT_GT(gravity_traffic(topo, dense).size(), gravity_traffic(topo, sparse).size());
}

TEST(GravityTraffic, LargerMetrosAttractMoreTraffic) {
    const auto topo = fixture_topology();
    GravityOptions opt;
    opt.floor_fraction = 0.0;
    const auto tm = gravity_traffic(topo, opt);
    // Sum inbound per router; correlate with population rank loosely:
    // the max-population router should receive more than the min one.
    const auto& cities = world_cities();
    std::vector<double> inbound(topo.router_city.size(), 0.0);
    for (const net::Demand& d : tm) inbound[d.dst.index()] += d.gbps;
    std::size_t big = 0;
    std::size_t small = 0;
    for (std::size_t i = 0; i < topo.router_city.size(); ++i) {
        if (cities[topo.router_city[i]].population_m >
            cities[topo.router_city[big]].population_m) {
            big = i;
        }
        if (cities[topo.router_city[i]].population_m <
            cities[topo.router_city[small]].population_m) {
            small = i;
        }
    }
    EXPECT_GT(inbound[big], inbound[small]);
}

TEST(UniformTraffic, EqualDemandsCoverAllPairs) {
    const auto topo = fixture_topology();
    const auto tm = uniform_traffic(topo, 100.0);
    const std::size_t n = topo.router_city.size();
    EXPECT_EQ(tm.size(), n * (n - 1));
    for (const net::Demand& d : tm) EXPECT_NEAR(d.gbps, tm.front().gbps, 1e-12);
    EXPECT_NEAR(net::total_demand(tm), 100.0, 1e-9);
}

TEST(HotspotTraffic, TotalPreservedAndHotspotsDominant) {
    const auto topo = fixture_topology();
    const auto tm = hotspot_traffic(topo, 500.0, 2, 0.6);
    EXPECT_NEAR(net::total_demand(tm), 500.0, 1e-6);
    // The two hotspot routers should source a large share of traffic.
    std::vector<double> outbound(topo.router_city.size(), 0.0);
    for (const net::Demand& d : tm) outbound[d.src.index()] += d.gbps;
    std::vector<double> sorted = outbound;
    std::sort(sorted.rbegin(), sorted.rend());
    EXPECT_GT(sorted[0] + sorted[1], 0.35 * 500.0);
}

TEST(AggregateTopN, KeepsLargestAndPreservesTotal) {
    const auto topo = fixture_topology();
    const auto tm = gravity_traffic(topo, {});
    const auto small = aggregate_top_n(tm, 10);
    EXPECT_EQ(small.size(), 10u);
    EXPECT_NEAR(net::total_demand(small), net::total_demand(tm), 1e-6);
    // The kept demands are the biggest ones (scaled up, so each kept
    // demand must be at least its original size).
    for (std::size_t i = 0; i + 1 < small.size(); ++i) {
        EXPECT_GE(small[i].gbps, small[i + 1].gbps - 1e-9);
    }
}

TEST(AggregateTopN, NoopWhenAlreadySmall) {
    const auto topo = fixture_topology();
    const auto tm = uniform_traffic(topo, 10.0);
    const auto same = aggregate_top_n(tm, tm.size() + 5);
    EXPECT_EQ(same.size(), tm.size());
}

TEST(ScaleTraffic, MultipliesEveryDemand) {
    const auto topo = fixture_topology();
    const auto tm = uniform_traffic(topo, 10.0);
    const auto doubled = scale_traffic(tm, 2.0);
    EXPECT_NEAR(net::total_demand(doubled), 20.0, 1e-9);
    EXPECT_THROW(scale_traffic(tm, -1.0), util::ContractViolation);
}

TEST(GravityTraffic, RejectsBadOptions) {
    const auto topo = fixture_topology();
    GravityOptions opt;
    opt.total_gbps = 0.0;
    EXPECT_THROW(gravity_traffic(topo, opt), util::ContractViolation);
}

}  // namespace
}  // namespace poc::topo
