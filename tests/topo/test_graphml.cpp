#include "topo/graphml.hpp"

#include <gtest/gtest.h>

#include "net/connectivity.hpp"
#include "util/contracts.hpp"

namespace poc::topo {
namespace {

// A TopologyZoo-style fragment: 4 located nodes (NYC, Chicago, Dallas,
// San Jose areas), one unlocated placeholder, 4 edges.
const char* kSample = R"(<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="Latitude" attr.type="double" for="node" id="d29" />
  <key attr.name="Longitude" attr.type="double" for="node" id="d32" />
  <key attr.name="label" attr.type="string" for="node" id="d33" />
  <key attr.name="Network" attr.type="string" for="graph" id="d5" />
  <graph edgedefault="undirected">
    <data key="d5">SampleNet</data>
    <node id="0">
      <data key="d33">NewYorkPop</data>
      <data key="d29">40.7</data>
      <data key="d32">-74.0</data>
    </node>
    <node id="1">
      <data key="d33">ChicagoPop</data>
      <data key="d29">41.9</data>
      <data key="d32">-87.6</data>
    </node>
    <node id="2">
      <data key="d33">DallasPop</data>
      <data key="d29">32.8</data>
      <data key="d32">-96.8</data>
    </node>
    <node id="3">
      <data key="d33">SanJosePop</data>
      <data key="d29">37.3</data>
      <data key="d32">-121.9</data>
    </node>
    <node id="4">
      <data key="d33">UnknownPop</data>
    </node>
    <edge source="0" target="1" />
    <edge source="1" target="2" />
    <edge source="2" target="3" />
    <edge source="0" target="4" />
  </graph>
</graphml>
)";

TEST(GraphmlParser, ReadsNodesEdgesAndGraphName) {
    const ZooGraph g = parse_graphml(kSample);
    EXPECT_EQ(g.name, "SampleNet");
    ASSERT_EQ(g.nodes.size(), 5u);
    ASSERT_EQ(g.edges.size(), 4u);
    EXPECT_EQ(g.nodes[0].label, "NewYorkPop");
    ASSERT_TRUE(g.nodes[0].location.has_value());
    EXPECT_NEAR(g.nodes[0].location->lat_deg, 40.7, 1e-9);
    EXPECT_NEAR(g.nodes[0].location->lon_deg, -74.0, 1e-9);
    EXPECT_FALSE(g.nodes[4].location.has_value());
}

TEST(GraphmlParser, NodeIndexLookup) {
    const ZooGraph g = parse_graphml(kSample);
    ASSERT_TRUE(g.node_index("2").has_value());
    EXPECT_EQ(*g.node_index("2"), 2u);
    EXPECT_FALSE(g.node_index("99").has_value());
}

TEST(GraphmlParser, RejectsEdgeToUnknownNode) {
    const std::string bad = R"(<graphml><graph>
        <node id="a" />
        <edge source="a" target="missing" />
    </graph></graphml>)";
    EXPECT_THROW(parse_graphml(bad), util::ContractViolation);
}

TEST(GraphmlParser, RejectsUnclosedTag) {
    EXPECT_THROW(parse_graphml("<graphml><node id=\"x\""), util::ContractViolation);
}

TEST(GraphmlParser, SelfClosingNodesSupported) {
    const ZooGraph g = parse_graphml(R"(<graphml><graph>
        <node id="a" /><node id="b" />
        <edge source="a" target="b" />
    </graph></graphml>)");
    EXPECT_EQ(g.nodes.size(), 2u);
    EXPECT_EQ(g.edges.size(), 1u);
}

TEST(GraphmlParser, SingleQuotedAttributes) {
    const ZooGraph g = parse_graphml("<graphml><graph><node id='n1' /></graph></graphml>");
    ASSERT_EQ(g.nodes.size(), 1u);
    EXPECT_EQ(g.nodes[0].id, "n1");
}

// Malformed-input hardening: every corruption is rejected with a
// structured GraphmlParseError (message + byte offset), never a crash
// or a silently-wrong graph.

TEST(GraphmlParser, TruncatedFileReportsOffset) {
    const std::string truncated = "<graphml><graph><node id=\"a\" /><edge source=\"a";
    try {
        parse_graphml(truncated);
        FAIL() << "expected GraphmlParseError";
    } catch (const GraphmlParseError& e) {
        EXPECT_NE(e.message().find("unclosed tag"), std::string::npos) << e.what();
        EXPECT_EQ(e.offset(), truncated.find("<edge"));
    }
}

TEST(GraphmlParser, RejectsNodeWithoutId) {
    EXPECT_THROW(parse_graphml("<graphml><graph><node /></graph></graphml>"),
                 GraphmlParseError);
}

TEST(GraphmlParser, RejectsDuplicateNodeIds) {
    const std::string dup = R"(<graphml><graph>
        <node id="a" /><node id="b" /><node id="a" />
    </graph></graphml>)";
    try {
        parse_graphml(dup);
        FAIL() << "expected GraphmlParseError";
    } catch (const GraphmlParseError& e) {
        EXPECT_NE(e.message().find("duplicate node id 'a'"), std::string::npos) << e.what();
    }
}

TEST(GraphmlParser, RejectsEdgeMissingEndpointAttribute) {
    EXPECT_THROW(parse_graphml(R"(<graphml><graph>
        <node id="a" /><edge source="a" />
    </graph></graphml>)"),
                 GraphmlParseError);
    EXPECT_THROW(parse_graphml(R"(<graphml><graph>
        <node id="a" /><edge target="a" />
    </graph></graphml>)"),
                 GraphmlParseError);
}

TEST(GraphmlParser, RejectsDuplicateEdgeIds) {
    EXPECT_THROW(parse_graphml(R"(<graphml><graph>
        <node id="a" /><node id="b" />
        <edge id="e0" source="a" target="b" />
        <edge id="e0" source="b" target="a" />
    </graph></graphml>)"),
                 GraphmlParseError);
    // Absent/empty ids never collide (TopologyZoo edges carry none).
    const ZooGraph ok = parse_graphml(R"(<graphml><graph>
        <node id="a" /><node id="b" />
        <edge source="a" target="b" />
        <edge source="b" target="a" />
    </graph></graphml>)");
    EXPECT_EQ(ok.edges.size(), 2u);
}

TEST(GraphmlParser, EdgeIdsAreParsed) {
    const ZooGraph g = parse_graphml(R"(<graphml><graph>
        <node id="a" /><node id="b" />
        <edge id="e7" source="a" target="b" />
    </graph></graphml>)");
    ASSERT_EQ(g.edges.size(), 1u);
    EXPECT_EQ(g.edges[0].id, "e7");
}

TEST(GraphmlParser, RejectsUnclosedDataElement) {
    EXPECT_THROW(parse_graphml(R"(<graphml>
        <key attr.name="Latitude" id="dlat" />
        <graph><node id="a"><data key="dlat">40.7</node></graph></graphml>)"),
                 GraphmlParseError);
}

TEST(GraphmlParser, RejectsNonNumericCoordinates) {
    const std::string bad_lat = R"(<graphml>
        <key attr.name="Latitude" id="dlat" />
        <key attr.name="Longitude" id="dlon" />
        <graph><node id="a">
          <data key="dlat">forty point seven</data>
          <data key="dlon">-74.0</data>
        </node></graph></graphml>)";
    try {
        parse_graphml(bad_lat);
        FAIL() << "expected GraphmlParseError";
    } catch (const GraphmlParseError& e) {
        EXPECT_NE(e.message().find("Latitude"), std::string::npos) << e.what();
    }
    // Trailing garbage after the number is rejected too.
    EXPECT_THROW(parse_graphml(R"(<graphml>
        <key attr.name="Longitude" id="dlon" />
        <graph><node id="a"><data key="dlon">-74.0abc</data></node></graph></graphml>)"),
                 GraphmlParseError);
    // Whitespace around the number is fine (Zoo files have it).
    const ZooGraph ok = parse_graphml(R"(<graphml>
        <key attr.name="Latitude" id="dlat" />
        <key attr.name="Longitude" id="dlon" />
        <graph><node id="a">
          <data key="dlat">40.7 </data>
          <data key="dlon">-74.0</data>
        </node></graph></graphml>)");
    ASSERT_TRUE(ok.nodes[0].location.has_value());
}

TEST(GraphmlParser, ForwardEdgeReferencesAreLegal) {
    // GraphML allows an edge to cite a node declared later.
    const ZooGraph g = parse_graphml(R"(<graphml><graph>
        <node id="a" />
        <edge source="a" target="b" />
        <node id="b" />
    </graph></graphml>)");
    EXPECT_EQ(g.edges.size(), 1u);
}

TEST(BpFromZoo, MapsToNearestGazetteerCities) {
    const ZooGraph g = parse_graphml(kSample);
    const BpNetwork bp = bp_from_zoo(g);
    EXPECT_EQ(bp.name, "SampleNet");
    // 4 located nodes near 4 distinct metros.
    EXPECT_EQ(bp.cities.size(), 4u);
    const auto& cities = world_cities();
    bool found_ny = false;
    for (const std::size_t ci : bp.cities) {
        if (cities[ci].name == "NewYork") found_ny = true;
    }
    EXPECT_TRUE(found_ny);
}

TEST(BpFromZoo, DropsEdgesWithUnlocatedEndpoints) {
    const ZooGraph g = parse_graphml(kSample);
    const BpNetwork bp = bp_from_zoo(g);
    // Edge 0-4 dropped (node 4 unlocated): 3 physical links remain.
    EXPECT_EQ(bp.physical.link_count(), 3u);
}

TEST(BpFromZoo, MergesColocatedNodesAndDropsSelfLoops) {
    const std::string two_nyc = R"(<graphml>
      <key attr.name="Latitude" attr.type="double" for="node" id="dlat" />
      <key attr.name="Longitude" attr.type="double" for="node" id="dlon" />
      <graph>
        <node id="a"><data key="dlat">40.70</data><data key="dlon">-74.00</data></node>
        <node id="b"><data key="dlat">40.75</data><data key="dlon">-73.98</data></node>
        <node id="c"><data key="dlat">41.88</data><data key="dlon">-87.63</data></node>
        <edge source="a" target="b" />
        <edge source="a" target="c" />
        <edge source="b" target="c" />
      </graph></graphml>)";
    const BpNetwork bp = bp_from_zoo(parse_graphml(two_nyc));
    // a and b merge into NewYork; a-b becomes a self-loop (dropped);
    // a-c and b-c merge into one NewYork-Chicago circuit.
    EXPECT_EQ(bp.cities.size(), 2u);
    EXPECT_EQ(bp.physical.link_count(), 1u);
}

TEST(BpFromZoo, ImportedNetworkUsableDownstream) {
    const ZooGraph g = parse_graphml(kSample);
    const BpNetwork bp = bp_from_zoo(g);
    const net::Subgraph sg(bp.physical);
    EXPECT_TRUE(net::spanning_connected(sg));
    for (const net::LinkId l : bp.physical.all_links()) {
        EXPECT_GT(bp.physical.link(l).capacity_gbps, 0.0);
        EXPECT_GT(bp.physical.link(l).length_km, 0.0);
    }
}

TEST(BpFromZoo, CapacityOptionHonored) {
    ZooImportOptions opt;
    opt.capacity_gbps = 400.0;
    const BpNetwork bp = bp_from_zoo(parse_graphml(kSample), opt);
    for (const net::LinkId l : bp.physical.all_links()) {
        EXPECT_DOUBLE_EQ(bp.physical.link(l).capacity_gbps, 400.0);
    }
}

TEST(BpFromZoo, RejectsUnlocatedWhenConfigured) {
    ZooImportOptions opt;
    opt.drop_unlocated = false;
    EXPECT_THROW(bp_from_zoo(parse_graphml(kSample), opt), util::ContractViolation);
}

}  // namespace
}  // namespace poc::topo
