#include "topo/bp_network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/connectivity.hpp"
#include "util/contracts.hpp"

namespace poc::topo {
namespace {

BpGeneratorOptions small_options(std::uint64_t seed = 1) {
    BpGeneratorOptions opt;
    opt.bp_count = 6;
    opt.min_cities = 5;
    opt.max_cities = 12;
    opt.seed = seed;
    return opt;
}

TEST(BpGenerator, ProducesRequestedCount) {
    const auto bps = generate_bp_networks(small_options());
    EXPECT_EQ(bps.size(), 6u);
}

TEST(BpGenerator, DeterministicInSeed) {
    const auto a = generate_bp_networks(small_options(42));
    const auto b = generate_bp_networks(small_options(42));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cities, b[i].cities);
        EXPECT_EQ(a[i].physical.link_count(), b[i].physical.link_count());
    }
}

TEST(BpGenerator, DifferentSeedsDiffer) {
    const auto a = generate_bp_networks(small_options(1));
    const auto b = generate_bp_networks(small_options(2));
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_different |= a[i].cities != b[i].cities;
    }
    EXPECT_TRUE(any_different);
}

TEST(BpGenerator, EveryNetworkConnected) {
    for (const auto& bp : generate_bp_networks(small_options(3))) {
        const net::Subgraph sg(bp.physical);
        EXPECT_TRUE(net::spanning_connected(sg)) << bp.name;
        EXPECT_EQ(net::connected_components(sg).count, 1u) << bp.name;
    }
}

TEST(BpGenerator, CityCountsWithinRange) {
    const auto opt = small_options(4);
    for (const auto& bp : generate_bp_networks(opt)) {
        EXPECT_GE(bp.cities.size(), opt.min_cities);
        EXPECT_LE(bp.cities.size(), opt.max_cities);
        EXPECT_EQ(bp.cities.size(), bp.physical.node_count());
    }
}

TEST(BpGenerator, CitiesDistinctAndSorted) {
    for (const auto& bp : generate_bp_networks(small_options(5))) {
        std::set<std::size_t> unique(bp.cities.begin(), bp.cities.end());
        EXPECT_EQ(unique.size(), bp.cities.size());
        EXPECT_TRUE(std::is_sorted(bp.cities.begin(), bp.cities.end()));
    }
}

TEST(BpGenerator, SizesRampDownward) {
    // BP1 (index 0) should generally be the largest.
    const auto bps = generate_bp_networks(small_options(6));
    EXPECT_GE(bps.front().cities.size(), bps.back().cities.size());
}

TEST(BpGenerator, LinkAttributesSane) {
    for (const auto& bp : generate_bp_networks(small_options(7))) {
        for (const net::LinkId l : bp.physical.all_links()) {
            const net::Link& link = bp.physical.link(l);
            EXPECT_GT(link.capacity_gbps, 0.0);
            EXPECT_GE(link.length_km, 0.0);
            EXPECT_LT(link.length_km, 21'000.0);  // below half circumference
        }
    }
}

TEST(BpGenerator, RejectsBadOptions) {
    BpGeneratorOptions opt = small_options();
    opt.min_cities = 1;  // need >= 2
    EXPECT_THROW(generate_bp_networks(opt), util::ContractViolation);
    opt = small_options();
    opt.max_cities = 10'000;  // beyond gazetteer
    EXPECT_THROW(generate_bp_networks(opt), util::ContractViolation);
    opt = small_options();
    opt.capacity_choices_gbps.clear();
    EXPECT_THROW(generate_bp_networks(opt), util::ContractViolation);
}

TEST(BpPresence, CountsPerCity) {
    const auto bps = generate_bp_networks(small_options(8));
    const auto presence = bp_presence_by_city(bps, world_cities().size());
    std::size_t total = 0;
    for (const std::size_t p : presence) total += p;
    std::size_t expected = 0;
    for (const auto& bp : bps) expected += bp.cities.size();
    EXPECT_EQ(total, expected);
}

TEST(BpPresence, PopulationBiasFavorsHubs) {
    // With enough BPs, the biggest metros should attract presence.
    BpGeneratorOptions opt;
    opt.bp_count = 20;
    opt.min_cities = 12;
    opt.max_cities = 30;
    opt.seed = 9;
    const auto bps = generate_bp_networks(opt);
    const auto presence = bp_presence_by_city(bps, world_cities().size());
    // Tokyo (largest) should host clearly more BPs than the median city.
    std::size_t tokyo_idx = 0;
    for (std::size_t i = 0; i < world_cities().size(); ++i) {
        if (world_cities()[i].name == "Tokyo") tokyo_idx = i;
    }
    std::size_t ge_four = 0;
    for (const std::size_t p : presence) {
        if (p >= 4) ++ge_four;
    }
    EXPECT_GE(presence[tokyo_idx], 4u);
    EXPECT_GE(ge_four, 10u);  // enough colocation sites for POC routers
}

}  // namespace
}  // namespace poc::topo
