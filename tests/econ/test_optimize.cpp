#include "econ/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace poc::econ {
namespace {

TEST(GoldenMax, FindsParabolaPeak) {
    const auto r = golden_max([](double x) { return -(x - 3.0) * (x - 3.0) + 5.0; }, 0.0, 10.0);
    EXPECT_NEAR(r.x, 3.0, 1e-6);
    EXPECT_NEAR(r.value, 5.0, 1e-9);
}

TEST(GoldenMax, BoundaryMaximum) {
    const auto r = golden_max([](double x) { return x; }, 0.0, 4.0);
    EXPECT_NEAR(r.x, 4.0, 1e-6);
}

TEST(GoldenMax, HandlesFlatFunction) {
    const auto r = golden_max([](double) { return 7.0; }, 1.0, 2.0);
    EXPECT_NEAR(r.value, 7.0, 1e-12);
    EXPECT_GE(r.x, 1.0);
    EXPECT_LE(r.x, 2.0);
}

TEST(GoldenMax, RevenueCurveKnownOptimum) {
    // p * (1 - p/100): max at 50.
    const auto r = golden_max([](double p) { return p * (1.0 - p / 100.0); }, 0.0, 100.0);
    EXPECT_NEAR(r.x, 50.0, 1e-5);
    EXPECT_NEAR(r.value, 25.0, 1e-9);
}

TEST(GoldenMax, RejectsBadInterval) {
    EXPECT_THROW(golden_max([](double x) { return x; }, 2.0, 1.0), util::ContractViolation);
}

TEST(BisectRoot, FindsSqrtTwo) {
    const auto root = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_NEAR(*root, std::sqrt(2.0), 1e-9);
}

TEST(BisectRoot, ExactEndpointRoot) {
    const auto root = bisect_root([](double x) { return x; }, 0.0, 1.0);
    ASSERT_TRUE(root.has_value());
    EXPECT_DOUBLE_EQ(*root, 0.0);
}

TEST(BisectRoot, NulloptWhenSignsMatch) {
    EXPECT_FALSE(bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0).has_value());
}

TEST(FixedPoint, ConvergesToContractionFixpoint) {
    // g(x) = cos(x): fixed point ~0.739085.
    const auto r = fixed_point([](double x) { return std::cos(x); }, 0.0, 1.0, 1e-10);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 0.7390851332, 1e-6);
}

TEST(FixedPoint, DampingStabilizesOscillation) {
    // g(x) = 4 - x oscillates undamped; with damping it converges to 2.
    const auto r = fixed_point([](double x) { return 4.0 - x; }, 0.0, 0.5, 1e-10);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 2.0, 1e-6);
}

TEST(FixedPoint, ReportsNonConvergence) {
    const auto r = fixed_point([](double x) { return x + 1.0; }, 0.0, 1.0, 1e-10, 50);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 50u);
}

TEST(FixedPoint, ImmediateFixpoint) {
    const auto r = fixed_point([](double x) { return x; }, 3.0);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.x, 3.0);
    EXPECT_EQ(r.iterations, 0u);
}

TEST(FixedPoint, RejectsBadDamping) {
    EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 0.0), util::ContractViolation);
    EXPECT_THROW(fixed_point([](double x) { return x; }, 0.0, 1.5), util::ContractViolation);
}

}  // namespace
}  // namespace poc::econ
