#include "econ/welfare.hpp"

#include <gtest/gtest.h>

#include "econ/pricing_models.hpp"

namespace poc::econ {
namespace {

TEST(SocialWelfare, LinearClosedForm) {
    // SW(p) = p(1-p/P) + (P-p)^2/(2P). At P=100, p=50:
    // 50*0.5 + 2500/200 = 25 + 12.5.
    LinearDemand d(100.0);
    EXPECT_NEAR(social_welfare(d, 50.0), 37.5, 1e-9);
    EXPECT_NEAR(social_welfare(d, 0.0), 50.0, 1e-9);  // mean WTP
    EXPECT_NEAR(social_welfare(d, 100.0), 0.0, 1e-9);
}

TEST(SocialWelfare, MonotoneDecreasingInPrice) {
    for (const auto* d : {static_cast<const DemandCurve*>(new ExponentialDemand(40.0)),
                          static_cast<const DemandCurve*>(new LogisticDemand(50.0, 10.0))}) {
        double prev = social_welfare(*d, 0.0);
        for (double p = 5.0; p <= 100.0; p += 5.0) {
            const double sw = social_welfare(*d, p);
            EXPECT_LE(sw, prev + 1e-9) << d->name() << " p=" << p;
            prev = sw;
        }
        delete d;
    }
}

TEST(ConsumerWelfare, IsSurplusIntegral) {
    LinearDemand d(100.0);
    EXPECT_NEAR(consumer_welfare(d, 50.0), 12.5, 1e-9);
    EXPECT_NEAR(consumer_welfare(d, 0.0), 50.0, 1e-9);
}

TEST(Welfare, DecomposesIntoSurplusPlusRevenue) {
    // SW = CS + revenue for every price and family.
    ExponentialDemand d(30.0);
    for (double p : {0.0, 10.0, 40.0, 90.0}) {
        EXPECT_NEAR(social_welfare(d, p), consumer_welfare(d, p) + csp_revenue(d, p), 1e-9);
    }
}

TEST(DeadweightLoss, ZeroAtFreeProvision) {
    LinearDemand d(100.0);
    EXPECT_NEAR(deadweight_loss(d, 0.0), 0.0, 1e-12);
    EXPECT_GT(deadweight_loss(d, 50.0), 0.0);
}

TEST(DeadweightLoss, GrowsWithPrice) {
    LinearDemand d(100.0);
    EXPECT_LT(deadweight_loss(d, 20.0), deadweight_loss(d, 60.0));
}

TEST(Welfare, NnBeatsUrAcrossFamilies) {
    // The paper's core welfare claim (sections 4.3-4.4): the NN price
    // p* yields higher social welfare than the double-marginalized
    // UR-unilateral price p*(t*).
    const LinearDemand lin(100.0);
    const ExponentialDemand expo(40.0);
    const LogisticDemand logi(50.0, 12.0);
    for (const DemandCurve* d :
         {static_cast<const DemandCurve*>(&lin), static_cast<const DemandCurve*>(&expo),
          static_cast<const DemandCurve*>(&logi)}) {
        const double p_nn = monopoly_price(*d).x;
        const double t_star = lmp_optimal_fee(*d).x;
        const double p_ur = csp_price_given_fee(*d, t_star).x;
        EXPECT_GT(social_welfare(*d, p_nn), social_welfare(*d, p_ur)) << d->name();
    }
}

TEST(Welfare, IsoelasticKneeIsPureTransferEdgeCase) {
    // Knee-capped isoelastic demand is the known exception to the
    // strict version of the claim: the monopoly corner sits at the
    // knee, the LMP's optimal fee stops exactly where the price would
    // start to move, and the fee becomes a pure transfer out of CSP
    // profit with (numerically) no deadweight loss. Welfare weakly
    // decreases; the paper's strict inequality needs smooth demand
    // (Lemma 1's hypotheses).
    const IsoelasticDemand iso(10.0, 2.5);
    const double p_nn = monopoly_price(iso).x;
    const double t_star = lmp_optimal_fee(iso).x;
    const double p_ur = csp_price_given_fee(iso, t_star).x;
    EXPECT_NEAR(p_nn, 10.0, 1e-3);                         // the knee
    EXPECT_NEAR(t_star, 10.0 * (2.5 - 1.0) / 2.5, 0.05);   // corner fee = 6
    EXPECT_GE(social_welfare(iso, p_nn), social_welfare(iso, p_ur) - 1e-6);
    EXPECT_NEAR(social_welfare(iso, p_nn), social_welfare(iso, p_ur), 0.05);
}

TEST(Welfare, RevenueAtMonopolyPriceIsPeak) {
    LinearDemand d(100.0);
    const double p_star = monopoly_price(d).x;
    EXPECT_GE(csp_revenue(d, p_star) + 1e-6, csp_revenue(d, p_star * 0.9));
    EXPECT_GE(csp_revenue(d, p_star) + 1e-6, csp_revenue(d, p_star * 1.1));
}

}  // namespace
}  // namespace poc::econ
