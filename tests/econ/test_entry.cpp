// The paper's dynamic argument (section 4.1): fee regimes foreclose
// entrant services, lowering *future* social welfare.
#include "econ/entry.hpp"

#include <gtest/gtest.h>

namespace poc::econ {
namespace {

std::vector<LmpProfile> two_lmps() {
    return {{"Big", 4.0, 50.0, 0.0}, {"Small", 1.0, 40.0, 0.0}};
}

TEST(EntryPopulation, DrawsRequestedCandidates) {
    const auto lmps = two_lmps();
    const auto pop = draw_entry_population(lmps);
    EXPECT_EQ(pop.size(), 100u);
    for (const EntryCandidate& c : pop) {
        EXPECT_NE(c.demand, nullptr);
        EXPECT_GT(c.entry_cost, 0.0);
        EXPECT_EQ(c.churn_by_lmp.size(), 2u);
    }
}

TEST(EntryPopulation, DeterministicInSeed) {
    const auto lmps = two_lmps();
    EntryPopulationOptions opt;
    opt.seed = 9;
    const auto a = draw_entry_population(lmps, opt);
    const auto b = draw_entry_population(lmps, opt);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].entry_cost, b[i].entry_cost);
    }
}

TEST(Entry, NnAdmitsTheMostEntrants) {
    const auto lmps = two_lmps();
    const auto pop = draw_entry_population(lmps);
    const auto reports = evaluate_entry_all(pop, lmps);
    ASSERT_EQ(reports.size(), 3u);
    const auto& nn = reports[0];
    const auto& uni = reports[1];
    const auto& bar = reports[2];
    EXPECT_GE(nn.entered, bar.entered);
    EXPECT_GE(bar.entered, uni.entered);
    // Fees must actually bite for the test to be informative.
    EXPECT_GT(nn.entered, uni.entered);
}

TEST(Entry, RealizedWelfareOrderedLikeEntry) {
    const auto lmps = two_lmps();
    const auto pop = draw_entry_population(lmps);
    const auto reports = evaluate_entry_all(pop, lmps);
    EXPECT_GE(reports[0].realized_social_welfare, reports[2].realized_social_welfare);
    EXPECT_GE(reports[2].realized_social_welfare, reports[1].realized_social_welfare);
}

TEST(Entry, NnForeclosesNothing) {
    const auto lmps = two_lmps();
    const auto pop = draw_entry_population(lmps);
    const auto nn = evaluate_entry(pop, lmps, Regime::kNetworkNeutrality);
    EXPECT_DOUBLE_EQ(nn.foreclosed_social_welfare, 0.0);
}

TEST(Entry, FeeRegimesForecloseViableServices) {
    const auto lmps = two_lmps();
    const auto pop = draw_entry_population(lmps);
    const auto uni = evaluate_entry(pop, lmps, Regime::kUnilateralFees);
    EXPECT_GT(uni.foreclosed_social_welfare, 0.0);
}

TEST(Entry, ZeroEntryCostEveryoneEnters) {
    const auto lmps = two_lmps();
    auto pop = draw_entry_population(lmps);
    for (EntryCandidate& c : pop) c.entry_cost = 0.0;
    const auto uni = evaluate_entry(pop, lmps, Regime::kUnilateralFees);
    EXPECT_EQ(uni.entered, pop.size());
}

TEST(Entry, ProhibitiveEntryCostNobodyEnters) {
    const auto lmps = two_lmps();
    auto pop = draw_entry_population(lmps);
    for (EntryCandidate& c : pop) c.entry_cost = 1e12;
    const auto nn = evaluate_entry(pop, lmps, Regime::kNetworkNeutrality);
    EXPECT_EQ(nn.entered, 0u);
}

TEST(Entry, ValidatesInputs) {
    EXPECT_THROW(draw_entry_population({}), util::ContractViolation);
    const auto lmps = two_lmps();
    auto pop = draw_entry_population(lmps);
    pop[0].churn_by_lmp.pop_back();
    EXPECT_THROW(evaluate_entry(pop, lmps, Regime::kNetworkNeutrality),
                 util::ContractViolation);
}

}  // namespace
}  // namespace poc::econ
