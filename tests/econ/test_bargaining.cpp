// Section 4.5: Nash bargaining fees. For linear demand D = 1 - p/P
// the renegotiation fixed point solves t = ((P+t)/2 - rc)/2, giving
// t = (P - 2 rc)/3 and p = (2P - rc)/3.
#include "econ/bargaining.hpp"

#include <gtest/gtest.h>

namespace poc::econ {
namespace {

LmpProfile lmp(double customers, double charge, double churn, std::string name = "l") {
    LmpProfile p;
    p.name = std::move(name);
    p.customers = customers;
    p.access_charge = charge;
    p.churn_if_lost = churn;
    return p;
}

TEST(BilateralNbs, ClosedForm) {
    EXPECT_DOUBLE_EQ(bilateral_nbs_fee(60.0, lmp(1.0, 50.0, 0.2)), (60.0 - 10.0) / 2.0);
    EXPECT_DOUBLE_EQ(bilateral_nbs_fee(60.0, lmp(1.0, 50.0, 0.0)), 30.0);
}

TEST(BilateralNbs, NegativeWhenChurnCostDominates) {
    // r*c = 0.9*100 = 90 > p: the LMP pays the CSP.
    EXPECT_LT(bilateral_nbs_fee(60.0, lmp(1.0, 100.0, 0.9)), 0.0);
}

TEST(BilateralNbs, IncumbentLmpExtractsMore) {
    // Incumbent: low churn-if-lost -> higher fee. The paper's key
    // incumbent-advantage driver on the LMP side.
    const double f_incumbent = bilateral_nbs_fee(60.0, lmp(1.0, 50.0, 0.05));
    const double f_entrant = bilateral_nbs_fee(60.0, lmp(1.0, 50.0, 0.5));
    EXPECT_GT(f_incumbent, f_entrant);
}

TEST(AverageRc, PopulationWeighted) {
    const std::vector<LmpProfile> lmps{lmp(3.0, 50.0, 0.1), lmp(1.0, 30.0, 0.5)};
    // (3*5 + 1*15) / 4 = 7.5.
    EXPECT_DOUBLE_EQ(average_rc(lmps), 7.5);
}

TEST(AverageNbsFee, MatchesFormula) {
    const std::vector<LmpProfile> lmps{lmp(3.0, 50.0, 0.1), lmp(1.0, 30.0, 0.5)};
    EXPECT_DOUBLE_EQ(average_nbs_fee(60.0, lmps), (60.0 - 7.5) / 2.0);
}

TEST(Equilibrium, LinearClosedForm) {
    LinearDemand d(100.0);
    const std::vector<LmpProfile> lmps{lmp(1.0, 50.0, 0.2)};  // rc = 10
    const auto eq = bargaining_equilibrium(d, lmps);
    EXPECT_TRUE(eq.converged);
    EXPECT_NEAR(eq.avg_fee, (100.0 - 2.0 * 10.0) / 3.0, 1e-3);
    EXPECT_NEAR(eq.price, (2.0 * 100.0 - 10.0) / 3.0, 1e-3);
}

TEST(Equilibrium, FeesBelowUnilateralLevel) {
    // Bargaining splits surplus; unilateral t* for linear demand is
    // P/2 = 50 > equilibrium fee.
    LinearDemand d(100.0);
    const auto eq = bargaining_equilibrium(d, {lmp(1.0, 50.0, 0.2)});
    EXPECT_LT(eq.avg_fee, 50.0);
    EXPECT_GT(eq.avg_fee, 0.0);
}

TEST(Equilibrium, PerLmpFeesOrderedByChurn) {
    LinearDemand d(100.0);
    const std::vector<LmpProfile> lmps{lmp(1.0, 50.0, 0.05, "incumbent"),
                                       lmp(1.0, 50.0, 0.6, "entrant")};
    const auto eq = bargaining_equilibrium(d, lmps);
    ASSERT_EQ(eq.fee_by_lmp.size(), 2u);
    EXPECT_GT(eq.fee_by_lmp[0], eq.fee_by_lmp[1]);
}

TEST(Equilibrium, HighChurnCostClampsFeeAtZero) {
    // rc huge: negotiated fee would be negative; the positive-fee
    // regime clamps at zero and the equilibrium price reverts to the
    // NN monopoly price.
    LinearDemand d(100.0);
    const auto eq = bargaining_equilibrium(d, {lmp(1.0, 500.0, 0.9)});
    EXPECT_DOUBLE_EQ(eq.avg_fee, 0.0);
    EXPECT_NEAR(eq.price, 50.0, 1e-3);
}

TEST(Equilibrium, ZeroChurnSingleLmpMatchesNoOutsideOption) {
    // rc = 0: t = p/2 and p = (P+t)/2 -> t = P/3.
    LinearDemand d(90.0);
    const auto eq = bargaining_equilibrium(d, {lmp(1.0, 50.0, 0.0)});
    EXPECT_NEAR(eq.avg_fee, 30.0, 1e-3);
}

TEST(Bargaining, RejectsBadProfiles) {
    EXPECT_THROW(average_rc({}), util::ContractViolation);
    EXPECT_THROW(bilateral_nbs_fee(10.0, lmp(1.0, 50.0, 1.5)), util::ContractViolation);
    EXPECT_THROW(average_rc({lmp(0.0, 50.0, 0.1)}), util::ContractViolation);
}

}  // namespace
}  // namespace poc::econ
