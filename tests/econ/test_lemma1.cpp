// Lemma 1 of the paper: under smoothness/convexity conditions on D,
// the CSP's revenue-maximizing price p*(t) is strictly increasing in
// the termination fee t. Verified numerically across demand families
// and fee grids.
#include <gtest/gtest.h>

#include <memory>

#include "econ/pricing_models.hpp"

namespace poc::econ {
namespace {

struct Lemma1Case {
    std::string label;
    std::shared_ptr<const DemandCurve> demand;
    double t_max;
};

class Lemma1 : public ::testing::TestWithParam<Lemma1Case> {};

TEST_P(Lemma1, PriceResponseMonotoneNonDecreasing) {
    const auto& c = GetParam();
    const auto curve = price_response_curve(*c.demand, c.t_max, 41);
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
        EXPECT_LE(curve[i].second, curve[i + 1].second + 1e-4)
            << c.label << " at t=" << curve[i].first;
    }
}

TEST_P(Lemma1, StrictlyIncreasingWhereDemandSatisfiesConditions) {
    // The lemma's hypotheses (strictly decreasing, strictly convex,
    // vanishing D) hold for the exponential family everywhere; assert
    // strict growth there, and weak growth elsewhere (linear demand is
    // only weakly convex, so p can plateau after demand hits zero).
    const auto& c = GetParam();
    if (c.label != "exponential") return;
    const auto curve = price_response_curve(*c.demand, c.t_max, 21);
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
        EXPECT_LT(curve[i].second, curve[i + 1].second) << " at t=" << curve[i].first;
    }
}

TEST_P(Lemma1, HigherFeesNeverIncreaseServedDemand) {
    // Corollary the welfare argument needs: D(p*(t)) is non-increasing
    // in t, so social welfare decreases with fees.
    const auto& c = GetParam();
    const auto curve = price_response_curve(*c.demand, c.t_max, 21);
    double prev = c.demand->demand(curve.front().second);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        const double served = c.demand->demand(curve[i].second);
        EXPECT_LE(served, prev + 1e-6) << c.label << " at t=" << curve[i].first;
        prev = served;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Lemma1,
    ::testing::Values(
        Lemma1Case{"linear", std::make_shared<LinearDemand>(100.0), 80.0},
        Lemma1Case{"exponential", std::make_shared<ExponentialDemand>(40.0), 120.0},
        Lemma1Case{"isoelastic", std::make_shared<IsoelasticDemand>(10.0, 2.5), 60.0},
        Lemma1Case{"logistic", std::make_shared<LogisticDemand>(50.0, 12.0), 90.0}),
    [](const ::testing::TestParamInfo<Lemma1Case>& param_info) { return param_info.param.label; });

}  // namespace
}  // namespace poc::econ
