#include "econ/market_model.hpp"

#include <gtest/gtest.h>

namespace poc::econ {
namespace {

Market fixture_market() {
    Market m;
    m.lmps = {
        {"IncumbentLMP", 5.0, 50.0, 0.0},  // churn overridden per CSP
        {"EntrantLMP", 1.0, 40.0, 0.0},
    };
    CspProfile video;
    video.name = "VideoCo";
    video.demand = std::make_shared<LinearDemand>(100.0);
    video.churn_by_lmp = {0.05, 0.30};  // incumbent loses few, entrant many
    CspProfile niche;
    niche.name = "NicheCo";
    niche.demand = std::make_shared<ExponentialDemand>(30.0);
    niche.churn_by_lmp = {0.01, 0.05};
    m.csps = {video, niche};
    return m;
}

TEST(MarketModel, ValidatesConsistency) {
    Market bad = fixture_market();
    bad.csps[0].churn_by_lmp.pop_back();
    EXPECT_THROW(validate(bad), util::ContractViolation);
    bad = fixture_market();
    bad.csps[0].demand = nullptr;
    EXPECT_THROW(validate(bad), util::ContractViolation);
    EXPECT_NO_THROW(validate(fixture_market()));
}

TEST(MarketModel, NnHasZeroFees) {
    const auto report = evaluate(fixture_market(), Regime::kNetworkNeutrality);
    for (const CspOutcome& o : report.csp_outcomes) {
        EXPECT_DOUBLE_EQ(o.avg_fee, 0.0);
        EXPECT_DOUBLE_EQ(o.lmp_fee_revenue, 0.0);
    }
    EXPECT_DOUBLE_EQ(report.total_lmp_fee_revenue, 0.0);
}

TEST(MarketModel, WelfareOrderingAcrossRegimes) {
    // SW(NN) >= SW(bargaining) >= SW(unilateral): fees raise prices,
    // and bargained fees are below the unilateral revenue-maximizing
    // level.
    const auto reports = evaluate_all(fixture_market());
    ASSERT_EQ(reports.size(), 3u);
    const double sw_nn = reports[0].total_social_welfare;
    const double sw_uni = reports[1].total_social_welfare;
    const double sw_bar = reports[2].total_social_welfare;
    EXPECT_GT(sw_nn, sw_bar);
    EXPECT_GT(sw_bar, sw_uni);
}

TEST(MarketModel, ConsumerWelfareAlsoOrdered) {
    const auto reports = evaluate_all(fixture_market());
    EXPECT_GT(reports[0].total_consumer_welfare, reports[1].total_consumer_welfare);
    EXPECT_GE(reports[2].total_consumer_welfare, reports[1].total_consumer_welfare);
}

TEST(MarketModel, FeesRaisePostedPrices) {
    const auto reports = evaluate_all(fixture_market());
    for (std::size_t s = 0; s < reports[0].csp_outcomes.size(); ++s) {
        EXPECT_LE(reports[0].csp_outcomes[s].posted_price,
                  reports[2].csp_outcomes[s].posted_price + 1e-6);
        EXPECT_LE(reports[2].csp_outcomes[s].posted_price,
                  reports[1].csp_outcomes[s].posted_price + 1e-6);
    }
}

TEST(MarketModel, IncumbentLmpExtractsHigherFee) {
    const auto report = evaluate(fixture_market(), Regime::kBargainedFees);
    // LMP 0 (low churn) negotiates a higher fee than LMP 1 for VideoCo.
    const CspOutcome& video = report.csp_outcomes[0];
    ASSERT_EQ(video.fee_by_lmp.size(), 2u);
    EXPECT_GT(video.fee_by_lmp[0], video.fee_by_lmp[1]);
}

TEST(MarketModel, IncumbentCspPaysLowerAverageFee) {
    // Give the same demand curve to an incumbent CSP (high churn if
    // lost) and an entrant (low churn): the incumbent pays less.
    Market m;
    m.lmps = {{"LMP", 1.0, 50.0, 0.0}};
    CspProfile incumbent;
    incumbent.name = "IncumbentCSP";
    incumbent.demand = std::make_shared<LinearDemand>(100.0);
    incumbent.churn_by_lmp = {0.6};
    CspProfile entrant = incumbent;
    entrant.name = "EntrantCSP";
    entrant.churn_by_lmp = {0.02};
    m.csps = {incumbent, entrant};
    const auto report = evaluate(m, Regime::kBargainedFees);
    EXPECT_LT(report.csp_outcomes[0].avg_fee, report.csp_outcomes[1].avg_fee);
    // And keeps more profit.
    EXPECT_GT(report.csp_outcomes[0].csp_profit, report.csp_outcomes[1].csp_profit);
}

TEST(MarketModel, UnilateralFeesUniformAcrossLmps) {
    const auto report = evaluate(fixture_market(), Regime::kUnilateralFees);
    for (const CspOutcome& o : report.csp_outcomes) {
        ASSERT_EQ(o.fee_by_lmp.size(), 2u);
        EXPECT_DOUBLE_EQ(o.fee_by_lmp[0], o.fee_by_lmp[1]);
        EXPECT_GT(o.avg_fee, 0.0);
    }
}

TEST(MarketModel, LmpFeeRevenuePositiveUnderUr) {
    const auto reports = evaluate_all(fixture_market());
    EXPECT_GT(reports[1].total_lmp_fee_revenue, 0.0);
    EXPECT_GT(reports[2].total_lmp_fee_revenue, 0.0);
}

TEST(MarketModel, ProfitPlusFeeEqualsGrossRevenue) {
    const auto report = evaluate(fixture_market(), Regime::kBargainedFees);
    for (const CspOutcome& o : report.csp_outcomes) {
        const double gross = o.posted_price * o.demand_served;
        EXPECT_NEAR(o.csp_profit + o.lmp_fee_revenue, gross, 1e-9);
    }
}

TEST(MarketModel, RegimeNamesStable) {
    EXPECT_STREQ(regime_name(Regime::kNetworkNeutrality), "NN");
    EXPECT_STREQ(regime_name(Regime::kUnilateralFees), "UR-unilateral");
    EXPECT_STREQ(regime_name(Regime::kBargainedFees), "UR-bargaining");
}

}  // namespace
}  // namespace poc::econ
