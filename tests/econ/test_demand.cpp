#include "econ/demand.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace poc::econ {
namespace {

std::vector<std::shared_ptr<const DemandCurve>> all_families() {
    return {
        std::make_shared<LinearDemand>(100.0),
        std::make_shared<ExponentialDemand>(40.0),
        std::make_shared<IsoelasticDemand>(10.0, 2.5),
        std::make_shared<LogisticDemand>(50.0, 12.0),
    };
}

TEST(Demand, BoundedInUnitInterval) {
    for (const auto& d : all_families()) {
        for (double p = 0.0; p <= d->upper_support(); p += d->upper_support() / 37.0) {
            const double q = d->demand(p);
            EXPECT_GE(q, 0.0) << d->name();
            EXPECT_LE(q, 1.0) << d->name();
        }
    }
}

TEST(Demand, MonotoneDecreasing) {
    for (const auto& d : all_families()) {
        double prev = d->demand(0.0);
        for (double p = 1.0; p <= d->upper_support(); p += d->upper_support() / 53.0) {
            const double q = d->demand(p);
            EXPECT_LE(q, prev + 1e-12) << d->name() << " at p=" << p;
            prev = q;
        }
    }
}

TEST(Demand, FullDemandAtZeroPrice) {
    for (const auto& d : all_families()) {
        EXPECT_GE(d->demand(0.0), 0.5) << d->name();
    }
    EXPECT_DOUBLE_EQ(LinearDemand(100.0).demand(0.0), 1.0);
    EXPECT_DOUBLE_EQ(ExponentialDemand(40.0).demand(0.0), 1.0);
    EXPECT_DOUBLE_EQ(IsoelasticDemand(10.0, 2.0).demand(0.0), 1.0);
}

TEST(Demand, DerivativeMatchesNumericDifference) {
    for (const auto& d : all_families()) {
        for (double p : {5.0, 20.0, 45.0}) {
            const double h = 1e-5;
            const double numeric = (d->demand(p + h) - d->demand(p - h)) / (2.0 * h);
            EXPECT_NEAR(d->derivative(p), numeric, 1e-4) << d->name() << " at p=" << p;
        }
    }
}

TEST(Demand, AnalyticIntegralMatchesQuadrature) {
    for (const auto& d : all_families()) {
        for (double p : {0.0, 10.0, 30.0}) {
            // Midpoint-rule reference on [p, upper_support]. Isoelastic
            // has a kink at the knee and a huge support, so the
            // reference needs a fine grid.
            const double hi = d->upper_support();
            const int n = 400'000;
            double sum = 0.0;
            const double dx = (hi - p) / n;
            for (int i = 0; i < n; ++i) sum += d->demand(p + (i + 0.5) * dx) * dx;
            EXPECT_NEAR(d->demand_integral(p), sum, 2e-3 * std::max(1.0, sum))
                << d->name() << " at p=" << p;
        }
    }
}

TEST(Demand, IntegralDecreasingInPrice) {
    for (const auto& d : all_families()) {
        EXPECT_GT(d->demand_integral(0.0), d->demand_integral(20.0));
        EXPECT_GE(d->demand_integral(20.0), 0.0);
    }
}

TEST(LinearDemand, ClosedForms) {
    LinearDemand d(80.0);
    EXPECT_DOUBLE_EQ(d.demand(40.0), 0.5);
    EXPECT_DOUBLE_EQ(d.demand(80.0), 0.0);
    EXPECT_DOUBLE_EQ(d.demand(200.0), 0.0);
    EXPECT_DOUBLE_EQ(d.derivative(40.0), -1.0 / 80.0);
    EXPECT_DOUBLE_EQ(d.demand_integral(0.0), 40.0);  // pmax/2
    EXPECT_DOUBLE_EQ(d.demand_integral(40.0), 10.0);
}

TEST(ExponentialDemand, ClosedForms) {
    ExponentialDemand d(25.0);
    EXPECT_NEAR(d.demand(25.0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(d.demand_integral(0.0), 25.0, 1e-9);
}

TEST(IsoelasticDemand, FlatThenPowerLaw) {
    IsoelasticDemand d(10.0, 2.0);
    EXPECT_DOUBLE_EQ(d.demand(5.0), 1.0);
    EXPECT_DOUBLE_EQ(d.demand(20.0), 0.25);  // (2)^-2
    EXPECT_THROW(IsoelasticDemand(10.0, 1.0), util::ContractViolation);
}

TEST(LogisticDemand, HalfAtMidpoint) {
    LogisticDemand d(60.0, 10.0);
    EXPECT_NEAR(d.demand(60.0), 0.5, 1e-12);
}

TEST(EmpiricalDemand, ExactStepFunction) {
    EmpiricalDemand d({10.0, 20.0, 30.0, 40.0});
    EXPECT_DOUBLE_EQ(d.demand(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.demand(10.0), 1.0);   // >= is a purchase
    EXPECT_DOUBLE_EQ(d.demand(10.5), 0.75);
    EXPECT_DOUBLE_EQ(d.demand(45.0), 0.0);
}

TEST(EmpiricalDemand, SurplusIsExactMean) {
    EmpiricalDemand d({10.0, 20.0, 30.0});
    // At p=15: (20-15 + 30-15)/3.
    EXPECT_NEAR(d.demand_integral(15.0), 20.0 / 3.0, 1e-12);
}

TEST(EmpiricalDemand, MatchesParametricOnSampledPopulation) {
    // Sampling WTP from Uniform[0,100] should approximate LinearDemand.
    util::Rng rng(77);
    std::vector<double> wtp;
    for (int i = 0; i < 50'000; ++i) wtp.push_back(rng.uniform(0.0, 100.0));
    EmpiricalDemand emp(std::move(wtp));
    LinearDemand lin(100.0);
    for (double p : {10.0, 50.0, 90.0}) {
        EXPECT_NEAR(emp.demand(p), lin.demand(p), 0.02);
        EXPECT_NEAR(emp.demand_integral(p), lin.demand_integral(p), 1.0);
    }
}

TEST(Demand, RejectsBadConstruction) {
    EXPECT_THROW(LinearDemand(0.0), util::ContractViolation);
    EXPECT_THROW(ExponentialDemand(-1.0), util::ContractViolation);
    EXPECT_THROW(LogisticDemand(10.0, 0.0), util::ContractViolation);
    EXPECT_THROW(EmpiricalDemand({}), util::ContractViolation);
    EXPECT_THROW(EmpiricalDemand({-1.0}), util::ContractViolation);
}

TEST(Demand, RejectsNegativePrice) {
    LinearDemand d(10.0);
    EXPECT_THROW(d.demand(-1.0), util::ContractViolation);
}

}  // namespace
}  // namespace poc::econ
