#include "econ/usage_pricing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace poc::econ {
namespace {

UsagePopulation small_pop() { return {10.0, 50.0, 100.0, 500.0}; }

LmpCostModel cost_model() { return LmpCostModel{20.0, 0.05}; }

TEST(UsagePopulation, DrawsPositiveHeavyTailed) {
    const auto pop = draw_usage_population();
    EXPECT_EQ(pop.size(), 10'000u);
    double mean = 0.0;
    double max = 0.0;
    for (const double gb : pop) {
        EXPECT_GT(gb, 0.0);
        mean += gb;
        max = std::max(max, gb);
    }
    mean /= static_cast<double>(pop.size());
    EXPECT_GT(max, 5.0 * mean);  // heavy tail
}

TEST(Pricing, AllSchemesBreakEvenExactly) {
    for (const PricingOutcome& o : price_population_all(small_pop(), cost_model())) {
        EXPECT_NEAR(o.total_revenue, o.total_cost, 1e-9) << scheme_name(o.scheme);
    }
}

TEST(Pricing, FlatHasUniformBillsAndHighSubsidy) {
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kFlat);
    EXPECT_DOUBLE_EQ(o.min_bill, o.max_bill);
    // Total cost = 4*20 + 0.05*660 = 113; fee = 28.25. Light user costs
    // 20.5 but pays 28.25: cross-subsidy present.
    EXPECT_NEAR(o.price_parameter, 113.0 / 4.0, 1e-9);
    EXPECT_GT(o.cross_subsidy_index, 0.0);
}

TEST(Pricing, UsageBillsProportionalToUsage) {
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kUsage);
    // Rate = 113 / 660.
    EXPECT_NEAR(o.price_parameter, 113.0 / 660.0, 1e-9);
    EXPECT_NEAR(o.min_bill, 10.0 * o.price_parameter, 1e-9);
    EXPECT_NEAR(o.max_bill, 500.0 * o.price_parameter, 1e-9);
}

TEST(Pricing, TieredTwoPartTariffMinimizesCrossSubsidy) {
    // Flat pricing makes light users fund the heavy tail's volume;
    // pure usage pricing makes heavy users fund everyone's *fixed*
    // costs. The tiered scheme is a two-part tariff - fixed-ish base
    // plus volumetric overage - and tracks cost causation best, so it
    // minimizes the cross-subsidy index. (This is the classic two-part
    // tariff result; the paper expects the market to find such
    // "practical solutions" to the predictability/usage tension.)
    const auto pop = draw_usage_population();
    const auto all = price_population_all(pop, cost_model());
    const double flat = all[0].cross_subsidy_index;
    const double usage = all[1].cross_subsidy_index;
    const double tiered = all[2].cross_subsidy_index;
    EXPECT_GT(flat, tiered);
    EXPECT_GT(usage, tiered);
}

TEST(Pricing, PureUsageStillSubsidizesFixedCosts) {
    // Usage pricing folds fixed costs into $/GB, so heavy users carry
    // more than their incremental cost: the index is small but not 0
    // when fixed costs exist...
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kUsage);
    EXPECT_GT(o.cross_subsidy_index, 0.0);
    // ... and exactly 0 when cost is purely volumetric.
    const auto pure = price_population(small_pop(), LmpCostModel{0.0, 0.05},
                                       PricingScheme::kUsage);
    EXPECT_NEAR(pure.cross_subsidy_index, 0.0, 1e-12);
}

TEST(Pricing, TieredBillsFlatUnderAllowance) {
    TieredParams tiered;
    tiered.allowance_gb = 150.0;
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kTiered, tiered);
    // Users at 10/50/100 GB pay only the base fee; 500 GB pays overage.
    EXPECT_NEAR(o.min_bill, o.price_parameter, 1e-9);
    EXPECT_GT(o.max_bill, o.price_parameter);
}

TEST(Pricing, TieredRejectsAllowanceMakingBaseNegative) {
    // Allowance 0 + big markup: overage revenue alone exceeds cost.
    TieredParams tiered;
    tiered.allowance_gb = 0.0;
    tiered.overage_markup = 100.0;
    EXPECT_THROW(price_population(small_pop(), cost_model(), PricingScheme::kTiered, tiered),
                 util::ContractViolation);
}

TEST(Pricing, ValidatesInputs) {
    EXPECT_THROW(price_population({}, cost_model(), PricingScheme::kFlat),
                 util::ContractViolation);
    EXPECT_THROW(price_population({-1.0}, cost_model(), PricingScheme::kFlat),
                 util::ContractViolation);
}

TEST(Pricing, SchemeNamesStable) {
    EXPECT_STREQ(scheme_name(PricingScheme::kFlat), "flat");
    EXPECT_STREQ(scheme_name(PricingScheme::kUsage), "usage-based");
    EXPECT_STREQ(scheme_name(PricingScheme::kTiered), "tiered");
}

TEST(DecayAccumulator, HalvesAtExactHalfLifeBoundaries) {
    DecayAccumulator acc(4.0);  // half-life: 4 epochs
    acc.add(0.0, 16.0);
    EXPECT_DOUBLE_EQ(acc.value_at(0.0), 16.0);
    // 2^(-k) is exact in binary floating point: whole half-life
    // boundaries read back exactly halved, not approximately.
    EXPECT_DOUBLE_EQ(acc.value_at(4.0), 8.0);
    EXPECT_DOUBLE_EQ(acc.value_at(8.0), 4.0);
    EXPECT_DOUBLE_EQ(acc.value_at(12.0), 2.0);
    EXPECT_DOUBLE_EQ(acc.value_at(40.0), 16.0 * std::exp2(-10.0));
}

TEST(DecayAccumulator, FractionalEpochBoundariesFollowExp2) {
    DecayAccumulator acc(3.0);
    acc.add(1.0, 9.0);
    for (const double dt : {0.25, 0.5, 1.7, 2.999, 3.001, 10.125}) {
        EXPECT_DOUBLE_EQ(acc.value_at(1.0 + dt), 9.0 * std::exp2(-dt / 3.0)) << dt;
    }
    // Folding in at a fractional epoch decays the old mass first.
    acc.add(2.5, 1.0);
    EXPECT_DOUBLE_EQ(acc.value_at(2.5), 9.0 * std::exp2(-1.5 / 3.0) + 1.0);
}

TEST(DecayAccumulator, ZeroUsageDecaysToExactZero) {
    DecayAccumulator acc(2.0);
    EXPECT_EQ(acc.value_at(1e9), 0.0);
    // Add then cancel: the accumulator holds exact 0.0 again and stays
    // there — no denormal residue after any horizon.
    acc.add(0.0, 5.0);
    acc.add(0.0, -5.0);
    EXPECT_EQ(acc.value_at(0.0), 0.0);
    EXPECT_EQ(acc.value_at(1e18), 0.0);
    // std::signbit check: exactly +0.0, not -0.0 drift.
    EXPECT_FALSE(std::signbit(acc.value_at(123.456)));
}

TEST(DecayAccumulator, TimeIsMonotoneAndHalfLifePositive) {
    DecayAccumulator acc(1.0);
    acc.add(10.0, 4.0);
    // Reads before the last observation do not "un-decay".
    EXPECT_DOUBLE_EQ(acc.value_at(5.0), 4.0);
    // Observations in the past fold in at the last observation point.
    acc.add(3.0, 1.0);
    EXPECT_DOUBLE_EQ(acc.last_epoch(), 10.0);
    EXPECT_DOUBLE_EQ(acc.value_at(10.0), 5.0);
    EXPECT_THROW(DecayAccumulator(0.0), util::ContractViolation);
    EXPECT_THROW(DecayAccumulator(-1.0), util::ContractViolation);
}

TEST(BilledAccumulator, ChargesMeterAndBillTogether) {
    BilledAccumulator acc(4.0, util::Money::from_micros(250));  // $0.00025/unit
    EXPECT_TRUE(acc.charge(0.0, 100.0));
    EXPECT_TRUE(acc.charge(4.0, 100.0));
    // Meter decays (100 halved + 100), bill is exact and undecayed.
    EXPECT_DOUBLE_EQ(acc.usage_at(4.0), 150.0);
    EXPECT_EQ(acc.billed(), util::Money::from_micros(50'000));
}

TEST(BilledAccumulator, RefusesOverflowingChargesAtomically) {
    using util::Money;
    // Adversarial sequence 1: a single charge whose product overflows.
    BilledAccumulator big(1.0, Money::from_dollars(std::int64_t{1'000'000}));
    EXPECT_FALSE(big.charge(0.0, 1e13));  // 10^12 micros * 10^13 units
    EXPECT_EQ(big.billed(), Money{});
    EXPECT_EQ(big.usage_at(0.0), 0.0);  // refused charge meters nothing

    // Adversarial sequence 2: legal charges whose running total wraps.
    // Each charge is ~2^62 micros; the second must be refused by
    // checked_add, leaving the first intact.
    BilledAccumulator acc(1.0, Money::from_micros(1'000'000'000));
    EXPECT_TRUE(acc.charge(0.0, 4.0e9));   // ~4e18 micros: fits
    const Money after_first = acc.billed();
    EXPECT_GT(after_first, Money{});
    EXPECT_FALSE(acc.charge(1.0, 6.0e9));  // 4e18 + 6e18 exceeds int64
    EXPECT_EQ(acc.billed(), after_first);
    EXPECT_DOUBLE_EQ(acc.usage_at(0.0), 4.0e9);  // meter untouched too

    // Adversarial sequence 3: ratcheting near the edge — every refusal
    // leaves the total exactly where it was.
    BilledAccumulator edge(1.0, Money::from_micros(1));
    EXPECT_TRUE(edge.charge(0.0, 9.0e18));
    const Money near_cap = edge.billed();
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(edge.charge(0.0, 3.0e17));
        EXPECT_EQ(edge.billed(), near_cap);
    }
    // NaN units never bill.
    EXPECT_FALSE(edge.charge(0.0, std::nan("")));
}

TEST(BilledAccumulator, CheckedScaleMatchesMoneyScaledInRange) {
    using util::Money;
    const Money price = Money::from_micros(12'345);
    for (const double units : {0.0, 1.0, 2.5, 1000.0, 1e6, -3.0}) {
        const auto got = BilledAccumulator::checked_scale(price, units);
        ASSERT_TRUE(got.has_value()) << units;
        EXPECT_EQ(*got, price.scaled(units)) << units;
    }
    EXPECT_FALSE(BilledAccumulator::checked_scale(price, 1e18).has_value());
    EXPECT_FALSE(BilledAccumulator::checked_scale(price, -1e18).has_value());
}

}  // namespace
}  // namespace poc::econ
