#include "econ/usage_pricing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace poc::econ {
namespace {

UsagePopulation small_pop() { return {10.0, 50.0, 100.0, 500.0}; }

LmpCostModel cost_model() { return LmpCostModel{20.0, 0.05}; }

TEST(UsagePopulation, DrawsPositiveHeavyTailed) {
    const auto pop = draw_usage_population();
    EXPECT_EQ(pop.size(), 10'000u);
    double mean = 0.0;
    double max = 0.0;
    for (const double gb : pop) {
        EXPECT_GT(gb, 0.0);
        mean += gb;
        max = std::max(max, gb);
    }
    mean /= static_cast<double>(pop.size());
    EXPECT_GT(max, 5.0 * mean);  // heavy tail
}

TEST(Pricing, AllSchemesBreakEvenExactly) {
    for (const PricingOutcome& o : price_population_all(small_pop(), cost_model())) {
        EXPECT_NEAR(o.total_revenue, o.total_cost, 1e-9) << scheme_name(o.scheme);
    }
}

TEST(Pricing, FlatHasUniformBillsAndHighSubsidy) {
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kFlat);
    EXPECT_DOUBLE_EQ(o.min_bill, o.max_bill);
    // Total cost = 4*20 + 0.05*660 = 113; fee = 28.25. Light user costs
    // 20.5 but pays 28.25: cross-subsidy present.
    EXPECT_NEAR(o.price_parameter, 113.0 / 4.0, 1e-9);
    EXPECT_GT(o.cross_subsidy_index, 0.0);
}

TEST(Pricing, UsageBillsProportionalToUsage) {
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kUsage);
    // Rate = 113 / 660.
    EXPECT_NEAR(o.price_parameter, 113.0 / 660.0, 1e-9);
    EXPECT_NEAR(o.min_bill, 10.0 * o.price_parameter, 1e-9);
    EXPECT_NEAR(o.max_bill, 500.0 * o.price_parameter, 1e-9);
}

TEST(Pricing, TieredTwoPartTariffMinimizesCrossSubsidy) {
    // Flat pricing makes light users fund the heavy tail's volume;
    // pure usage pricing makes heavy users fund everyone's *fixed*
    // costs. The tiered scheme is a two-part tariff - fixed-ish base
    // plus volumetric overage - and tracks cost causation best, so it
    // minimizes the cross-subsidy index. (This is the classic two-part
    // tariff result; the paper expects the market to find such
    // "practical solutions" to the predictability/usage tension.)
    const auto pop = draw_usage_population();
    const auto all = price_population_all(pop, cost_model());
    const double flat = all[0].cross_subsidy_index;
    const double usage = all[1].cross_subsidy_index;
    const double tiered = all[2].cross_subsidy_index;
    EXPECT_GT(flat, tiered);
    EXPECT_GT(usage, tiered);
}

TEST(Pricing, PureUsageStillSubsidizesFixedCosts) {
    // Usage pricing folds fixed costs into $/GB, so heavy users carry
    // more than their incremental cost: the index is small but not 0
    // when fixed costs exist...
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kUsage);
    EXPECT_GT(o.cross_subsidy_index, 0.0);
    // ... and exactly 0 when cost is purely volumetric.
    const auto pure = price_population(small_pop(), LmpCostModel{0.0, 0.05},
                                       PricingScheme::kUsage);
    EXPECT_NEAR(pure.cross_subsidy_index, 0.0, 1e-12);
}

TEST(Pricing, TieredBillsFlatUnderAllowance) {
    TieredParams tiered;
    tiered.allowance_gb = 150.0;
    const auto o = price_population(small_pop(), cost_model(), PricingScheme::kTiered, tiered);
    // Users at 10/50/100 GB pay only the base fee; 500 GB pays overage.
    EXPECT_NEAR(o.min_bill, o.price_parameter, 1e-9);
    EXPECT_GT(o.max_bill, o.price_parameter);
}

TEST(Pricing, TieredRejectsAllowanceMakingBaseNegative) {
    // Allowance 0 + big markup: overage revenue alone exceeds cost.
    TieredParams tiered;
    tiered.allowance_gb = 0.0;
    tiered.overage_markup = 100.0;
    EXPECT_THROW(price_population(small_pop(), cost_model(), PricingScheme::kTiered, tiered),
                 util::ContractViolation);
}

TEST(Pricing, ValidatesInputs) {
    EXPECT_THROW(price_population({}, cost_model(), PricingScheme::kFlat),
                 util::ContractViolation);
    EXPECT_THROW(price_population({-1.0}, cost_model(), PricingScheme::kFlat),
                 util::ContractViolation);
}

TEST(Pricing, SchemeNamesStable) {
    EXPECT_STREQ(scheme_name(PricingScheme::kFlat), "flat");
    EXPECT_STREQ(scheme_name(PricingScheme::kUsage), "usage-based");
    EXPECT_STREQ(scheme_name(PricingScheme::kTiered), "tiered");
}

}  // namespace
}  // namespace poc::econ
