// Closed-form checks of sections 4.3-4.4: for linear demand
// D(p) = 1 - p/P the textbook double-marginalization results are
//   p* = P/2 (NN), p*(t) = (P+t)/2, t* = P/2, p*(t*) = 3P/4.
// For exponential demand D(p) = exp(-p/theta):
//   p* = theta, p*(t) = theta + t, t* = theta, p*(t*) = 2 theta.
#include "econ/pricing_models.hpp"

#include <gtest/gtest.h>

namespace poc::econ {
namespace {

TEST(MonopolyPrice, LinearHalfOfMax) {
    LinearDemand d(100.0);
    EXPECT_NEAR(monopoly_price(d).x, 50.0, 1e-4);
    EXPECT_NEAR(monopoly_price(d).value, 25.0, 1e-6);
}

TEST(MonopolyPrice, ExponentialEqualsTheta) {
    ExponentialDemand d(40.0);
    EXPECT_NEAR(monopoly_price(d).x, 40.0, 1e-3);
}

TEST(CspPriceGivenFee, LinearClosedForm) {
    LinearDemand d(100.0);
    for (const double t : {0.0, 10.0, 30.0, 60.0}) {
        EXPECT_NEAR(csp_price_given_fee(d, t).x, (100.0 + t) / 2.0, 1e-3) << "t=" << t;
    }
}

TEST(CspPriceGivenFee, ExponentialClosedForm) {
    ExponentialDemand d(40.0);
    for (const double t : {0.0, 20.0, 50.0}) {
        EXPECT_NEAR(csp_price_given_fee(d, t).x, 40.0 + t, 0.05) << "t=" << t;
    }
}

TEST(CspPriceGivenFee, PriceAlwaysAboveFee) {
    LogisticDemand d(50.0, 10.0);
    for (const double t : {0.0, 15.0, 40.0, 80.0}) {
        EXPECT_GE(csp_price_given_fee(d, t).x, t);
    }
}

TEST(LmpOptimalFee, LinearDoubleMarginalization) {
    LinearDemand d(100.0);
    const auto t = lmp_optimal_fee(d);
    EXPECT_NEAR(t.x, 50.0, 0.05);
    // Resulting consumer price 3P/4.
    EXPECT_NEAR(csp_price_given_fee(d, t.x).x, 75.0, 0.05);
}

TEST(LmpOptimalFee, ExponentialEqualsTheta) {
    ExponentialDemand d(40.0);
    EXPECT_NEAR(lmp_optimal_fee(d).x, 40.0, 0.2);
}

TEST(LmpOptimalFee, FeeRevenuePositive) {
    IsoelasticDemand d(10.0, 2.5);
    const auto t = lmp_optimal_fee(d);
    EXPECT_GT(t.value, 0.0);
    EXPECT_GT(t.x, 0.0);
}

TEST(PriceResponseCurve, CoversGridAndMonotone) {
    LinearDemand d(100.0);
    const auto curve = price_response_curve(d, 60.0, 13);
    ASSERT_EQ(curve.size(), 13u);
    EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().first, 60.0);
    for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
        EXPECT_LE(curve[i].second, curve[i + 1].second + 1e-6);
    }
}

TEST(PricingModels, RejectsNegativeFee) {
    LinearDemand d(100.0);
    EXPECT_THROW(csp_price_given_fee(d, -1.0), util::ContractViolation);
}

}  // namespace
}  // namespace poc::econ
