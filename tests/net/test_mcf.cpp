#include "net/mcf.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "helpers/graphs.hpp"
#include "net/maxflow.hpp"

namespace poc::net {
namespace {

TEST(GreedyRouting, RoutesFittingDemands) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 8.0}};
    const auto r = greedy_path_routing(sg, tm);
    ASSERT_TRUE(r.has_value());
    double carried = 0.0;
    for (const auto& [path, rate] : r->routes[0]) carried += rate;
    EXPECT_NEAR(carried, 8.0, 1e-9);
}

TEST(GreedyRouting, SplitsAcrossPathsWhenNeeded) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 13.0}};  // > any single path
    const auto r = greedy_path_routing(sg, tm);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->routes[0].size(), 2u);
}

TEST(GreedyRouting, FailsWhenDemandExceedsCut) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 16.0}};  // cut is 15
    EXPECT_FALSE(greedy_path_routing(sg, tm).has_value());
}

TEST(GreedyRouting, LinkLoadsRespectCapacity) {
    Graph g = test::ring(6, 5.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{3u}, 4.0}, {NodeId{1u}, NodeId{4u}, 2.0}};
    const auto r = greedy_path_routing(sg, tm);
    ASSERT_TRUE(r.has_value());
    const auto load = r->link_load(g);
    for (const LinkId l : g.all_links()) {
        EXPECT_LE(load[l.index()], g.link(l).capacity_gbps + 1e-9);
    }
}

TEST(GreedyRouting, UtilizationCapTightensCapacity) {
    Graph g = test::chain(2, 10.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{1u}, 6.0}};
    GreedyRoutingOptions opt;
    opt.utilization_cap = 0.5;  // only 5 usable
    EXPECT_FALSE(greedy_path_routing(sg, tm, opt).has_value());
    opt.utilization_cap = 0.7;
    EXPECT_TRUE(greedy_path_routing(sg, tm, opt).has_value());
}

TEST(GreedyRouting, ExclusionsForbidLinks) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 4.0}};
    CommodityExclusions excl{{LinkId{0u}}};  // cannot use 0-1
    GreedyRoutingOptions opt;
    opt.exclusions = &excl;
    const auto r = greedy_path_routing(sg, tm, opt);
    ASSERT_TRUE(r.has_value());
    for (const auto& [path, rate] : r->routes[0]) {
        for (const LinkId l : path) EXPECT_NE(l, LinkId{0u});
    }
}

TEST(GreedyRouting, EmptyMatrixTriviallyRoutable) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_TRUE(greedy_path_routing(sg, {}).has_value());
}

TEST(ConcurrentFlow, SingleCommodityApproachesMaxFlow) {
    Graph g = test::maxflow_classic();
    Subgraph sg(g);
    const double mf = max_flow(sg, NodeId{0u}, NodeId{5u}).value;
    TrafficMatrix tm{{NodeId{0u}, NodeId{5u}, mf}};
    const auto r = max_concurrent_flow(sg, tm, 0.05);
    // lambda* = 1 exactly; FPTAS guarantees >= (1-O(eps)).
    EXPECT_GE(r.lambda, 0.85);
    EXPECT_LE(r.lambda, 1.0 + 0.05);
}

TEST(ConcurrentFlow, ScaledRoutingIsCapacityFeasible) {
    Graph g = test::maxflow_classic();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{5u}, 10.0}, {NodeId{1u}, NodeId{4u}, 5.0}};
    const auto r = max_concurrent_flow(sg, tm, 0.1);
    const auto load = r.routing.link_load(g);
    for (const LinkId l : g.all_links()) {
        EXPECT_LE(load[l.index()], g.link(l).capacity_gbps * (1.0 + 1e-6));
    }
}

TEST(ConcurrentFlow, UnreachableDemandGivesZeroLambda) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 5.0, 1.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 1.0}};
    EXPECT_DOUBLE_EQ(max_concurrent_flow(sg, tm, 0.1).lambda, 0.0);
}

TEST(ConcurrentFlow, EmptyMatrixIsInfinitelyFeasible) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_TRUE(std::isinf(max_concurrent_flow(sg, {}, 0.1).lambda));
}

TEST(ConcurrentFlow, LambdaScalesInverselyWithDemand) {
    Graph g = test::chain(2, 10.0);
    Subgraph sg(g);
    const auto r1 = max_concurrent_flow(sg, {{NodeId{0u}, NodeId{1u}, 5.0}}, 0.05);
    const auto r2 = max_concurrent_flow(sg, {{NodeId{0u}, NodeId{1u}, 10.0}}, 0.05);
    EXPECT_NEAR(r1.lambda / r2.lambda, 2.0, 0.2);
}

TEST(ConcurrentFlow, ExclusionsRespected) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 2.0}};
    CommodityExclusions excl{{LinkId{0u}, LinkId{1u}}};  // only direct allowed
    const auto r = max_concurrent_flow(sg, tm, 0.1, &excl);
    EXPECT_GT(r.lambda, 0.0);
    for (const auto& [path, rate] : r.routing.routes[0]) {
        ASSERT_EQ(path.size(), 1u);
        EXPECT_EQ(path[0], LinkId{2u});
    }
}

TEST(IsRoutable, AgreesWithObviousCases) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_TRUE(is_routable(sg, {{NodeId{0u}, NodeId{2u}, 8.0}}));
    EXPECT_FALSE(is_routable(sg, {{NodeId{0u}, NodeId{2u}, 50.0}}));
}

TEST(IsRoutable, FptasFallbackCatchesGreedyMisses) {
    // Two commodities that fit fractionally but can defeat a greedy
    // order: cross traffic on a ring near capacity.
    Graph g = test::ring(4, 10.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 19.0}};
    // Max flow 0->2 is 20 (two 2-hop paths of cap 10): feasible.
    EXPECT_TRUE(is_routable(sg, tm, 0.05));
}

}  // namespace
}  // namespace poc::net
