#include "net/ksp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "helpers/graphs.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {
namespace {

/// Diamond: 0-1-3 (cost 2), 0-2-3 (cost 3), plus direct 0-3 (cost 4).
Graph diamond() {
    Graph g;
    g.add_nodes(4);
    g.add_link(NodeId{0u}, NodeId{1u}, 10.0, 1.0);  // link 0
    g.add_link(NodeId{1u}, NodeId{3u}, 10.0, 1.0);  // link 1
    g.add_link(NodeId{0u}, NodeId{2u}, 10.0, 1.0);  // link 2
    g.add_link(NodeId{2u}, NodeId{3u}, 10.0, 2.0);  // link 3
    g.add_link(NodeId{0u}, NodeId{3u}, 10.0, 4.0);  // link 4
    return g;
}

TEST(Yen, FindsPathsInWeightOrder) {
    Graph g = diamond();
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{3u}, weight_by_length(g), 3);
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_DOUBLE_EQ(paths[0].weight, 2.0);
    EXPECT_DOUBLE_EQ(paths[1].weight, 3.0);
    EXPECT_DOUBLE_EQ(paths[2].weight, 4.0);
    EXPECT_EQ(paths[0].links, (std::vector<LinkId>{LinkId{0u}, LinkId{1u}}));
    EXPECT_EQ(paths[2].links, (std::vector<LinkId>{LinkId{4u}}));
}

TEST(Yen, ReturnsFewerWhenPathSpaceExhausted) {
    Graph g = diamond();
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{3u}, weight_by_length(g), 10);
    EXPECT_EQ(paths.size(), 3u);  // only 3 loopless paths exist
}

TEST(Yen, SinglePathGraph) {
    Graph g = test::chain(4);
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{3u}, weight_unit(), 5);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].links.size(), 3u);
}

TEST(Yen, DisconnectedYieldsEmpty) {
    Graph g;
    g.add_nodes(2);
    Subgraph sg(g);
    EXPECT_TRUE(yen_k_shortest(sg, NodeId{0u}, NodeId{1u}, weight_unit(), 3).empty());
}

TEST(Yen, PathsAreLoopless) {
    util::Rng rng(5);
    Graph g = test::random_connected(rng, 10, 12);
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{9u}, weight_by_length(g), 6);
    ASSERT_FALSE(paths.empty());
    for (const auto& wp : paths) {
        const auto nodes = path_nodes(g, NodeId{0u}, wp.links);
        std::set<NodeId> unique(nodes.begin(), nodes.end());
        EXPECT_EQ(unique.size(), nodes.size()) << "loop detected";
        EXPECT_EQ(nodes.back(), NodeId{9u});
    }
}

TEST(Yen, PathsAreDistinctAndSorted) {
    util::Rng rng(6);
    Graph g = test::random_connected(rng, 10, 14);
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{7u}, weight_by_length(g), 8);
    for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
        EXPECT_LE(paths[i].weight, paths[i + 1].weight + 1e-12);
        EXPECT_NE(paths[i].links, paths[i + 1].links);
    }
}

TEST(Yen, FirstPathMatchesDijkstra) {
    util::Rng rng(7);
    Graph g = test::random_connected(rng, 12, 10);
    Subgraph sg(g);
    const auto w = weight_by_length(g);
    const auto paths = yen_k_shortest(sg, NodeId{1u}, NodeId{8u}, w, 1);
    const auto sp = shortest_path(sg, NodeId{1u}, NodeId{8u}, w);
    ASSERT_EQ(paths.size(), 1u);
    ASSERT_TRUE(sp.has_value());
    EXPECT_NEAR(paths[0].weight, sp->weight, 1e-12);
}

TEST(Yen, ParallelLinksCountAsDistinctPaths) {
    Graph g;
    g.add_nodes(2);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 2.0);
    Subgraph sg(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{1u}, weight_by_length(g), 3);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_DOUBLE_EQ(paths[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(paths[1].weight, 2.0);
}

TEST(Yen, RejectsBadArguments) {
    Graph g = test::chain(2);
    Subgraph sg(g);
    EXPECT_THROW(yen_k_shortest(sg, NodeId{0u}, NodeId{0u}, weight_unit(), 2),
                 util::ContractViolation);
    EXPECT_THROW(yen_k_shortest(sg, NodeId{0u}, NodeId{1u}, weight_unit(), 0),
                 util::ContractViolation);
}

}  // namespace
}  // namespace poc::net
