#include "net/shortest_path.hpp"

#include <gtest/gtest.h>

#include "helpers/graphs.hpp"
#include "util/contracts.hpp"

namespace poc::net {
namespace {

TEST(Dijkstra, TriangleShortestByLength) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto tree = dijkstra(sg, NodeId{0u}, weight_by_length(g));
    // 0->2 direct costs 3; via 1 costs 2.
    EXPECT_DOUBLE_EQ(tree.dist[2], 2.0);
    const auto path = tree.path_to(NodeId{2u});
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], LinkId{0u});
    EXPECT_EQ(path[1], LinkId{1u});
}

TEST(Dijkstra, UnitWeightPrefersFewerHops) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto tree = dijkstra(sg, NodeId{0u}, weight_unit());
    EXPECT_DOUBLE_EQ(tree.dist[2], 1.0);  // direct link, one hop
}

TEST(Dijkstra, UnreachableReportsInfinity) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    Subgraph sg(g);
    const auto tree = dijkstra(sg, NodeId{0u}, weight_unit());
    EXPECT_FALSE(tree.reachable(NodeId{2u}));
    EXPECT_THROW(tree.path_to(NodeId{2u}), util::ContractViolation);
}

TEST(Dijkstra, RespectsInactiveLinks) {
    Graph g = test::triangle();
    Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);  // cut 0-1
    const auto tree = dijkstra(sg, NodeId{0u}, weight_by_length(g));
    EXPECT_DOUBLE_EQ(tree.dist[2], 3.0);  // forced direct
    EXPECT_DOUBLE_EQ(tree.dist[1], 4.0);  // 0-2-1
}

TEST(Dijkstra, SourceDistanceZero) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto tree = dijkstra(sg, NodeId{1u}, weight_unit());
    EXPECT_DOUBLE_EQ(tree.dist[1], 0.0);
    EXPECT_TRUE(tree.path_to(NodeId{1u}).empty());
}

TEST(Dijkstra, RejectsNegativeWeights) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_THROW(dijkstra(sg, NodeId{0u}, [](LinkId) { return -1.0; }),
                 util::ContractViolation);
}

TEST(BellmanFord, MatchesKnownDistances) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto tree = bellman_ford(sg, NodeId{0u}, weight_by_length(g));
    ASSERT_TRUE(tree.has_value());
    EXPECT_DOUBLE_EQ(tree->dist[2], 2.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto tree = bellman_ford(sg, NodeId{0u}, [](LinkId) { return -1.0; });
    EXPECT_FALSE(tree.has_value());
}

TEST(BellmanFord, HandlesNegativeWeightsWithoutCycle) {
    // Chain where one link has negative weight; undirected graphs with a
    // negative link always have a negative cycle (traverse back and
    // forth), so Bellman-Ford must reject it.
    Graph g = test::chain(3);
    Subgraph sg(g);
    const auto tree = bellman_ford(sg, NodeId{0u},
                                   [](LinkId l) { return l.index() == 0 ? -2.0 : 1.0; });
    EXPECT_FALSE(tree.has_value());
}

class SpEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpEquivalence, DijkstraEqualsBellmanFordOnRandomGraphs) {
    util::Rng rng(GetParam());
    Graph g = test::random_connected(rng, 12, 10);
    Subgraph sg(g);
    const auto w = weight_by_length(g);
    for (std::size_t src = 0; src < 3; ++src) {
        const auto d = dijkstra(sg, NodeId{src}, w);
        const auto bf = bellman_ford(sg, NodeId{src}, w);
        ASSERT_TRUE(bf.has_value());
        for (std::size_t v = 0; v < g.node_count(); ++v) {
            EXPECT_NEAR(d.dist[v], bf->dist[v], 1e-9) << "node " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpEquivalence, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ShortestPath, ReturnsWeightedPath) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto wp = shortest_path(sg, NodeId{0u}, NodeId{2u}, weight_by_length(g));
    ASSERT_TRUE(wp.has_value());
    EXPECT_DOUBLE_EQ(wp->weight, 2.0);
    EXPECT_EQ(wp->links.size(), 2u);
}

TEST(ShortestPath, NulloptWhenDisconnected) {
    Graph g;
    g.add_nodes(2);
    Subgraph sg(g);
    EXPECT_FALSE(shortest_path(sg, NodeId{0u}, NodeId{1u}, weight_unit()).has_value());
}

TEST(PathNodes, WalksLinkSequence) {
    Graph g = test::triangle();
    const std::vector<LinkId> path{LinkId{0u}, LinkId{1u}};
    const auto nodes = path_nodes(g, NodeId{0u}, path);
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0], NodeId{0u});
    EXPECT_EQ(nodes[1], NodeId{1u});
    EXPECT_EQ(nodes[2], NodeId{2u});
}

TEST(PathNodes, ThrowsOnBrokenWalk) {
    Graph g = test::triangle();
    // Link 1 (1-2) does not touch node 0.
    EXPECT_THROW(path_nodes(g, NodeId{0u}, {LinkId{1u}, LinkId{1u}}),
                 util::ContractViolation);
}

TEST(Dijkstra, PathReconstructionConsistentWithDistance) {
    util::Rng rng(99);
    Graph g = test::random_connected(rng, 15, 12);
    Subgraph sg(g);
    const auto w = weight_by_length(g);
    const auto tree = dijkstra(sg, NodeId{0u}, w);
    for (std::size_t v = 1; v < g.node_count(); ++v) {
        ASSERT_TRUE(tree.reachable(NodeId{v}));
        double sum = 0.0;
        for (const LinkId l : tree.path_to(NodeId{v})) sum += w(l);
        EXPECT_NEAR(sum, tree.dist[v], 1e-9);
    }
}

}  // namespace
}  // namespace poc::net
