#include "net/maxflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers/graphs.hpp"
#include "net/connectivity.hpp"

namespace poc::net {
namespace {

TEST(MaxFlow, ClassicInstance) {
    // The CLRS example gives 23 in its directed form; our links are
    // undirected, which can only increase the value. Verify against the
    // min cut instead: this undirected version's s-side cut {0} caps at
    // 16+13 = 29; compute and cross-check with min-cut reachability.
    Graph g = test::maxflow_classic();
    Subgraph sg(g);
    const auto r = max_flow(sg, NodeId{0u}, NodeId{5u});
    EXPECT_GT(r.value, 0.0);
    EXPECT_LE(r.value, 29.0 + 1e-9);
    // Sink-side neighbors cut: links into 5 are 20 + 4 = 24.
    EXPECT_LE(r.value, 24.0 + 1e-9);
}

TEST(MaxFlow, ChainBottleneck) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 7.0, 1.0);
    g.add_link(NodeId{1u}, NodeId{2u}, 3.0, 1.0);
    Subgraph sg(g);
    EXPECT_NEAR(max_flow(sg, NodeId{0u}, NodeId{2u}).value, 3.0, 1e-9);
}

TEST(MaxFlow, ParallelLinksAdd) {
    Graph g;
    g.add_nodes(2);
    g.add_link(NodeId{0u}, NodeId{1u}, 2.0, 1.0);
    g.add_link(NodeId{0u}, NodeId{1u}, 5.0, 1.0);
    Subgraph sg(g);
    EXPECT_NEAR(max_flow(sg, NodeId{0u}, NodeId{1u}).value, 7.0, 1e-9);
}

TEST(MaxFlow, DisconnectedIsZero) {
    Graph g;
    g.add_nodes(2);
    Subgraph sg(g);
    EXPECT_DOUBLE_EQ(max_flow(sg, NodeId{0u}, NodeId{1u}).value, 0.0);
}

TEST(MaxFlow, RingHasTwoPaths) {
    Graph g = test::ring(6, 4.0);
    Subgraph sg(g);
    // Both directions around the ring: 2 * 4.
    EXPECT_NEAR(max_flow(sg, NodeId{0u}, NodeId{3u}).value, 8.0, 1e-9);
}

TEST(MaxFlow, SourceSideIsValidCut) {
    Graph g = test::maxflow_classic();
    Subgraph sg(g);
    const auto r = max_flow(sg, NodeId{0u}, NodeId{5u});
    // Source side contains source, not sink.
    bool has_src = false;
    bool has_dst = false;
    for (const NodeId n : r.source_side) {
        has_src |= n == NodeId{0u};
        has_dst |= n == NodeId{5u};
    }
    EXPECT_TRUE(has_src);
    EXPECT_FALSE(has_dst);
}

TEST(MaxFlow, MinCutEqualsMaxFlowOnRandomGraphs) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        util::Rng rng(seed);
        Graph g = test::random_connected(rng, 10, 12);
        Subgraph sg(g);
        const auto r = max_flow(sg, NodeId{0u}, NodeId{9u});
        // Capacity of the cut induced by source_side must equal value.
        std::vector<bool> in_s(g.node_count(), false);
        for (const NodeId n : r.source_side) in_s[n.index()] = true;
        double cut_cap = 0.0;
        for (const LinkId lid : g.all_links()) {
            const Link& l = g.link(lid);
            if (in_s[l.a.index()] != in_s[l.b.index()]) cut_cap += l.capacity_gbps;
        }
        EXPECT_NEAR(r.value, cut_cap, 1e-6) << "seed " << seed;
    }
}

TEST(MaxFlow, FlowConservationAtInteriorNodes) {
    util::Rng rng(17);
    Graph g = test::random_connected(rng, 8, 10);
    Subgraph sg(g);
    const auto r = max_flow(sg, NodeId{0u}, NodeId{7u});
    std::vector<double> net_out(g.node_count(), 0.0);
    for (const LinkFlow& f : r.flows) {
        const Link& l = g.link(f.link);
        net_out[l.a.index()] += f.flow;
        net_out[l.b.index()] -= f.flow;
    }
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        if (v == 0) {
            EXPECT_NEAR(net_out[v], r.value, 1e-6);
        } else if (v == 7) {
            EXPECT_NEAR(net_out[v], -r.value, 1e-6);
        } else {
            EXPECT_NEAR(net_out[v], 0.0, 1e-6);
        }
    }
}

TEST(MaxFlow, FlowsRespectCapacities) {
    util::Rng rng(23);
    Graph g = test::random_connected(rng, 8, 12);
    Subgraph sg(g);
    const auto r = max_flow(sg, NodeId{0u}, NodeId{5u});
    for (const LinkFlow& f : r.flows) {
        EXPECT_LE(std::abs(f.flow), g.link(f.link).capacity_gbps + 1e-9);
    }
}

TEST(LinkDisjointPaths, CountsMengerStyle) {
    Graph g = test::ring(5);
    Subgraph sg(g);
    EXPECT_EQ(link_disjoint_path_count(sg, NodeId{0u}, NodeId{2u}), 2u);
    Graph c = test::chain(4);
    Subgraph sc(c);
    EXPECT_EQ(link_disjoint_path_count(sc, NodeId{0u}, NodeId{3u}), 1u);
}

TEST(LinkDisjointPaths, InactiveLinksReduceCount) {
    Graph g = test::ring(5);
    Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);
    EXPECT_EQ(link_disjoint_path_count(sg, NodeId{0u}, NodeId{2u}), 1u);
}

TEST(MinCut, MatchesMaxFlowValue) {
    Graph g = test::maxflow_classic();
    Subgraph sg(g);
    EXPECT_NEAR(min_cut_capacity(sg, NodeId{0u}, NodeId{5u}),
                max_flow(sg, NodeId{0u}, NodeId{5u}).value, 1e-9);
}

TEST(MaxFlow, RejectsEqualEndpoints) {
    Graph g = test::chain(2);
    Subgraph sg(g);
    EXPECT_THROW(max_flow(sg, NodeId{0u}, NodeId{0u}), util::ContractViolation);
}

}  // namespace
}  // namespace poc::net
