// Sharded shared-nothing data plane (DESIGN.md §9): the partition
// plan's invariants, the SoA traffic matrix round trip, bit-identity
// of sharded_primary_flow across shard counts x thread counts x cache
// modes, semantic agreement with a naive per-demand reference, and the
// zero-allocation steady state of the serial per-shard path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "core/flow_sim.hpp"
#include "helpers/graphs.hpp"
#include "net/shard.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topo/synthetic.hpp"
#include "util/rng.hpp"

using namespace poc;
using net::LinkId;
using net::NodeId;

namespace {

thread_local std::uint64_t g_thread_allocs = 0;

}  // namespace

// GCC attributes inlined delete-after-make_unique sites to the free()
// below and flags a new/free mismatch; every new in this binary goes
// through the malloc-backed replacement above it, so the pairing is
// correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
    ++g_thread_allocs;
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace {

net::TrafficMatrix random_demands(util::Rng& rng, std::size_t nodes, std::size_t count,
                                  std::size_t max_sources) {
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < count; ++i) {
        const auto s =
            static_cast<std::size_t>(rng.uniform_int(std::uint64_t{max_sources})) % nodes;
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{nodes}));
        if (t == s) t = (t + 1) % nodes;
        tm.push_back({NodeId{s}, NodeId{t}, rng.uniform(0.5, 5.0)});
    }
    return tm;
}

void expect_results_identical(const net::ShardFlowResult& a, const net::ShardFlowResult& b,
                              const std::string& tag) {
    // Exact double equality on purpose: the contract is bit-identity.
    EXPECT_EQ(a.routed_gbps, b.routed_gbps) << tag;
    EXPECT_EQ(a.weighted_km, b.weighted_km) << tag;
    EXPECT_EQ(a.total_gbps_km, b.total_gbps_km) << tag;
    EXPECT_EQ(a.virtual_gbps_km, b.virtual_gbps_km) << tag;
    EXPECT_EQ(a.admitted, b.admitted) << tag;
    EXPECT_EQ(a.unrouted, b.unrouted) << tag;
    ASSERT_EQ(a.link_load_gbps.size(), b.link_load_gbps.size()) << tag;
    for (std::size_t l = 0; l < a.link_load_gbps.size(); ++l) {
        EXPECT_EQ(a.link_load_gbps[l], b.link_load_gbps[l]) << tag << " link " << l;
    }
}

TEST(TrafficMatrixSoA, RoundTripIsExactAndBlocksAreSorted) {
    util::Rng rng(31);
    for (int round = 0; round < 10; ++round) {
        const std::size_t n = 20;
        const net::TrafficMatrix tm = random_demands(rng, n, 120, 7);
        const net::TrafficMatrixSoA soa(tm);
        ASSERT_EQ(soa.size(), tm.size());

        // Sorted ascending by source; stable within equal-source runs.
        for (std::size_t k = 1; k < soa.size(); ++k) {
            EXPECT_LE(soa.src()[k - 1], soa.src()[k]);
            if (soa.src()[k - 1] == soa.src()[k]) {
                EXPECT_LT(soa.original_index()[k - 1], soa.original_index()[k]);
            }
        }
        // Every sorted entry carries its AoS demand verbatim.
        for (std::size_t k = 0; k < soa.size(); ++k) {
            const net::Demand& d = tm[soa.original_index()[k]];
            EXPECT_EQ(soa.src()[k], d.src.value());
            EXPECT_EQ(soa.dst()[k], d.dst.value());
            EXPECT_EQ(soa.gbps()[k], d.gbps);
        }
        // Block structure: sources strictly ascending, boundaries cover.
        ASSERT_EQ(soa.block_begin().size(), soa.sources().size() + 1);
        EXPECT_EQ(soa.block_begin().front(), 0u);
        EXPECT_EQ(soa.block_begin().back(), soa.size());
        for (std::size_t b = 0; b < soa.sources().size(); ++b) {
            EXPECT_LT(soa.block_begin()[b], soa.block_begin()[b + 1]);
            if (b > 0) {
                EXPECT_LT(soa.sources()[b - 1], soa.sources()[b]);
            }
            for (std::uint32_t k = soa.block_begin()[b]; k < soa.block_begin()[b + 1]; ++k) {
                EXPECT_EQ(soa.src()[k], soa.sources()[b]);
            }
        }
        // The round trip reproduces the AoS list exactly.
        const net::TrafficMatrix back = soa.to_aos();
        ASSERT_EQ(back.size(), tm.size());
        for (std::size_t j = 0; j < tm.size(); ++j) {
            EXPECT_EQ(back[j].src, tm[j].src);
            EXPECT_EQ(back[j].dst, tm[j].dst);
            EXPECT_EQ(back[j].gbps, tm[j].gbps);
        }
    }
}

TEST(TrafficMatrixSoA, EmptyMatrix) {
    const net::TrafficMatrixSoA soa{net::TrafficMatrix{}};
    EXPECT_TRUE(soa.empty());
    EXPECT_TRUE(soa.sources().empty());
    ASSERT_EQ(soa.block_begin().size(), 1u);
    EXPECT_EQ(soa.block_begin()[0], 0u);
    EXPECT_TRUE(soa.to_aos().empty());
}

TEST(ShardPlan, BoundariesCoverEveryBlockNonEmptyAndBalanced) {
    util::Rng rng(37);
    const net::TrafficMatrix tm = random_demands(rng, 40, 300, 23);
    const net::TrafficMatrixSoA soa(tm);
    const std::size_t blocks = soa.sources().size();
    ASSERT_GE(blocks, 4u);

    for (const std::size_t shards : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}, std::size_t{1000}}) {
        const net::ShardPlan plan = net::plan_shards(soa, shards);
        const std::size_t expect_count =
            std::min(shards == 0 ? std::size_t{1} : shards, blocks);
        ASSERT_EQ(plan.shard_count(), expect_count) << "shards " << shards;
        EXPECT_EQ(plan.source_begin.front(), 0u);
        EXPECT_EQ(plan.source_begin.back(), blocks);
        for (std::size_t s = 0; s < plan.shard_count(); ++s) {
            EXPECT_LT(plan.source_begin[s], plan.source_begin[s + 1])
                << "shards " << shards << " shard " << s << " empty";
        }
    }

    // Balance sanity at a divisible shard count: no shard owns more
    // than the ideal share plus one full source block.
    const net::ShardPlan plan = net::plan_shards(soa, 4);
    std::uint32_t max_block = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
        max_block = std::max(max_block, soa.block_begin()[b + 1] - soa.block_begin()[b]);
    }
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
        const std::uint32_t demands = soa.block_begin()[plan.source_begin[s + 1]] -
                                      soa.block_begin()[plan.source_begin[s]];
        EXPECT_LE(demands, soa.size() / 4 + max_block) << "shard " << s;
    }
}

TEST(ShardPlan, EmptyMatrixYieldsNoShards) {
    const net::TrafficMatrixSoA soa{net::TrafficMatrix{}};
    EXPECT_EQ(net::plan_shards(soa, 4).shard_count(), 0u);
}

TEST(ShardedPrimaryFlow, BitIdenticalAcrossShardsThreadsAndCacheModes) {
    util::Rng rng(41);
    for (int round = 0; round < 6; ++round) {
        const std::size_t n = 24 + static_cast<std::size_t>(rng.uniform_int(40));
        const net::Graph g = test::random_connected(rng, n, n / 2 + 2);
        net::Subgraph sg(g);
        for (const LinkId l : g.all_links()) {
            if (rng.uniform(0.0, 1.0) < 0.2) sg.set_active(l, false);
        }
        net::TrafficMatrix tm = random_demands(rng, n, 200, 11);
        tm[3].gbps = 0.0;  // zero demands must not perturb anything
        const net::TrafficMatrixSoA soa(tm);
        std::vector<bool> is_virtual(g.link_count(), false);
        is_virtual[0] = true;
        is_virtual[g.link_count() / 2] = true;

        net::ShardOptions ref_opt;
        ref_opt.is_virtual = &is_virtual;
        net::ShardWorkspace ref_ws;
        net::ShardFlowResult reference;
        net::sharded_primary_flow(sg, soa, ref_opt, ref_ws, reference);

        net::PathCache cache;
        net::PathCache repair_cache(1, 4);
        net::ShardWorkspace ws;  // reused across configs: exercises reset
        net::ShardFlowResult got;
        for (const std::size_t shards :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            for (const std::size_t threads :
                 {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
                for (net::PathCache* c :
                     {static_cast<net::PathCache*>(nullptr), &cache, &repair_cache}) {
                    net::ShardOptions opt = ref_opt;
                    opt.shards = shards;
                    opt.threads = threads;
                    opt.cache = c;
                    net::sharded_primary_flow(sg, soa, opt, ws, got);
                    expect_results_identical(
                        reference, got,
                        "round " + std::to_string(round) + " shards " +
                            std::to_string(shards) + " threads " + std::to_string(threads) +
                            " cache " + std::to_string(c != nullptr ? 1 + (c == &repair_cache) : 0));
                }
            }
        }
    }
}

TEST(ShardedPrimaryFlow, MatchesNaivePerDemandReference) {
    util::Rng rng(43);
    const std::size_t n = 30;
    const net::Graph g = test::random_connected(rng, n, 18);
    net::Subgraph sg(g);
    sg.set_active(LinkId{1u}, false);
    const net::TrafficMatrix tm = random_demands(rng, n, 150, 9);
    const net::TrafficMatrixSoA soa(tm);

    net::ShardOptions opt;
    opt.shards = 4;
    net::ShardWorkspace ws;
    net::ShardFlowResult got;
    net::sharded_primary_flow(sg, soa, opt, ws, got);

    std::vector<double> load(g.link_count(), 0.0);
    double routed = 0.0;
    double weighted = 0.0;
    std::size_t admitted = 0;
    std::size_t unrouted = 0;
    const net::LinkWeight w = net::weight_by_length(g);
    for (const net::Demand& d : tm) {
        if (d.gbps <= 0.0) continue;
        const auto path = net::shortest_path(sg, d.src, d.dst, w);
        if (!path) {
            ++unrouted;
            continue;
        }
        ++admitted;
        routed += d.gbps;
        weighted += d.gbps * path->weight;
        for (const LinkId l : path->links) load[l.index()] += d.gbps;
    }

    EXPECT_EQ(got.admitted, admitted);
    EXPECT_EQ(got.unrouted, unrouted);
    EXPECT_NEAR(got.routed_gbps, routed, 1e-9 * routed);
    EXPECT_NEAR(got.weighted_km, weighted, 1e-9 * weighted);
    for (std::size_t l = 0; l < load.size(); ++l) {
        EXPECT_NEAR(got.link_load_gbps[l], load[l], 1e-9 * (load[l] + 1.0)) << "link " << l;
    }
}

TEST(ShardedPrimaryFlow, SimulateFlowsPrimaryReportInvariants) {
    util::Rng rng(47);
    const net::Graph g = test::random_connected(rng, 40, 25);
    const net::Subgraph sg(g);
    const net::TrafficMatrix tm = random_demands(rng, 40, 120, 13);

    core::FlowSimOptions opt;
    opt.routing = core::FlowRouting::kPrimary;
    const core::FlowReport a = core::simulate_flows(sg, tm, {}, opt);

    EXPECT_TRUE(a.fully_routed);  // connected graph, all links active
    EXPECT_EQ(a.total_offered_gbps, net::total_demand(tm));
    EXPECT_NEAR(a.total_routed_gbps, a.total_offered_gbps, 1e-9 * a.total_offered_gbps);
    EXPECT_EQ(a.stretch, 1.0);  // primary path IS the shortest path
    EXPECT_EQ(a.mean_path_km, a.mean_shortest_km);
    EXPECT_GT(a.max_utilization, 0.0);

    // The report is bit-identical whatever the engine knobs say.
    for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
        core::FlowSimOptions opt2 = opt;
        opt2.flow_shards = shards;
        opt2.sssp_threads = 3;
        const core::FlowReport b = core::simulate_flows(sg, tm, {}, opt2);
        EXPECT_EQ(a.total_routed_gbps, b.total_routed_gbps) << "shards " << shards;
        EXPECT_EQ(a.max_utilization, b.max_utilization) << "shards " << shards;
        EXPECT_EQ(a.mean_utilization, b.mean_utilization) << "shards " << shards;
        EXPECT_EQ(a.mean_path_km, b.mean_path_km) << "shards " << shards;
        EXPECT_EQ(a.link_load_gbps, b.link_load_gbps) << "shards " << shards;
    }
}

TEST(ShardedPrimaryFlow, SyntheticContinentalInstanceRoutesAndShardsIdentically) {
    topo::SyntheticTopologyOptions topt;
    topt.nodes = 2000;
    topt.regions = 16;
    topt.seed = 3;
    const topo::SyntheticTopology topo = topo::build_synthetic_topology(topt);
    topo::ContinentalTrafficOptions copt;
    copt.demands = 5000;
    copt.max_sources = 64;
    const net::TrafficMatrix tm = topo::continental_traffic(topo, copt);
    const net::TrafficMatrixSoA soa(tm);
    const net::Subgraph sg(topo.graph);

    net::ShardWorkspace ws;
    net::ShardFlowResult reference;
    net::sharded_primary_flow(sg, soa, net::ShardOptions{}, ws, reference);
    EXPECT_EQ(reference.unrouted, 0u);  // trunked grid is connected
    EXPECT_EQ(reference.admitted, tm.size());

    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        net::ShardOptions opt;
        opt.shards = shards;
        opt.threads = 2;
        net::ShardFlowResult got;
        net::sharded_primary_flow(sg, soa, opt, ws, got);
        expect_results_identical(reference, got, "shards " + std::to_string(shards));
    }
}

#if POC_OBS_ENABLED
TEST(ShardedPrimaryFlow, EmitsShardObservability) {
    util::Rng rng(59);
    const net::Graph g = test::random_connected(rng, 20, 10);
    const net::Subgraph sg(g);
    const net::TrafficMatrixSoA soa(random_demands(rng, 20, 60, 8));

    obs::registry().reset();
    (void)obs::traces().drain();
    net::ShardOptions opt;
    opt.shards = 4;
    net::ShardWorkspace ws;
    net::ShardFlowResult out;
    net::sharded_primary_flow(sg, soa, opt, ws, out);

    std::uint64_t runs = 0, tasks = 0;
    for (const auto& c : obs::registry().counter_samples()) {
        if (c.name == "net.shard.runs") runs = c.value;
        if (c.name == "net.shard.tasks") tasks = c.value;
    }
    EXPECT_EQ(runs, 1u);
    EXPECT_EQ(tasks, 4u);

    bool saw_imbalance = false;
    for (const auto& gs : obs::registry().gauge_samples()) {
        if (gs.name == "net.shard.imbalance") {
            saw_imbalance = true;
            EXPECT_GE(gs.value, 100);  // max/mean ratio, percent: >= 100
        }
    }
    EXPECT_TRUE(saw_imbalance);

    bool saw_merge = false;
    for (const auto& h : obs::registry().histogram_samples()) {
        if (h.name == "net.shard.merge_ms") {
            saw_merge = true;
            EXPECT_EQ(h.total, 1u);
        }
    }
    EXPECT_TRUE(saw_merge);

    // One run span + one span per shard task.
    std::size_t run_spans = 0, task_spans = 0;
    for (const auto& s : obs::traces().drain()) {
        if (s.name == std::string_view{"net.shard.run"}) ++run_spans;
        if (s.name == std::string_view{"net.shard.task"}) ++task_spans;
    }
    EXPECT_EQ(run_spans, 1u);
    EXPECT_EQ(task_spans, 4u);
}
#endif  // POC_OBS_ENABLED

TEST(ShardedPrimaryFlow, SteadyStateSerialPathIsAllocationFree) {
    util::Rng rng(53);
    const net::Graph g = test::random_connected(rng, 80, 50);
    const net::Subgraph sg(g);
    const net::TrafficMatrix tm = random_demands(rng, 80, 400, 17);
    const net::TrafficMatrixSoA soa(tm);

    net::ShardOptions opt;
    opt.shards = 4;  // serial execution of 4 shard tasks
    net::ShardWorkspace ws;
    net::ShardFlowResult out;
    // Warm-up: size every per-shard buffer, the result arrays, the obs
    // registry statics, and the trace ring's capacity.
    for (int i = 0; i < 50; ++i) net::sharded_primary_flow(sg, soa, opt, ws, out);
#if POC_OBS_ENABLED
    (void)obs::traces().drain();  // empty the span ring, keeping capacity
#endif
    const std::uint64_t before = g_thread_allocs;
    for (int i = 0; i < 5; ++i) net::sharded_primary_flow(sg, soa, opt, ws, out);
    EXPECT_EQ(g_thread_allocs - before, 0u)
        << "sharded per-shard path allocated in the steady state";
}

}  // namespace
