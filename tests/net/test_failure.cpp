#include "net/failure.hpp"

#include <gtest/gtest.h>

#include "helpers/graphs.hpp"

namespace poc::net {
namespace {

TEST(SatisfiesLoad, BasicFeasibility) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_TRUE(satisfies_load(sg, {{NodeId{0u}, NodeId{2u}, 10.0}}));
    EXPECT_FALSE(satisfies_load(sg, {{NodeId{0u}, NodeId{2u}, 20.0}}));
}

TEST(SatisfiesLoad, DisconnectedFailsFast) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 5.0, 1.0);
    Subgraph sg(g);
    EXPECT_FALSE(satisfies_load(sg, {{NodeId{0u}, NodeId{2u}, 1.0}}));
}

TEST(SingleFailure, RingSurvivesAnyLink) {
    Graph g = test::ring(5, 10.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 4.0}};
    EXPECT_TRUE(satisfies_single_failure(sg, tm));
}

TEST(SingleFailure, ChainCannotSurvive) {
    Graph g = test::chain(3, 10.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 1.0}};
    EXPECT_FALSE(satisfies_single_failure(sg, tm));
}

TEST(SingleFailure, RingWithTightCapacityFails) {
    // Demand 8 on a ring of capacity 10: nominal fits, but failing a
    // loaded link forces everything the long way - still capacity 10,
    // fits. Demand 12 needs both directions (8+4), and a failure of
    // the heavy side cannot be absorbed (12 > 10).
    Graph g = test::ring(4, 10.0);
    Subgraph sg(g);
    EXPECT_TRUE(satisfies_single_failure(sg, {{NodeId{0u}, NodeId{1u}, 8.0}}));
    EXPECT_FALSE(satisfies_single_failure(sg, {{NodeId{0u}, NodeId{1u}, 12.0}}));
}

TEST(SingleFailure, UnloadedLinksNeedNoRecheck) {
    // A triangle with a dangling extra link; routing never touches it,
    // and the oracle should still pass quickly (behavioral check only).
    Graph g = test::triangle();
    const NodeId d = g.add_node();
    g.add_link(NodeId{0u}, d, 1.0, 1.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{1u}, 2.0}};
    // 0-1 demand has backup via 2; dangling link irrelevant.
    EXPECT_TRUE(satisfies_single_failure(sg, tm));
}

TEST(PrimaryPaths, ShortestByLength) {
    Graph g = test::triangle();
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 1.0}};
    const auto primaries = primary_paths(sg, tm);
    ASSERT_EQ(primaries.size(), 1u);
    EXPECT_EQ(primaries[0], (std::vector<LinkId>{LinkId{0u}, LinkId{1u}}));
}

TEST(PrimaryPaths, EmptyForZeroOrDisconnected) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 5.0, 1.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 1.0}, {NodeId{0u}, NodeId{1u}, 0.0}};
    const auto primaries = primary_paths(sg, tm);
    EXPECT_TRUE(primaries[0].empty());
    EXPECT_TRUE(primaries[1].empty());
}

TEST(PrimaryPaths, DisconnectedByDeactivatedLinkYieldsEmptySet) {
    // Endpoints connected in the underlying graph but separated in the
    // subgraph view: the primary-path set must come back empty, not
    // throw or fall back to inactive links.
    Graph g = test::chain(3, 10.0);
    Subgraph sg(g);
    sg.set_active(LinkId{1u}, false);  // cut 1-2
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 1.0}, {NodeId{0u}, NodeId{1u}, 1.0}};
    const auto primaries = primary_paths(sg, tm);
    ASSERT_EQ(primaries.size(), 2u);
    EXPECT_TRUE(primaries[0].empty());
    EXPECT_EQ(primaries[1], (std::vector<LinkId>{LinkId{0u}}));
}

TEST(SingleFailure, ThresholdHeuristicAgreesWithExhaustiveOnSmallTopologies) {
    // Regression for the recheck_load_threshold doc/behavior mismatch:
    // the default 0.0 is exhaustive (only zero-flow links skipped); a
    // positive threshold is a heuristic. On these small instances the
    // two must agree - accept and reject cases alike - so a future
    // change that silently skips loaded links gets caught here.
    ResilienceOptions exact;        // 0.0 default
    ResilienceOptions heuristic;
    heuristic.recheck_load_threshold = 0.25;

    Graph ring5 = test::ring(5, 10.0);
    Subgraph sr5(ring5);
    const TrafficMatrix light{{NodeId{0u}, NodeId{2u}, 4.0}};
    EXPECT_TRUE(satisfies_single_failure(sr5, light, exact));
    EXPECT_EQ(satisfies_single_failure(sr5, light, exact),
              satisfies_single_failure(sr5, light, heuristic));

    Graph ring4 = test::ring(4, 10.0);
    Subgraph sr4(ring4);
    const TrafficMatrix heavy{{NodeId{0u}, NodeId{1u}, 12.0}};
    EXPECT_FALSE(satisfies_single_failure(sr4, heavy, exact));
    EXPECT_EQ(satisfies_single_failure(sr4, heavy, exact),
              satisfies_single_failure(sr4, heavy, heuristic));

    // Chain with links loaded above the threshold: the skipped-recheck
    // heuristic still examines them, so both settings reject.
    Graph chain3 = test::chain(3, 10.0);
    Subgraph sc3(chain3);
    const TrafficMatrix mid{{NodeId{0u}, NodeId{2u}, 4.0}};
    EXPECT_FALSE(satisfies_single_failure(sc3, mid, exact));
    EXPECT_EQ(satisfies_single_failure(sc3, mid, exact),
              satisfies_single_failure(sc3, mid, heuristic));
}

TEST(SingleFailure, ThresholdHeuristicCanAcceptWhatExhaustiveRejects) {
    // The divergence the header documents: a chain link carrying 10% of
    // its capacity falls under a 0.25 threshold, is never re-checked,
    // and the heuristic accepts a set with no backup path at all. This
    // is WHY 0.0 is the only safe default for final validation; if this
    // test starts failing the heuristic's semantics changed and the
    // ResilienceOptions doc must be revisited.
    Graph chain3 = test::chain(3, 10.0);
    Subgraph sg(chain3);
    const TrafficMatrix light{{NodeId{0u}, NodeId{2u}, 1.0}};
    ResilienceOptions heuristic;
    heuristic.recheck_load_threshold = 0.25;
    EXPECT_FALSE(satisfies_single_failure(sg, light));  // exact default
    EXPECT_TRUE(satisfies_single_failure(sg, light, heuristic));
}

TEST(PerPairFailure, TriangleReroutesOntoBackup) {
    Graph g = test::triangle();
    Subgraph sg(g);
    // Primary 0->2 is 0-1-2 (len 2); backup is the direct link (cap 5).
    EXPECT_TRUE(satisfies_per_pair_failure(sg, {{NodeId{0u}, NodeId{2u}, 4.0}}));
    // Backup capacity is 5: demand 6 fails the per-pair constraint.
    EXPECT_FALSE(satisfies_per_pair_failure(sg, {{NodeId{0u}, NodeId{2u}, 6.0}}));
}

TEST(PerPairFailure, ChainHasNoBackup) {
    Graph g = test::chain(3);
    Subgraph sg(g);
    EXPECT_FALSE(satisfies_per_pair_failure(sg, {{NodeId{0u}, NodeId{2u}, 1.0}}));
}

TEST(PerPairFailure, AllDemandsRerouteSimultaneously) {
    // Ring of 4, capacity 10: demands 0->1 and 2->3 have single-link
    // primaries; each backup is the 3-hop complement, and the two
    // backups *share* two links (1-2 and 3-0), so simultaneous
    // rerouting loads shared links with both demands: feasible at 4.5
    // each (9 < 10 on shared links), infeasible at 6 each (12 > 10).
    Graph g = test::ring(4, 10.0);
    Subgraph sg(g);
    TrafficMatrix light{{NodeId{0u}, NodeId{1u}, 4.5}, {NodeId{2u}, NodeId{3u}, 4.5}};
    EXPECT_TRUE(satisfies_per_pair_failure(sg, light));
    TrafficMatrix heavy{{NodeId{0u}, NodeId{1u}, 6.0}, {NodeId{2u}, NodeId{3u}, 6.0}};
    EXPECT_FALSE(satisfies_per_pair_failure(sg, heavy));
}

TEST(ConstraintNesting, StricterConstraintsImplyWeaker) {
    // Any set passing single-failure also passes plain load.
    Graph g = test::ring(5, 10.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 4.0}, {NodeId{1u}, NodeId{3u}, 3.0}};
    if (satisfies_single_failure(sg, tm)) {
        EXPECT_TRUE(satisfies_load(sg, tm));
    }
    if (satisfies_per_pair_failure(sg, tm)) {
        EXPECT_TRUE(satisfies_load(sg, tm));
    }
}

}  // namespace
}  // namespace poc::net
