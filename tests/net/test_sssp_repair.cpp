// Exhaustive single-edge dynamic-SSSP repair matrix (DESIGN.md §7):
// for every topology in a small-graph zoo (<= 32 nodes), every source,
// every metric, and every single-edge cut / restore / weight change,
// the repaired tree must equal a fresh Dijkstra bit for bit — same
// dist doubles, same parent links, same predecessor nodes, including
// every tie-break. Plus chained-repair composition along random flip
// walks.
#include "net/sssp_repair.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "helpers/graphs.hpp"
#include "net/shortest_path.hpp"
#include "util/rng.hpp"

namespace poc::net {
namespace {

using test::chain;
using test::maxflow_classic;
using test::random_connected;
using test::ring;
using test::triangle;

/// Bit-exact tree equality: EXPECT_EQ on doubles is operator==, which
/// distinguishes every pair of distinct finite values and treats the
/// two inf sentinels equal — exactly the contract repairs promise.
void expect_trees_identical(const ShortestPathTree& got, const ShortestPathTree& want,
                            const std::string& context) {
    ASSERT_EQ(got.dist.size(), want.dist.size()) << context;
    EXPECT_EQ(got.source, want.source) << context;
    for (std::size_t i = 0; i < want.dist.size(); ++i) {
        EXPECT_EQ(got.dist[i], want.dist[i]) << context << " dist of node " << i;
        EXPECT_EQ(got.parent_link[i].value(), want.parent_link[i].value())
            << context << " parent of node " << i;
        EXPECT_EQ(got.pred_node_[i].value(), want.pred_node_[i].value())
            << context << " pred of node " << i;
    }
}

ShortestPathTree cold_tree(const Subgraph& sg, NodeId source, SsspMetric metric) {
    SsspWorkspace ws;
    dijkstra_metric_into(sg, source, metric, ws);
    return ws.to_tree();
}

/// Tie-break stress graph: zero-length links, parallel links (some
/// zero-length, some not), and equal-length alternatives, so repaired
/// parent derivation must reproduce Dijkstra's (dist, node id, link
/// id) tie-break exactly rather than just "a" shortest tree.
Graph tie_break_zoo() {
    Graph g;
    g.add_nodes(6);
    g.add_link(NodeId{0u}, NodeId{1u}, 10.0, 0.0);
    g.add_link(NodeId{1u}, NodeId{2u}, 10.0, 0.0);
    g.add_link(NodeId{0u}, NodeId{2u}, 10.0, 0.0);
    g.add_link(NodeId{2u}, NodeId{3u}, 10.0, 1.0);
    g.add_link(NodeId{3u}, NodeId{4u}, 10.0, 0.0);
    g.add_link(NodeId{3u}, NodeId{4u}, 10.0, 0.0);  // zero-length parallel pair
    g.add_link(NodeId{4u}, NodeId{5u}, 10.0, 2.0);
    g.add_link(NodeId{0u}, NodeId{1u}, 10.0, 1.0);  // parallel with distinct length
    g.add_link(NodeId{1u}, NodeId{3u}, 10.0, 1.0);  // equal-length alternative to 2-3
    return g;
}

/// Two disconnected chains; restores across the gap flip reachability.
Graph split_graph() {
    Graph g;
    g.add_nodes(8);
    for (std::size_t i = 0; i + 1 < 4; ++i) {
        g.add_link(NodeId{i}, NodeId{i + 1}, 10.0, 1.0 + static_cast<double>(i));
    }
    for (std::size_t i = 4; i + 1 < 8; ++i) {
        g.add_link(NodeId{i}, NodeId{i + 1}, 10.0, 2.0);
    }
    g.add_link(NodeId{1u}, NodeId{6u}, 10.0, 5.0);  // the only bridge
    return g;
}

std::vector<Graph> graph_zoo() {
    std::vector<Graph> zoo;
    zoo.push_back(triangle());
    zoo.push_back(chain(6));
    zoo.push_back(ring(8));
    zoo.push_back(maxflow_classic());
    zoo.push_back(tie_break_zoo());
    zoo.push_back(split_graph());
    util::Rng rng(20260809);
    zoo.push_back(random_connected(rng, 16, 12));
    zoo.push_back(random_connected(rng, 32, 20));
    return zoo;
}

constexpr SsspMetric kMetrics[] = {SsspMetric::kLength, SsspMetric::kUnit};

/// A deterministic family of base masks per graph: the full mask plus
/// a few random partial masks (so repairs start from degraded
/// subgraphs, not only from the pristine one).
std::vector<Subgraph> base_masks(const Graph& g, util::Rng& rng) {
    std::vector<Subgraph> masks;
    masks.emplace_back(g);
    for (int m = 0; m < 2; ++m) {
        Subgraph sg(g);
        for (std::size_t i = 0; i < g.link_count(); ++i) {
            if (rng.uniform(0.0, 1.0) < 0.25) sg.set_active(LinkId{i}, false);
        }
        masks.push_back(sg);
    }
    return masks;
}

/// Rebuild `g` with one link's length replaced.
Graph with_length(const Graph& g, LinkId target, double new_len) {
    Graph out;
    out.add_nodes(g.node_count());
    for (std::size_t i = 0; i < g.link_count(); ++i) {
        const Link& l = g.link(LinkId{i});
        out.add_link(l.a, l.b, l.capacity_gbps, i == target.index() ? new_len : l.length_km);
    }
    return out;
}

TEST(SsspRepairMatrix, EverySingleEdgeCutMatchesColdDijkstra) {
    util::Rng rng(1);
    for (const Graph& g : graph_zoo()) {
        for (Subgraph& base : base_masks(g, rng)) {
            for (const SsspMetric metric : kMetrics) {
                for (std::size_t s = 0; s < g.node_count(); ++s) {
                    const NodeId src{s};
                    const ShortestPathTree before = cold_tree(base, src, metric);
                    for (std::size_t li = 0; li < g.link_count(); ++li) {
                        const LinkId lid{li};
                        if (!base.is_active(lid)) continue;
                        Subgraph cut = base;
                        cut.set_active(lid, false);
                        ShortestPathTree repaired = before;
                        SsspRepairWorkspace ws;
                        repair_link_cut(repaired, cut, lid, metric, ws);
                        expect_trees_identical(
                            repaired, cold_tree(cut, src, metric),
                            "cut link " + std::to_string(li) + " source " + std::to_string(s));
                    }
                }
            }
        }
    }
}

TEST(SsspRepairMatrix, EverySingleEdgeRestoreMatchesColdDijkstra) {
    util::Rng rng(2);
    for (const Graph& g : graph_zoo()) {
        for (Subgraph& base : base_masks(g, rng)) {
            for (const SsspMetric metric : kMetrics) {
                for (std::size_t s = 0; s < g.node_count(); ++s) {
                    const NodeId src{s};
                    for (std::size_t li = 0; li < g.link_count(); ++li) {
                        const LinkId lid{li};
                        // Restore every link, including ones active in
                        // the base: deactivate first, tree that mask,
                        // then repair back up to the base mask.
                        Subgraph without = base;
                        without.set_active(lid, false);
                        Subgraph with = without;
                        with.set_active(lid, true);
                        ShortestPathTree repaired = cold_tree(without, src, metric);
                        SsspRepairWorkspace ws;
                        repair_link_restore(repaired, with, lid, metric, ws);
                        expect_trees_identical(repaired, cold_tree(with, src, metric),
                                               "restore link " + std::to_string(li) +
                                                   " source " + std::to_string(s));
                    }
                }
            }
        }
    }
}

TEST(SsspRepairMatrix, EverySingleEdgeWeightChangeMatchesColdDijkstra) {
    const double kFactors[] = {0.0, 0.5, 1.0, 2.0};
    util::Rng rng(3);
    for (const Graph& g : graph_zoo()) {
        for (Subgraph& base : base_masks(g, rng)) {
            for (const SsspMetric metric : kMetrics) {
                for (std::size_t li = 0; li < g.link_count(); ++li) {
                    const LinkId lid{li};
                    if (!base.is_active(lid)) continue;
                    const double old_len = g.link(lid).length_km;
                    for (const double f : kFactors) {
                        const Graph g2 = with_length(g, lid, old_len * f + (f == 2.0 ? 0.7 : 0.0));
                        Subgraph sg2(g2, base.active_links());
                        for (std::size_t s = 0; s < g.node_count(); ++s) {
                            const NodeId src{s};
                            ShortestPathTree repaired = cold_tree(base, src, metric);
                            SsspRepairWorkspace ws;
                            repair_weight_change(repaired, sg2, lid, old_len, metric, ws);
                            expect_trees_identical(repaired, cold_tree(sg2, src, metric),
                                                   "reweight link " + std::to_string(li) +
                                                       " x" + std::to_string(f) + " source " +
                                                       std::to_string(s));
                        }
                    }
                }
            }
        }
    }
}

TEST(SsspRepair, ChainedRepairsComposeAlongRandomFlipWalks) {
    util::Rng rng(77);
    for (const Graph& g : graph_zoo()) {
        for (const SsspMetric metric : kMetrics) {
            Subgraph sg(g);
            const NodeId src{rng.uniform_int(std::uint64_t{g.node_count()})};
            ShortestPathTree tree = cold_tree(sg, src, metric);
            SsspRepairWorkspace ws;
            for (int step = 0; step < 60; ++step) {
                const LinkId lid{rng.uniform_int(std::uint64_t{g.link_count()})};
                const bool now_active = !sg.is_active(lid);
                sg.set_active(lid, now_active);
                if (now_active) {
                    repair_link_restore(tree, sg, lid, metric, ws);
                } else {
                    repair_link_cut(tree, sg, lid, metric, ws);
                }
                expect_trees_identical(tree, cold_tree(sg, src, metric),
                                       "walk step " + std::to_string(step));
            }
            EXPECT_GT(ws.stats().cuts + ws.stats().restores, 0u);
        }
    }
}

TEST(SsspRepair, NoopCasesAreDetectedWithoutTouchingTheTree) {
    const Graph g = tie_break_zoo();
    Subgraph sg(g);
    const NodeId src{0u};
    SsspRepairWorkspace ws;

    // Cutting a non-tree edge: the duplicate zero-length parallel link
    // 3-4 (id 5) loses the (dist, node, link-id) tie to id 4, so it is
    // never a tree edge and cutting it is a no-op.
    ShortestPathTree tree = cold_tree(sg, src, SsspMetric::kLength);
    ASSERT_NE(tree.parent_link[4].value(), 5u);
    Subgraph cut = sg;
    cut.set_active(LinkId{5u}, false);
    ShortestPathTree repaired = tree;
    repair_link_cut(repaired, cut, LinkId{5u}, SsspMetric::kLength, ws);
    EXPECT_EQ(ws.stats().noops, 1u);
    expect_trees_identical(repaired, cold_tree(cut, src, SsspMetric::kLength), "noop cut");

    // Unit metric ignores lengths entirely, so a length change under
    // kUnit is a no-op before any tree inspection.
    const Graph g2 = with_length(g, LinkId{3u}, 42.0);
    Subgraph sg2(g2);
    ShortestPathTree unit_tree = cold_tree(sg, src, SsspMetric::kUnit);
    ShortestPathTree unit_repaired = unit_tree;
    repair_weight_change(unit_repaired, sg2, LinkId{3u}, g.link(LinkId{3u}).length_km,
                         SsspMetric::kUnit, ws);
    EXPECT_EQ(ws.stats().noops, 2u);
    expect_trees_identical(unit_repaired, cold_tree(sg2, src, SsspMetric::kUnit), "unit noop");
}

}  // namespace
}  // namespace poc::net
