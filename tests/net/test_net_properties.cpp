// Cross-algorithm consistency properties over randomized graphs: the
// independent implementations in poc::net must agree with each other
// wherever their guarantees overlap.
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers/graphs.hpp"
#include "net/connectivity.hpp"
#include "net/failure.hpp"
#include "net/ksp.hpp"
#include "net/maxflow.hpp"
#include "net/mcf.hpp"
#include "net/mincostflow.hpp"

namespace poc::net {
namespace {

class NetProperties : public ::testing::TestWithParam<std::uint64_t> {
protected:
    util::Rng rng_{GetParam()};
};

TEST_P(NetProperties, GreedyRoutingSuccessImpliesHighConcurrentFlow) {
    // Greedy success is a feasibility certificate, so the FPTAS (a
    // (1-eps)^2 lower bound on the optimum) must come out near >= 1.
    Graph g = test::random_connected(rng_, 10, 12);
    Subgraph sg(g);
    TrafficMatrix tm;
    for (int d = 0; d < 4; ++d) {
        const auto s = static_cast<std::size_t>(rng_.uniform_int(std::uint64_t{10}));
        auto t = static_cast<std::size_t>(rng_.uniform_int(std::uint64_t{10}));
        if (s == t) t = (t + 1) % 10;
        tm.push_back({NodeId{s}, NodeId{t}, rng_.uniform(0.5, 2.5)});
    }
    if (!greedy_path_routing(sg, tm)) return;  // only testing the implication
    const auto cf = max_concurrent_flow(sg, tm, 0.1);
    EXPECT_GE(cf.lambda, 0.75) << "FPTAS strongly contradicts greedy feasibility";
}

TEST_P(NetProperties, ConcurrentFlowNeverExceedsSingleCommodityMaxFlow) {
    // For a single commodity, lambda * demand <= max flow.
    Graph g = test::random_connected(rng_, 9, 10);
    Subgraph sg(g);
    const NodeId s{0u};
    const NodeId t{8u};
    const double demand = rng_.uniform(1.0, 10.0);
    const double mf = max_flow(sg, s, t).value;
    const auto cf = max_concurrent_flow(sg, {{s, t, demand}}, 0.05);
    EXPECT_LE(cf.lambda * demand, mf * (1.0 + 1e-6));
}

TEST_P(NetProperties, BridgesDisconnectTheirEndpoints) {
    Graph g = test::random_connected(rng_, 12, 6);
    Subgraph sg(g);
    for (const LinkId b : find_bridges(sg)) {
        Subgraph cut = sg;
        cut.set_active(b, false);
        const Components comp = connected_components(cut);
        EXPECT_FALSE(comp.same(g.link(b).a, g.link(b).b));
        cut.set_active(b, true);
    }
}

TEST_P(NetProperties, NonBridgesKeepEndpointsConnected) {
    Graph g = test::random_connected(rng_, 12, 8);
    Subgraph sg(g);
    const auto bridges = find_bridges(sg);
    for (const LinkId l : g.all_links()) {
        if (std::find(bridges.begin(), bridges.end(), l) != bridges.end()) continue;
        Subgraph cut = sg;
        cut.set_active(l, false);
        EXPECT_TRUE(connected_components(cut).same(g.link(l).a, g.link(l).b))
            << "non-bridge " << l.value() << " disconnected its endpoints";
    }
}

TEST_P(NetProperties, TwoDisjointPathsIffNoBridgeSeparates) {
    // Menger + Tarjan agreement: link-disjoint path count >= 2 exactly
    // when the endpoints stay connected after removing every bridge.
    Graph g = test::random_connected(rng_, 10, 7);
    Subgraph sg(g);
    Subgraph no_bridges = sg;
    for (const LinkId b : find_bridges(sg)) no_bridges.set_active(b, false);
    const Components comp = connected_components(no_bridges);
    for (std::size_t v = 1; v < g.node_count(); ++v) {
        const bool two_paths = link_disjoint_path_count(sg, NodeId{0u}, NodeId{v}) >= 2;
        EXPECT_EQ(two_paths, comp.same(NodeId{0u}, NodeId{v})) << "node " << v;
    }
}

TEST_P(NetProperties, YenPathsWeightsMatchRecomputation) {
    Graph g = test::random_connected(rng_, 10, 10);
    Subgraph sg(g);
    const auto w = weight_by_length(g);
    const auto paths = yen_k_shortest(sg, NodeId{0u}, NodeId{9u}, w, 5);
    for (const WeightedPath& p : paths) {
        double total = 0.0;
        for (const LinkId l : p.links) total += w(l);
        EXPECT_NEAR(total, p.weight, 1e-9);
    }
}

TEST_P(NetProperties, SingleFailureImpliesPerLinkFeasibility) {
    // Directly verify the exhaustive oracle's meaning: if the set
    // satisfies single-failure, deleting any one link leaves the matrix
    // routable.
    Graph g = test::random_connected(rng_, 8, 8);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{7u}, rng_.uniform(0.5, 2.0)}};
    if (!satisfies_single_failure(sg, tm)) return;
    for (const LinkId l : g.all_links()) {
        Subgraph cut = sg;
        cut.set_active(l, false);
        EXPECT_TRUE(is_routable(cut, tm, 0.1)) << "link " << l.value();
    }
}

TEST_P(NetProperties, MinCostFlowCostAtLeastShortestPathRate) {
    // Any feasible flow of amount A costs at least A * dist(s,t).
    Graph g = test::random_connected(rng_, 10, 10);
    Subgraph sg(g);
    const auto w = weight_by_length(g);
    const auto sp = shortest_path(sg, NodeId{0u}, NodeId{9u}, w);
    ASSERT_TRUE(sp.has_value());
    const double amount = rng_.uniform(0.5, 3.0);
    const auto mcf = min_cost_flow(sg, NodeId{0u}, NodeId{9u}, amount, w);
    if (!mcf) return;
    EXPECT_GE(mcf->cost, amount * sp->weight - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace poc::net
