#include "net/connectivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers/graphs.hpp"

namespace poc::net {
namespace {

TEST(Components, SingleComponentOnRing) {
    Graph g = test::ring(5);
    Subgraph sg(g);
    const auto comp = connected_components(sg);
    EXPECT_EQ(comp.count, 1u);
    EXPECT_TRUE(comp.same(NodeId{0u}, NodeId{4u}));
}

TEST(Components, SplitsWhenLinkDeactivated) {
    Graph g = test::chain(4);
    Subgraph sg(g);
    sg.set_active(LinkId{1u}, false);  // cut 1-2
    const auto comp = connected_components(sg);
    EXPECT_EQ(comp.count, 2u);
    EXPECT_TRUE(comp.same(NodeId{0u}, NodeId{1u}));
    EXPECT_FALSE(comp.same(NodeId{1u}, NodeId{2u}));
}

TEST(Components, IsolatedNodesAreOwnComponents) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    Subgraph sg(g);
    EXPECT_EQ(connected_components(sg).count, 2u);
}

TEST(AllPairsConnected, TracksDemandEndpoints) {
    Graph g = test::chain(4);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{3u}, 1.0}};
    EXPECT_TRUE(all_pairs_connected(sg, tm));
    sg.set_active(LinkId{2u}, false);
    EXPECT_FALSE(all_pairs_connected(sg, tm));
}

TEST(AllPairsConnected, IgnoresZeroDemands) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    Subgraph sg(g);
    TrafficMatrix tm{{NodeId{0u}, NodeId{2u}, 0.0}};
    EXPECT_TRUE(all_pairs_connected(sg, tm));
}

TEST(SpanningConnected, IgnoresIsolatedNodes) {
    Graph g;
    g.add_nodes(4);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    g.add_link(NodeId{1u}, NodeId{2u}, 1.0, 1.0);
    // Node 3 has no links at all: not a partition.
    Subgraph sg(g);
    EXPECT_TRUE(spanning_connected(sg));
}

TEST(SpanningConnected, DetectsPartition) {
    Graph g;
    g.add_nodes(4);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    g.add_link(NodeId{2u}, NodeId{3u}, 1.0, 1.0);
    Subgraph sg(g);
    EXPECT_FALSE(spanning_connected(sg));
}

TEST(Bridges, ChainIsAllBridges) {
    Graph g = test::chain(4);
    Subgraph sg(g);
    EXPECT_EQ(find_bridges(sg).size(), 3u);
}

TEST(Bridges, RingHasNone) {
    Graph g = test::ring(5);
    Subgraph sg(g);
    EXPECT_TRUE(find_bridges(sg).empty());
}

TEST(Bridges, ParallelLinksAreNotBridges) {
    Graph g;
    g.add_nodes(3);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);  // parallel
    g.add_link(NodeId{1u}, NodeId{2u}, 1.0, 1.0);  // bridge
    Subgraph sg(g);
    const auto bridges = find_bridges(sg);
    ASSERT_EQ(bridges.size(), 1u);
    EXPECT_EQ(bridges[0], LinkId{2u});
}

TEST(Bridges, BarbellMiddleLink) {
    // Two triangles joined by one link: only the joiner is a bridge.
    Graph g;
    g.add_nodes(6);
    g.add_link(NodeId{0u}, NodeId{1u}, 1.0, 1.0);
    g.add_link(NodeId{1u}, NodeId{2u}, 1.0, 1.0);
    g.add_link(NodeId{2u}, NodeId{0u}, 1.0, 1.0);
    g.add_link(NodeId{3u}, NodeId{4u}, 1.0, 1.0);
    g.add_link(NodeId{4u}, NodeId{5u}, 1.0, 1.0);
    g.add_link(NodeId{5u}, NodeId{3u}, 1.0, 1.0);
    const LinkId joiner = g.add_link(NodeId{2u}, NodeId{3u}, 1.0, 1.0);
    Subgraph sg(g);
    const auto bridges = find_bridges(sg);
    ASSERT_EQ(bridges.size(), 1u);
    EXPECT_EQ(bridges[0], joiner);
}

TEST(Bridges, RespectsInactiveLinks) {
    Graph g = test::ring(4);
    Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);  // ring becomes a chain
    EXPECT_EQ(find_bridges(sg).size(), 3u);
}

TEST(Bridges, DeepChainDoesNotOverflow) {
    Graph g = test::chain(20'000);
    Subgraph sg(g);
    EXPECT_EQ(find_bridges(sg).size(), 19'999u);  // iterative, no recursion
}

}  // namespace
}  // namespace poc::net
