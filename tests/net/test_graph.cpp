#include "net/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "helpers/graphs.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace poc::net {
namespace {

TEST(Graph, AddNodesAndLabels) {
    Graph g;
    const NodeId a = g.add_node("alpha");
    const NodeId b = g.add_node();
    EXPECT_EQ(g.node_count(), 2u);
    EXPECT_EQ(g.node_label(a), "alpha");
    EXPECT_EQ(g.node_label(b), "");
}

TEST(Graph, AddNodesBulkReturnsFirstId) {
    Graph g;
    g.add_node("first");
    const NodeId start = g.add_nodes(5);
    EXPECT_EQ(start.index(), 1u);
    EXPECT_EQ(g.node_count(), 6u);
}

TEST(Graph, AddLinkStoresAttributes) {
    Graph g = test::triangle();
    const Link& l = g.link(LinkId{2u});
    EXPECT_EQ(l.a, NodeId{0u});
    EXPECT_EQ(l.b, NodeId{2u});
    EXPECT_DOUBLE_EQ(l.capacity_gbps, 5.0);
    EXPECT_DOUBLE_EQ(l.length_km, 3.0);
}

TEST(Graph, LinkOtherEndpoint) {
    Graph g = test::triangle();
    const Link& l = g.link(LinkId{0u});
    EXPECT_EQ(l.other(NodeId{0u}), NodeId{1u});
    EXPECT_EQ(l.other(NodeId{1u}), NodeId{0u});
    EXPECT_THROW(l.other(NodeId{2u}), util::ContractViolation);
}

TEST(Graph, RejectsSelfLoopAndBadCapacity) {
    Graph g;
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    EXPECT_THROW(g.add_link(a, a, 1.0, 1.0), util::ContractViolation);
    EXPECT_THROW(g.add_link(a, b, 0.0, 1.0), util::ContractViolation);
    EXPECT_THROW(g.add_link(a, b, 1.0, -1.0), util::ContractViolation);
}

TEST(Graph, RejectsUnknownEndpoints) {
    Graph g;
    const NodeId a = g.add_node();
    EXPECT_THROW(g.add_link(a, NodeId{5u}, 1.0, 1.0), util::ContractViolation);
}

TEST(Graph, ParallelLinksAllowed) {
    Graph g;
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    g.add_link(a, b, 1.0, 1.0);
    g.add_link(a, b, 2.0, 2.0);
    EXPECT_EQ(g.link_count(), 2u);
    EXPECT_EQ(g.incident(a).size(), 2u);
}

TEST(Graph, IncidentListsAllTouchingLinks) {
    Graph g = test::triangle();
    const auto inc1 = g.incident(NodeId{1u});
    EXPECT_EQ(inc1.size(), 2u);
    // Links 0 (0-1) and 1 (1-2).
    std::vector<LinkId> ids(inc1.begin(), inc1.end());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids[0], LinkId{0u});
    EXPECT_EQ(ids[1], LinkId{1u});
}

TEST(Graph, IncidentValidAfterIncrementalInsertion) {
    Graph g;
    const NodeId a = g.add_node();
    const NodeId b = g.add_node();
    g.add_link(a, b, 1.0, 1.0);
    EXPECT_EQ(g.incident(a).size(), 1u);  // builds adjacency
    const NodeId c = g.add_node();
    g.add_link(b, c, 1.0, 1.0);  // invalidates and rebuilds lazily
    EXPECT_EQ(g.incident(b).size(), 2u);
}

TEST(Graph, AllLinksInInsertionOrder) {
    Graph g = test::triangle();
    const auto links = g.all_links();
    ASSERT_EQ(links.size(), 3u);
    EXPECT_EQ(links[0], LinkId{0u});
    EXPECT_EQ(links[2], LinkId{2u});
}

TEST(Subgraph, FullViewActivatesEverything) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_EQ(sg.active_count(), 3u);
    EXPECT_TRUE(sg.is_active(LinkId{0u}));
}

TEST(Subgraph, RestrictedViewActivatesSubset) {
    Graph g = test::triangle();
    Subgraph sg(g, {LinkId{1u}});
    EXPECT_EQ(sg.active_count(), 1u);
    EXPECT_FALSE(sg.is_active(LinkId{0u}));
    EXPECT_TRUE(sg.is_active(LinkId{1u}));
}

TEST(Subgraph, ToggleMaintainsCount) {
    Graph g = test::triangle();
    Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);
    EXPECT_EQ(sg.active_count(), 2u);
    sg.set_active(LinkId{0u}, false);  // idempotent
    EXPECT_EQ(sg.active_count(), 2u);
    sg.set_active(LinkId{0u}, true);
    EXPECT_EQ(sg.active_count(), 3u);
}

TEST(Subgraph, ActiveLinksSortedById) {
    Graph g = test::triangle();
    Subgraph sg(g, {LinkId{2u}, LinkId{0u}});
    const auto links = sg.active_links();
    ASSERT_EQ(links.size(), 2u);
    EXPECT_EQ(links[0], LinkId{0u});
    EXPECT_EQ(links[1], LinkId{2u});
}

TEST(SubgraphFingerprint, OrderIndependent) {
    util::Rng rng(101);
    Graph g = test::random_connected(rng, 20, 15);
    const auto links = g.all_links();

    // Build the same active set three ways: constructor list, forward
    // toggling, and shuffled toggling. All must agree.
    std::vector<LinkId> keep;
    for (const LinkId l : links) {
        if (rng.uniform(0.0, 1.0) < 0.6) keep.push_back(l);
    }
    const Subgraph direct(g, keep);

    Subgraph forward(g);
    for (const LinkId l : links) {
        forward.set_active(l, false);
    }
    for (const LinkId l : keep) forward.set_active(l, true);

    std::vector<LinkId> shuffled_off = links;
    rng.shuffle(shuffled_off);
    Subgraph shuffled(g);
    for (const LinkId l : shuffled_off) shuffled.set_active(l, false);
    std::vector<LinkId> keep_shuffled = keep;
    rng.shuffle(keep_shuffled);
    for (const LinkId l : keep_shuffled) shuffled.set_active(l, true);

    EXPECT_EQ(direct.fingerprint(), forward.fingerprint());
    EXPECT_EQ(direct.fingerprint(), shuffled.fingerprint());
}

TEST(SubgraphFingerprint, SingleToggleChangesAndRestores) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const std::uint64_t full = sg.fingerprint();
    for (const LinkId l : g.all_links()) {
        sg.set_active(l, false);
        EXPECT_NE(sg.fingerprint(), full) << "toggling link " << l.index();
        EXPECT_EQ(sg.fingerprint(), full ^ Subgraph::link_fingerprint(l.index()));
        sg.set_active(l, false);  // idempotent: no double-XOR
        EXPECT_EQ(sg.fingerprint(), full ^ Subgraph::link_fingerprint(l.index()));
        sg.set_active(l, true);
        EXPECT_EQ(sg.fingerprint(), full);
    }
}

TEST(SubgraphFingerprint, EmptyViewIsZeroAndFullIsXorOfLinks) {
    Graph g = test::triangle();
    const Subgraph empty(g, {});
    EXPECT_EQ(empty.fingerprint(), 0u);
    std::uint64_t expected = 0;
    for (const LinkId l : g.all_links()) {
        expected ^= Subgraph::link_fingerprint(l.index());
    }
    EXPECT_EQ(Subgraph(g).fingerprint(), expected);
}

TEST(SubgraphFingerprint, RandomMaskCollisionSanity) {
    // 64-bit XOR fingerprints over distinct random masks: any collision
    // among a few thousand draws would signal a broken per-link mix.
    util::Rng rng(103);
    Graph g = test::random_connected(rng, 40, 40);
    const auto links = g.all_links();

    std::vector<std::uint64_t> seen;
    std::vector<std::vector<char>> masks;
    for (int i = 0; i < 2000; ++i) {
        std::vector<char> mask(links.size());
        std::vector<LinkId> active;
        for (std::size_t j = 0; j < links.size(); ++j) {
            mask[j] = rng.bernoulli(0.5) ? 1 : 0;
            if (mask[j] != 0) active.push_back(links[j]);
        }
        const Subgraph sg(g, active);
        for (std::size_t k = 0; k < seen.size(); ++k) {
            if (seen[k] == sg.fingerprint()) {
                EXPECT_EQ(masks[k], mask) << "distinct masks collided";
            }
        }
        seen.push_back(sg.fingerprint());
        masks.push_back(std::move(mask));
    }
}

TEST(TrafficMatrix, TotalDemandSums) {
    TrafficMatrix tm{{NodeId{0u}, NodeId{1u}, 2.5}, {NodeId{1u}, NodeId{0u}, 1.5}};
    EXPECT_DOUBLE_EQ(total_demand(tm), 4.0);
    EXPECT_DOUBLE_EQ(total_demand({}), 0.0);
}

TEST(Graph, ReservePreservesContentsAndSupportsGrowth) {
    Graph g;
    g.reserve(100, 300);
    g.add_nodes(100);
    util::Rng rng(17);
    for (std::size_t e = 0; e < 300; ++e) {
        const auto a = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{100}));
        auto b = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{100}));
        if (a == b) b = (b + 1) % 100;
        g.add_link(NodeId{a}, NodeId{b}, 10.0, 1.0);
    }
    EXPECT_EQ(g.node_count(), 100u);
    EXPECT_EQ(g.link_count(), 300u);
    // Growing past the reservation stays valid.
    const NodeId extra = g.add_node("extra");
    g.add_link(NodeId{0u}, extra, 5.0, 2.0);
    EXPECT_EQ(g.link_count(), 301u);
    EXPECT_EQ(g.incident(extra).size(), 1u);
}

TEST(Graph, LinkSoaMirrorsLinkRecordsAfterIncrementalInsertion) {
    util::Rng rng(19);
    Graph g = test::random_connected(rng, 30, 20);
    // Force a CSR/SoA build, then insert more links (invalidates it),
    // then read again: the rebuilt arrays must mirror the link table.
    (void)g.link_soa();
    g.add_link(NodeId{3u}, NodeId{7u}, 42.0, 9.5);
    g.add_link(NodeId{1u}, NodeId{2u}, 17.0, 0.25);
    const LinkSoa soa = g.link_soa();
    ASSERT_EQ(soa.a.size(), g.link_count());
    ASSERT_EQ(soa.b.size(), g.link_count());
    ASSERT_EQ(soa.capacity_gbps.size(), g.link_count());
    ASSERT_EQ(soa.length_km.size(), g.link_count());
    for (const LinkId l : g.all_links()) {
        const Link& link = g.link(l);
        EXPECT_EQ(soa.a[l.index()], link.a.value());
        EXPECT_EQ(soa.b[l.index()], link.b.value());
        EXPECT_EQ(soa.capacity_gbps[l.index()], link.capacity_gbps);
        EXPECT_EQ(soa.length_km[l.index()], link.length_km);
        // other() agrees with the AoS helper from both endpoints.
        EXPECT_EQ(soa.other(l.index(), link.a.value()), link.b.value());
        EXPECT_EQ(soa.other(l.index(), link.b.value()), link.a.value());
    }
}

}  // namespace
}  // namespace poc::net
