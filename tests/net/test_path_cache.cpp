// PathCache: hit/miss keying on (fingerprint, source, metric),
// epoch-based eviction, and identity of cached trees with fresh
// Dijkstra runs.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "helpers/graphs.hpp"
#include "net/path_cache.hpp"
#include "net/shortest_path.hpp"
#include "util/rng.hpp"

using namespace poc;
using net::LinkId;
using net::NodeId;

namespace {

void expect_trees_identical(const net::ShortestPathTree& a, const net::ShortestPathTree& b) {
    ASSERT_EQ(a.dist.size(), b.dist.size());
    EXPECT_EQ(a.source, b.source);
    for (std::size_t i = 0; i < a.dist.size(); ++i) {
        EXPECT_EQ(a.dist[i], b.dist[i]) << "node " << i;
        EXPECT_EQ(a.parent_link[i], b.parent_link[i]) << "node " << i;
    }
}

TEST(PathCache, CachedTreeMatchesFreshDijkstra) {
    util::Rng rng(41);
    const net::Graph g = test::random_connected(rng, 20, 12);
    net::Subgraph sg(g);
    sg.set_active(LinkId{1u}, false);

    net::PathCache cache;
    const auto t1 = cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    const auto fresh = net::dijkstra(sg, NodeId{0u}, net::weight_by_length(g));
    expect_trees_identical(*t1, fresh);

    // Second lookup on the same key is a hit returning the same object.
    const auto t2 = cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(t1.get(), t2.get());

    const auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.entries, 1u);
}

TEST(PathCache, KeysOnSourceMaskAndMetric) {
    util::Rng rng(43);
    const net::Graph g = test::random_connected(rng, 15, 8);
    net::Subgraph sg(g);

    net::PathCache cache;
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    (void)cache.tree(sg, NodeId{1u}, net::SsspMetric::kLength);  // new source
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kUnit);    // new metric
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().entries, 3u);

    // Toggling a link changes the fingerprint: miss. Toggling it back
    // restores the original key: hit.
    sg.set_active(LinkId{0u}, false);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().misses, 4u);
    sg.set_active(LinkId{0u}, true);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().hits, 1u);

    // A Subgraph built independently with the same active set hits the
    // same entry (fingerprint is order-independent).
    net::Subgraph other(g);
    (void)cache.tree(other, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(PathCache, AdvanceEpochEvictsUnusedEntries) {
    util::Rng rng(47);
    const net::Graph g = test::random_connected(rng, 10, 5);
    const net::Subgraph sg(g);

    net::PathCache cache(/*max_age=*/1);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    (void)cache.tree(sg, NodeId{1u}, net::SsspMetric::kLength);
    ASSERT_EQ(cache.stats().entries, 2u);

    cache.advance_epoch();
    // Refresh only source 0 inside the new epoch.
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().hits, 1u);

    cache.advance_epoch();
    // Source 1 went unused for a full epoch: evicted. Source 0 survives.
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().hits, 2u);
    (void)cache.tree(sg, NodeId{1u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PathCache, LargerMaxAgeKeepsEntriesLonger) {
    util::Rng rng(53);
    const net::Graph g = test::random_connected(rng, 8, 4);
    const net::Subgraph sg(g);

    net::PathCache cache(/*max_age=*/3);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    cache.advance_epoch();
    cache.advance_epoch();
    cache.advance_epoch();
    EXPECT_EQ(cache.stats().entries, 1u);  // idle for 2 full epochs < max_age
    cache.advance_epoch();                 // idle for 3 full epochs == max_age
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PathCache, ClearDropsEverything) {
    util::Rng rng(59);
    const net::Graph g = test::random_connected(rng, 8, 4);
    const net::Subgraph sg(g);

    net::PathCache cache;
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    (void)cache.tree(sg, NodeId{2u}, net::SsspMetric::kUnit);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PathCache, RepairedLookupIsBitIdenticalAndCountsAsHitNotMiss) {
    util::Rng rng(67);
    const net::Graph g = test::random_connected(rng, 24, 16);
    net::Subgraph sg(g);

    net::PathCache cache(/*max_age=*/2, /*repair_budget=*/3);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);  // miss; installs the base
    ASSERT_EQ(cache.stats().misses, 1u);

    // Within budget: 3 flips away from the base mask.
    sg.set_active(LinkId{0u}, false);
    sg.set_active(LinkId{3u}, false);
    sg.set_active(LinkId{5u}, false);
    const auto repaired = cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    const auto fresh = net::dijkstra(sg, NodeId{0u}, net::weight_by_length(g));
    expect_trees_identical(*repaired, fresh);

    const auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);     // the repair IS the hit
    EXPECT_EQ(st.misses, 1u);   // no new miss
    EXPECT_EQ(st.repairs, 1u);
    EXPECT_EQ(st.entries, 2u);  // the repaired tree is a real entry

    // The base advanced to the repaired mask, so one more flip is again
    // within budget — and restores chain off cuts just as well.
    sg.set_active(LinkId{3u}, true);
    const auto repaired2 = cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    expect_trees_identical(*repaired2,
                           net::dijkstra(sg, NodeId{0u}, net::weight_by_length(g)));
    EXPECT_EQ(cache.stats().repairs, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PathCache, RepairBeyondBudgetFallsBackToColdMiss) {
    util::Rng rng(71);
    const net::Graph g = test::random_connected(rng, 20, 12);
    net::Subgraph sg(g);

    net::PathCache cache(/*max_age=*/1, /*repair_budget=*/2);
    (void)cache.tree(sg, NodeId{2u}, net::SsspMetric::kUnit);
    sg.set_active(LinkId{1u}, false);
    sg.set_active(LinkId{4u}, false);
    sg.set_active(LinkId{6u}, false);  // 3 flips > budget 2
    const auto t = cache.tree(sg, NodeId{2u}, net::SsspMetric::kUnit);
    expect_trees_identical(*t, net::dijkstra(sg, NodeId{2u}, net::weight_unit()));
    EXPECT_EQ(cache.stats().repairs, 0u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PathCache, RepairSourceDoesNotRefreshEntryIdleAge) {
    util::Rng rng(73);
    const net::Graph g = test::random_connected(rng, 12, 8);
    net::Subgraph sg(g);

    net::PathCache cache(/*max_age=*/1, /*repair_budget=*/2);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);  // entry A, epoch 0
    cache.advance_epoch();

    // Epoch 1: serve a near-miss mask by repairing off A. That must NOT
    // count as a use of A's entry — only direct lookups keep keys alive.
    sg.set_active(LinkId{2u}, false);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);  // entry B via repair
    ASSERT_EQ(cache.stats().repairs, 1u);
    ASSERT_EQ(cache.stats().entries, 2u);

    cache.advance_epoch();
    // A went unused for a full epoch (its service as repair base does
    // not refresh it); B was used in epoch 1 and survives.
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    (void)cache.tree(sg, NodeId{0u}, net::SsspMetric::kLength);
    EXPECT_EQ(cache.stats().hits, 2u);  // B is still a direct hit
}

TEST(PathCache, ConcurrentLookupsAreConsistent) {
    util::Rng rng(61);
    const net::Graph g = test::random_connected(rng, 30, 20);
    const net::Subgraph sg(g);

    net::PathCache cache;
    constexpr int kThreads = 4;
    std::vector<std::shared_ptr<const net::ShortestPathTree>> results(
        static_cast<std::size_t>(kThreads) * g.node_count());
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t s = 0; s < g.node_count(); ++s) {
                results[static_cast<std::size_t>(t) * g.node_count() + s] =
                    cache.tree(sg, NodeId{s}, net::SsspMetric::kLength);
            }
        });
    }
    for (auto& th : threads) th.join();

    const net::LinkWeight w = net::weight_by_length(g);
    for (std::size_t s = 0; s < g.node_count(); ++s) {
        const auto fresh = net::dijkstra(sg, NodeId{s}, w);
        for (int t = 0; t < kThreads; ++t) {
            expect_trees_identical(
                *results[static_cast<std::size_t>(t) * g.node_count() + s], fresh);
        }
    }
    // Every lookup either hit or missed; entries equals distinct keys.
    const auto st = cache.stats();
    EXPECT_EQ(st.hits + st.misses, static_cast<std::uint64_t>(kThreads) * g.node_count());
    EXPECT_EQ(st.entries, g.node_count());
}

}  // namespace
