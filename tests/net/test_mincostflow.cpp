#include "net/mincostflow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "helpers/graphs.hpp"
#include "net/shortest_path.hpp"

namespace poc::net {
namespace {

TEST(MinCostFlow, RoutesAlongCheapPathFirst) {
    Graph g = test::triangle();
    Subgraph sg(g);
    // 0->2: via 1 costs 2/unit (cap 10), direct costs 3/unit (cap 5).
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{2u}, 4.0, weight_by_length(g));
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->routed, 4.0, 1e-9);
    EXPECT_NEAR(r->cost, 8.0, 1e-9);  // all on the cheap path
}

TEST(MinCostFlow, SpillsToExpensivePathWhenSaturated) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{2u}, 12.0, weight_by_length(g));
    ASSERT_TRUE(r.has_value());
    // 10 units at cost 2, 2 units at cost 3.
    EXPECT_NEAR(r->cost, 20.0 + 6.0, 1e-9);
}

TEST(MinCostFlow, InfeasibleWhenDemandExceedsCut) {
    Graph g = test::triangle();
    Subgraph sg(g);
    EXPECT_FALSE(min_cost_flow(sg, NodeId{0u}, NodeId{2u}, 16.0, weight_by_length(g)));
}

TEST(MinCostFlow, ZeroAmountTrivial) {
    Graph g = test::triangle();
    Subgraph sg(g);
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{2u}, 0.0, weight_by_length(g));
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(r->routed, 0.0);
    EXPECT_DOUBLE_EQ(r->cost, 0.0);
    EXPECT_TRUE(r->flows.empty());
}

TEST(MinCostFlow, FlowConservation) {
    util::Rng rng(31);
    Graph g = test::random_connected(rng, 9, 10);
    Subgraph sg(g);
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{8u}, 3.0, weight_by_length(g));
    ASSERT_TRUE(r.has_value());
    std::vector<double> net_out(g.node_count(), 0.0);
    for (const LinkFlow& f : r->flows) {
        const Link& l = g.link(f.link);
        net_out[l.a.index()] += f.flow;
        net_out[l.b.index()] -= f.flow;
    }
    EXPECT_NEAR(net_out[0], 3.0, 1e-6);
    EXPECT_NEAR(net_out[8], -3.0, 1e-6);
    for (std::size_t v = 1; v < 8; ++v) EXPECT_NEAR(net_out[v], 0.0, 1e-6);
}

TEST(MinCostFlow, CostMatchesShortestPathForSmallAmounts) {
    util::Rng rng(37);
    for (int trial = 0; trial < 5; ++trial) {
        Graph g = test::random_connected(rng, 10, 12);
        Subgraph sg(g);
        const auto w = weight_by_length(g);
        const auto sp = shortest_path(sg, NodeId{0u}, NodeId{9u}, w);
        ASSERT_TRUE(sp.has_value());
        // Tiny amount: everything goes down the single shortest path.
        const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{9u}, 1e-3, w);
        ASSERT_TRUE(r.has_value());
        EXPECT_NEAR(r->cost, sp->weight * 1e-3, 1e-9);
    }
}

TEST(MinCostFlow, RespectsCapacities) {
    util::Rng rng(41);
    Graph g = test::random_connected(rng, 8, 10);
    Subgraph sg(g);
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{7u}, 5.0, weight_by_length(g));
    if (!r) return;  // random instance too tight: nothing to verify
    for (const LinkFlow& f : r->flows) {
        EXPECT_LE(std::abs(f.flow), g.link(f.link).capacity_gbps + 1e-9);
    }
}

TEST(MinCostFlow, RejectsNegativeCost) {
    Graph g = test::chain(2);
    Subgraph sg(g);
    EXPECT_THROW(min_cost_flow(sg, NodeId{0u}, NodeId{1u}, 1.0, [](LinkId) { return -1.0; }),
                 util::ContractViolation);
}

TEST(MinCostFlow, InactiveLinksExcluded) {
    Graph g = test::triangle();
    Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);
    const auto r = min_cost_flow(sg, NodeId{0u}, NodeId{2u}, 1.0, weight_by_length(g));
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->cost, 3.0, 1e-9);  // forced onto the direct link
}

}  // namespace
}  // namespace poc::net
