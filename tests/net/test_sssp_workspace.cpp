// SsspWorkspace / batched-SSSP fast path: bit-identity against a
// reference implementation of the original tree-returning Dijkstra
// (std::priority_queue, fresh vectors per call), plus the
// zero-allocation steady-state contract (DESIGN.md §6).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <queue>
#include <vector>

#include "helpers/graphs.hpp"
#include "net/shortest_path.hpp"
#include "net/sssp.hpp"
#include "util/rng.hpp"

using namespace poc;
using net::LinkId;
using net::NodeId;

namespace {

// Thread-local allocation counter fed by the global operator new
// replacement below: lets tests assert a code region performs zero
// heap allocations on this thread.
thread_local std::uint64_t g_thread_allocs = 0;

}  // namespace

void* operator new(std::size_t size) {
    ++g_thread_allocs;
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

// The seed Dijkstra, verbatim: binary std::priority_queue over
// (dist, raw node id) pairs, per-call vector allocation. The fast
// path's contract is bit-identity against exactly this.
net::ShortestPathTree reference_dijkstra(const net::Subgraph& sg, NodeId source,
                                         const net::LinkWeight& weight) {
    const net::Graph& g = sg.graph();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    net::ShortestPathTree tree;
    tree.source = source;
    tree.dist.assign(g.node_count(), kInf);
    tree.parent_link.assign(g.node_count(), LinkId{});
    tree.pred_node_.assign(g.node_count(), NodeId{});
    tree.dist[source.index()] = 0.0;

    using Item = std::pair<double, NodeId::underlying_type>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0.0, source.value());
    while (!heap.empty()) {
        const auto [d, u_raw] = heap.top();
        heap.pop();
        const NodeId u{u_raw};
        if (d > tree.dist[u.index()]) continue;
        for (const LinkId lid : g.incident(u)) {
            if (!sg.is_active(lid)) continue;
            const double w = weight(lid);
            const NodeId v = g.link(lid).other(u);
            const double nd = d + w;
            if (nd < tree.dist[v.index()]) {
                tree.dist[v.index()] = nd;
                tree.parent_link[v.index()] = lid;
                tree.pred_node_[v.index()] = u;
                heap.emplace(nd, v.value());
            }
        }
    }
    return tree;
}

void expect_trees_identical(const net::ShortestPathTree& a, const net::ShortestPathTree& b) {
    ASSERT_EQ(a.dist.size(), b.dist.size());
    EXPECT_EQ(a.source, b.source);
    for (std::size_t i = 0; i < a.dist.size(); ++i) {
        // Exact double equality on purpose: the contract is bit-identity.
        EXPECT_EQ(a.dist[i], b.dist[i]) << "node " << i;
        EXPECT_EQ(a.parent_link[i], b.parent_link[i]) << "node " << i;
        EXPECT_EQ(a.pred_node_[i], b.pred_node_[i]) << "node " << i;
    }
}

net::TrafficMatrix random_demands(util::Rng& rng, std::size_t nodes, std::size_t count) {
    net::TrafficMatrix tm;
    for (std::size_t i = 0; i < count; ++i) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{nodes}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{nodes}));
        if (t == s) t = (t + 1) % nodes;
        tm.push_back({NodeId{s}, NodeId{t}, rng.uniform(0.5, 5.0)});
    }
    return tm;
}

TEST(SsspWorkspace, MatchesReferenceOnRandomGraphs) {
    util::Rng rng(7);
    for (int round = 0; round < 30; ++round) {
        const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(40));
        const net::Graph g = test::random_connected(rng, n, n / 2 + 2);
        net::Subgraph sg(g);
        // Knock out a few random links so some nodes may be unreachable.
        for (const LinkId l : g.all_links()) {
            if (rng.uniform(0.0, 1.0) < 0.2) sg.set_active(l, false);
        }
        const net::LinkWeight w = net::weight_by_length(g);
        net::SsspWorkspace ws;  // reused across sources: exercises the stamp reset
        for (std::size_t s = 0; s < n; ++s) {
            const auto ref = reference_dijkstra(sg, NodeId{s}, w);
            expect_trees_identical(ref, net::dijkstra(sg, NodeId{s}, w));
            net::dijkstra_into(sg, NodeId{s}, w, ws);
            expect_trees_identical(ref, ws.to_tree());
            net::dijkstra_metric_into(sg, NodeId{s}, net::SsspMetric::kLength, ws);
            expect_trees_identical(ref, ws.to_tree());
        }
    }
}

TEST(SsspWorkspace, UnitMetricMatchesGenericUnitWeight) {
    util::Rng rng(11);
    const net::Graph g = test::random_connected(rng, 25, 15);
    const net::Subgraph sg(g);
    net::SsspWorkspace ws;
    for (std::size_t s = 0; s < g.node_count(); ++s) {
        const auto ref = reference_dijkstra(sg, NodeId{s}, net::weight_unit());
        net::dijkstra_metric_into(sg, NodeId{s}, net::SsspMetric::kUnit, ws);
        expect_trees_identical(ref, ws.to_tree());
    }
}

TEST(SsspWorkspace, PathReconstructionMatchesTree) {
    util::Rng rng(13);
    const net::Graph g = test::random_connected(rng, 20, 10);
    const net::Subgraph sg(g);
    const net::LinkWeight w = net::weight_by_length(g);
    net::SsspWorkspace ws;
    net::dijkstra_into(sg, NodeId{0u}, w, ws);
    const auto tree = reference_dijkstra(sg, NodeId{0u}, w);
    for (std::size_t v = 1; v < g.node_count(); ++v) {
        ASSERT_TRUE(ws.reachable(NodeId{v}));
        EXPECT_EQ(ws.path_to(NodeId{v}), tree.path_to(NodeId{v}));
    }
}

TEST(SsspWorkspace, WorkspaceShortestPathMatchesConvenienceOverload) {
    util::Rng rng(17);
    const net::Graph g = test::random_connected(rng, 30, 20);
    net::Subgraph sg(g);
    sg.set_active(LinkId{0u}, false);
    const net::LinkWeight w = net::weight_by_length(g);
    net::SsspWorkspace ws;
    for (std::size_t s = 0; s < 8; ++s) {
        for (std::size_t t = 0; t < g.node_count(); ++t) {
            if (s == t) continue;
            const auto a = net::shortest_path(sg, NodeId{s}, NodeId{t}, w);
            const auto b = net::shortest_path(sg, NodeId{s}, NodeId{t}, w, ws);
            ASSERT_EQ(a.has_value(), b.has_value());
            if (a) {
                EXPECT_EQ(a->links, b->links);
                EXPECT_EQ(a->weight, b->weight);
            }
        }
    }
}

TEST(SsspWorkspace, SteadyStateRunsAreAllocationFree) {
    util::Rng rng(19);
    const net::Graph g = test::random_connected(rng, 60, 40);
    const net::Subgraph sg(g);
    const net::LinkWeight w = net::weight_by_length(g);
    net::SsspWorkspace ws;
    std::vector<LinkId> path;
    // Warm-up: size the scratch arrays, the heap's capacity, the path
    // buffer, and the obs macros' function-local registry lookups.
    for (std::size_t s = 0; s < g.node_count(); ++s) {
        net::dijkstra_into(sg, NodeId{s}, w, ws);
        net::dijkstra_metric_into(sg, NodeId{s}, net::SsspMetric::kLength, ws);
        if (ws.reachable(NodeId{0u}) && NodeId{s} != NodeId{0u}) {
            ws.append_path_to(NodeId{0u}, path);
        }
    }
    const std::uint64_t before = g_thread_allocs;
    for (int round = 0; round < 5; ++round) {
        for (std::size_t s = 0; s < g.node_count(); ++s) {
            net::dijkstra_metric_into(sg, NodeId{s}, net::SsspMetric::kLength, ws);
            if (NodeId{s} != NodeId{0u} && ws.reachable(NodeId{0u})) {
                ws.append_path_to(NodeId{0u}, path);
            }
        }
    }
    EXPECT_EQ(g_thread_allocs - before, 0u)
        << "SSSP inner loop allocated in the steady state";
}

TEST(BatchedSssp, DistinctSourcesFirstAppearanceOrder) {
    net::TrafficMatrix tm{{NodeId{3u}, NodeId{1u}, 1.0},
                          {NodeId{0u}, NodeId{2u}, 1.0},
                          {NodeId{3u}, NodeId{2u}, 1.0},
                          {NodeId{1u}, NodeId{0u}, 1.0},
                          {NodeId{0u}, NodeId{3u}, 1.0}};
    const auto sources = net::distinct_sources(tm);
    ASSERT_EQ(sources.size(), 3u);
    EXPECT_EQ(sources[0], NodeId{3u});
    EXPECT_EQ(sources[1], NodeId{0u});
    EXPECT_EQ(sources[2], NodeId{1u});
}

TEST(BatchedSssp, DistancesMatchPerDemandShortestPathInAllModes) {
    util::Rng rng(23);
    for (int round = 0; round < 8; ++round) {
        const std::size_t n = 6 + static_cast<std::size_t>(rng.uniform_int(30));
        const net::Graph g = test::random_connected(rng, n, n / 2);
        net::Subgraph sg(g);
        for (const LinkId l : g.all_links()) {
            if (rng.uniform(0.0, 1.0) < 0.25) sg.set_active(l, false);
        }
        const net::TrafficMatrix tm = random_demands(rng, n, 80);

        // Reference: one shortest_path call per demand, seed-style.
        std::vector<double> expected(tm.size(),
                                     std::numeric_limits<double>::infinity());
        const net::LinkWeight w = net::weight_by_length(g);
        for (std::size_t j = 0; j < tm.size(); ++j) {
            const auto tree = reference_dijkstra(sg, tm[j].src, w);
            expected[j] = tree.dist[tm[j].dst.index()];
        }

        net::PathCache cache;
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            for (net::PathCache* c : {static_cast<net::PathCache*>(nullptr), &cache}) {
                net::SsspBatchOptions opt;
                opt.threads = threads;
                opt.cache = c;
                const auto got = net::batched_demand_distances(sg, tm, opt);
                ASSERT_EQ(got.size(), expected.size());
                for (std::size_t j = 0; j < got.size(); ++j) {
                    EXPECT_EQ(got[j], expected[j])
                        << "demand " << j << " threads=" << threads
                        << " cache=" << (c != nullptr);
                }
            }
        }
    }
}

TEST(BatchedSssp, PrimaryPathsMatchPerDemandReference) {
    util::Rng rng(29);
    const std::size_t n = 24;
    const net::Graph g = test::random_connected(rng, n, 14);
    net::Subgraph sg(g);
    sg.set_active(LinkId{2u}, false);
    net::TrafficMatrix tm = random_demands(rng, n, 60);
    tm[5].gbps = 0.0;  // must yield an empty primary

    const net::LinkWeight w = net::weight_by_length(g);
    std::vector<std::vector<LinkId>> expected(tm.size());
    for (std::size_t j = 0; j < tm.size(); ++j) {
        if (tm[j].gbps <= 0.0) continue;
        const auto tree = reference_dijkstra(sg, tm[j].src, w);
        if (tree.reachable(tm[j].dst)) expected[j] = tree.path_to(tm[j].dst);
    }

    net::PathCache cache;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        for (net::PathCache* c : {static_cast<net::PathCache*>(nullptr), &cache}) {
            net::SsspBatchOptions opt;
            opt.threads = threads;
            opt.cache = c;
            EXPECT_EQ(net::batched_primary_paths(sg, tm, opt), expected);
        }
    }
}

}  // namespace
