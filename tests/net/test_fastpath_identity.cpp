// Bit-identity of the routing fast path against reference
// implementations that rebuild all state per demand, the way the code
// worked before the workspace/incremental-mask optimization:
//
//  * greedy_path_routing: reference rebuilds the residual-capacity
//    Subgraph from scratch for every demand; production maintains it
//    incrementally with an exclusion undo list.
//  * max_concurrent_flow: reference screens reachability with one full
//    Dijkstra per demand; production dedups consecutive same-source
//    screens through one workspace.
//
// Both use the library shortest_path/yen underneath, whose own
// bit-identity to the seed priority_queue Dijkstra is proven in
// test_sssp_workspace.cpp — chaining the two gives end-to-end identity
// with the pre-optimization code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "helpers/graphs.hpp"
#include "net/ksp.hpp"
#include "net/mcf.hpp"
#include "util/rng.hpp"

using namespace poc;
using net::LinkId;
using net::NodeId;

namespace {

constexpr double kEps = 1e-12;

std::optional<net::CommodityRouting> reference_greedy(const net::Subgraph& sg,
                                                      const net::TrafficMatrix& tm,
                                                      const net::GreedyRoutingOptions& opt) {
    const net::Graph& g = sg.graph();

    std::vector<std::size_t> order(tm.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return tm[a].gbps > tm[b].gbps; });

    std::vector<double> residual(g.link_count(), 0.0);
    for (const LinkId lid : sg.active_links()) {
        residual[lid.index()] = g.link(lid).capacity_gbps * opt.utilization_cap;
    }

    net::CommodityRouting routing;
    routing.routes.resize(tm.size());

    for (const std::size_t di : order) {
        const net::Demand& d = tm[di];
        if (d.gbps <= kEps) continue;

        const net::LinkWeight congestion_weight = [&](LinkId lid) {
            const double cap = g.link(lid).capacity_gbps * opt.utilization_cap;
            const double used = cap - residual[lid.index()];
            const double frac = cap > 0.0 ? used / cap : 1.0;
            const double base = opt.base_weight != nullptr ? (*opt.base_weight)[lid.index()]
                                                           : g.link(lid).length_km;
            return (base + 1.0) * (1.0 + 4.0 * frac * frac);
        };

        // Per-demand from-scratch rebuild of the usable view.
        net::Subgraph usable = sg;
        for (const LinkId lid : sg.active_links()) {
            if (residual[lid.index()] <= kEps) usable.set_active(lid, false);
        }
        if (opt.exclusions != nullptr) {
            for (const LinkId lid : (*opt.exclusions)[di]) usable.set_active(lid, false);
        }

        const auto candidates =
            net::yen_k_shortest(usable, d.src, d.dst, congestion_weight, opt.k_paths);
        double remaining = d.gbps;
        for (const net::WeightedPath& wp : candidates) {
            if (remaining <= kEps) break;
            double bottleneck = remaining;
            for (const LinkId l : wp.links) {
                bottleneck = std::min(bottleneck, residual[l.index()]);
            }
            if (bottleneck <= kEps) continue;
            for (const LinkId l : wp.links) residual[l.index()] -= bottleneck;
            routing.routes[di].emplace_back(wp.links, bottleneck);
            remaining -= bottleneck;
        }
        if (remaining > 1e-9 * std::max(1.0, d.gbps)) return std::nullopt;
    }
    return routing;
}

net::ConcurrentFlowResult reference_cf(const net::Subgraph& sg, const net::TrafficMatrix& tm,
                                       double eps,
                                       const net::CommodityExclusions* exclusions) {
    const net::Graph& g = sg.graph();
    const std::size_t m = std::max<std::size_t>(sg.active_count(), 2);

    net::ConcurrentFlowResult out;
    out.routing.routes.resize(tm.size());
    if (tm.empty()) {
        out.lambda = std::numeric_limits<double>::infinity();
        return out;
    }

    const double delta = std::pow(static_cast<double>(m) / (1.0 - eps), -1.0 / eps) / 1.0;
    std::vector<double> length(g.link_count(), 0.0);
    const auto active = sg.active_links();
    for (const LinkId lid : active) {
        length[lid.index()] = delta / g.link(lid).capacity_gbps;
    }
    auto dual = [&]() {
        double s = 0.0;
        for (const LinkId lid : active) s += length[lid.index()] * g.link(lid).capacity_gbps;
        return s;
    };
    const net::LinkWeight len_weight = [&](LinkId lid) { return length[lid.index()]; };

    std::vector<double> routed(tm.size(), 0.0);

    std::vector<net::Subgraph> views;
    if (exclusions != nullptr) {
        views.reserve(tm.size());
        for (std::size_t j = 0; j < tm.size(); ++j) {
            net::Subgraph v = sg;
            for (const LinkId lid : (*exclusions)[j]) v.set_active(lid, false);
            views.push_back(std::move(v));
        }
    }
    auto view_of = [&](std::size_t j) -> const net::Subgraph& {
        return exclusions != nullptr ? views[j] : sg;
    };

    // One full tree-returning Dijkstra per demand, no dedup.
    for (std::size_t j = 0; j < tm.size(); ++j) {
        const net::Demand& d = tm[j];
        if (d.gbps <= kEps) continue;
        const auto tree = net::dijkstra(view_of(j), d.src, net::weight_unit());
        if (!tree.reachable(d.dst)) {
            out.lambda = 0.0;
            return out;
        }
    }

    double current_dual = dual();
    while (current_dual < 1.0) {
        for (std::size_t j = 0; j < tm.size(); ++j) {
            const net::Demand& d = tm[j];
            if (d.gbps <= kEps) continue;
            double to_route = d.gbps;
            while (to_route > kEps && current_dual < 1.0) {
                auto sp = net::shortest_path(view_of(j), d.src, d.dst, len_weight);
                POC_ASSERT(sp.has_value());
                double bottleneck = to_route;
                for (const LinkId l : sp->links) {
                    bottleneck = std::min(bottleneck, g.link(l).capacity_gbps);
                }
                for (const LinkId l : sp->links) {
                    const double cap = g.link(l).capacity_gbps;
                    const double old_len = length[l.index()];
                    length[l.index()] = old_len * (1.0 + eps * bottleneck / cap);
                    current_dual += eps * bottleneck * old_len;
                }
                routed[j] += bottleneck;
                to_route -= bottleneck;
                out.routing.routes[j].emplace_back(std::move(sp->links), bottleneck);
            }
        }
    }

    const double scale = std::log((1.0 + eps) / delta) / std::log(1.0 + eps);
    double min_fraction = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < tm.size(); ++j) {
        if (tm[j].gbps <= kEps) continue;
        min_fraction = std::min(min_fraction, routed[j] / tm[j].gbps);
    }
    if (min_fraction == std::numeric_limits<double>::infinity()) min_fraction = 0.0;
    out.lambda = min_fraction / scale;
    for (auto& demand_routes : out.routing.routes) {
        for (auto& [path, rate] : demand_routes) rate /= scale;
    }
    return out;
}

void expect_routing_identical(const net::CommodityRouting& a, const net::CommodityRouting& b) {
    ASSERT_EQ(a.routes.size(), b.routes.size());
    for (std::size_t j = 0; j < a.routes.size(); ++j) {
        ASSERT_EQ(a.routes[j].size(), b.routes[j].size()) << "demand " << j;
        for (std::size_t p = 0; p < a.routes[j].size(); ++p) {
            EXPECT_EQ(a.routes[j][p].first, b.routes[j][p].first) << "demand " << j;
            // Exact: the fast path must place identical rates.
            EXPECT_EQ(a.routes[j][p].second, b.routes[j][p].second) << "demand " << j;
        }
    }
}

// The Subgraph view points into the Graph, so the instance is filled
// in place (never moved) — hence the out-parameter and optional<>.
struct Instance {
    net::Graph g;
    std::optional<net::Subgraph> sg;
    net::TrafficMatrix tm;
    net::CommodityExclusions exclusions;
};

void make_random_instance(util::Rng& rng, std::size_t n, std::size_t demands,
                          double demand_scale, Instance& inst) {
    inst.g = test::random_connected(rng, n, n / 2 + 1);
    inst.sg.emplace(inst.g);
    for (const LinkId l : inst.g.all_links()) {
        if (rng.uniform(0.0, 1.0) < 0.1) inst.sg->set_active(l, false);
    }
    for (std::size_t i = 0; i < demands; ++i) {
        const auto s = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        auto t = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{n}));
        if (t == s) t = (t + 1) % n;
        inst.tm.push_back({NodeId{s}, NodeId{t}, rng.uniform(0.1, demand_scale)});
    }
    inst.exclusions.resize(inst.tm.size());
    const auto links = inst.g.all_links();
    for (auto& ex : inst.exclusions) {
        while (rng.uniform(0.0, 1.0) < 0.4) {
            ex.push_back(links[static_cast<std::size_t>(
                rng.uniform_int(std::uint64_t{links.size()}))]);
        }
    }
}

TEST(FastPathIdentity, GreedyMatchesPerDemandRebuild) {
    util::Rng rng(67);
    int feasible = 0;
    int infeasible = 0;
    for (int round = 0; round < 12; ++round) {
        // Low scale rounds should fit; high scale rounds should fail,
        // exercising both return paths.
        const double scale = round % 2 == 0 ? 2.0 : 40.0;
        Instance inst;
        make_random_instance(rng, 8 + static_cast<std::size_t>(round), 25, scale, inst);
        const net::CommodityExclusions* variants[] = {nullptr, &inst.exclusions};
        for (const net::CommodityExclusions* ex : variants) {
            net::GreedyRoutingOptions opt;
            opt.exclusions = ex;
            opt.utilization_cap = round % 3 == 0 ? 0.9 : 1.0;
            const auto expected = reference_greedy(*inst.sg, inst.tm, opt);
            const auto got = net::greedy_path_routing(*inst.sg, inst.tm, opt);
            ASSERT_EQ(expected.has_value(), got.has_value());
            if (expected) {
                expect_routing_identical(*expected, *got);
                ++feasible;
            } else {
                ++infeasible;
            }
        }
    }
    // The sweep must actually exercise both outcomes.
    EXPECT_GT(feasible, 0);
    EXPECT_GT(infeasible, 0);
}

TEST(FastPathIdentity, ConcurrentFlowMatchesPerDemandScreening) {
    util::Rng rng(71);
    for (int round = 0; round < 6; ++round) {
        Instance inst;
        make_random_instance(rng, 7 + static_cast<std::size_t>(round), 12, 3.0, inst);
        inst.tm[3].gbps = 0.0;  // zero-demand commodities are skipped
        const net::CommodityExclusions* variants[] = {nullptr, &inst.exclusions};
        for (const net::CommodityExclusions* ex : variants) {
            const auto expected = reference_cf(*inst.sg, inst.tm, 0.1, ex);
            const auto got = net::max_concurrent_flow(*inst.sg, inst.tm, 0.1, ex);
            EXPECT_EQ(expected.lambda, got.lambda);
            expect_routing_identical(expected.routing, got.routing);
        }
    }
}

TEST(FastPathIdentity, ConcurrentFlowUnreachableDemandStillZero) {
    // Two components: demand across them must yield lambda == 0 in both
    // implementations (screening dedup must not skip the decisive run).
    net::Graph g;
    const NodeId a = g.add_node("a");
    const NodeId b = g.add_node("b");
    const NodeId c = g.add_node("c");
    const NodeId d = g.add_node("d");
    g.add_link(a, b, 10.0, 1.0);
    g.add_link(c, d, 10.0, 1.0);
    const net::Subgraph sg(g);
    // Same source twice: first demand reachable, second not — the dedup
    // path answers the second from the first's tree.
    const net::TrafficMatrix tm{{a, b, 1.0}, {a, c, 1.0}};
    const auto expected = reference_cf(sg, tm, 0.1, nullptr);
    const auto got = net::max_concurrent_flow(sg, tm, 0.1);
    EXPECT_EQ(expected.lambda, 0.0);
    EXPECT_EQ(got.lambda, 0.0);
}

}  // namespace
