// The observability determinism contract (DESIGN.md §5a): obs is a
// pure side channel. Instrumented auction runs are bit-identical to
// each other regardless of what the metrics/trace registries contain,
// whether they are reset or drained mid-sequence, or whether snapshots
// are being captured concurrently — clocks and counters are read for
// telemetry only and never feed back into auction state. Together with
// the POC_OBS_DISABLED build of this same suite (CI runs both), this
// property-tests "instrumented == uninstrumented" for the auction.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "helpers/market.hpp"
#include "market/pricing.hpp"
#include "market/vcg.hpp"
#include "obs/snapshot.hpp"

namespace poc::obs {
namespace {

using market::AcceptabilityOracle;
using market::AuctionOptions;
using market::AuctionResult;
using market::ConstraintKind;
using market::OfferPool;
using market::run_auction;

void expect_identical(const AuctionResult& a, const AuctionResult& b, const char* what) {
    SCOPED_TRACE(what);
    EXPECT_EQ(a.selection.links, b.selection.links);
    EXPECT_EQ(a.selection.cost, b.selection.cost);
    EXPECT_EQ(a.virtual_cost, b.virtual_cost);
    EXPECT_EQ(a.total_outlay, b.total_outlay);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.outcomes[i].bp, b.outcomes[i].bp);
        EXPECT_EQ(a.outcomes[i].selected_links, b.outcomes[i].selected_links);
        EXPECT_EQ(a.outcomes[i].bid_cost, b.outcomes[i].bid_cost);
        EXPECT_EQ(a.outcomes[i].cost_without, b.outcomes[i].cost_without);
        EXPECT_EQ(a.outcomes[i].payment, b.outcomes[i].payment);
        EXPECT_EQ(a.outcomes[i].pivot_defined, b.outcomes[i].pivot_defined);
        EXPECT_EQ(a.outcomes[i].pob, b.outcomes[i].pob);
    }
}

class ObsDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObsDeterminism, AuctionUnaffectedByRegistryState) {
    test::RandomSmallInstance inst(GetParam());
    const OfferPool pool = inst.pool();
    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});

    // Same run with the registry polluted by unrelated metrics.
    registry().counter("det.noise").add(12345);
    registry().histogram("det.noise_hist", 0.0, 1.0, 3).record(0.5);
    const auto polluted = run({});

    // Same run right after a full registry reset and trace drain.
    registry().reset();
    traces().drain();
    const auto after_reset = run({});

    // Parallel engine with obs instrumentation active on every pivot
    // thread (spans + counters from worker threads).
    AuctionOptions par;
    par.threads = 4;
    par.cache = true;
    const auto parallel = run(par);

    ASSERT_EQ(baseline.has_value(), polluted.has_value());
    ASSERT_EQ(baseline.has_value(), after_reset.has_value());
    ASSERT_EQ(baseline.has_value(), parallel.has_value());
    if (!baseline) return;
    expect_identical(*baseline, *polluted, "polluted registry");
    expect_identical(*baseline, *after_reset, "after reset+drain");
    expect_identical(*baseline, *parallel, "parallel instrumented");
}

TEST_P(ObsDeterminism, AuctionUnaffectedByConcurrentSnapshots) {
    // A snapshot reader racing the instrumented auction must not change
    // its outcome (and, under TSAN, must not race with it either).
    test::RandomSmallInstance inst(GetParam() * 7 + 5);
    const OfferPool pool = inst.pool();
    auto run = [&](const AuctionOptions& opt) {
        const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
        return run_auction(pool, oracle, opt);
    };

    const auto baseline = run({});

    std::atomic<bool> stop{false};
    std::thread reader([&stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            const Snapshot snap = Snapshot::capture();
            (void)snap.json();
        }
    });
    AuctionOptions par;
    par.threads = 4;
    const auto observed = run(par);
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    ASSERT_EQ(baseline.has_value(), observed.has_value());
    if (baseline) expect_identical(*baseline, *observed, "concurrent snapshots");
}

#if POC_OBS_ENABLED
TEST_P(ObsDeterminism, InstrumentationActuallyFires) {
    // Guard against the vacuous version of this suite: the instrumented
    // run must actually move the auction counters.
    test::RandomSmallInstance inst(GetParam() * 11 + 3);
    const OfferPool pool = inst.pool();
    const Snapshot before = Snapshot::capture();
    const AcceptabilityOracle oracle(inst.graph, inst.tm, ConstraintKind::kLoad);
    const auto result = run_auction(pool, oracle, {});
    const Snapshot d = Snapshot::capture().delta_since(before);
    EXPECT_EQ(d.counter_or("market.auction.runs"), 1u);
    if (result) {
        EXPECT_GE(d.counter_or("market.auction.pivots"), 1u);
        EXPECT_GE(d.counter_or("market.auction.oracle_queries"), 1u);
        EXPECT_EQ(d.counter_or("market.auction.outlay_microusd"),
                  static_cast<std::uint64_t>(result->total_outlay.micros()));
    }
}
#endif

INSTANTIATE_TEST_SUITE_P(Seeds, ObsDeterminism, ::testing::Values(901, 902, 903, 904));

}  // namespace
}  // namespace poc::obs
