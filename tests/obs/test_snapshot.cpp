#include "obs/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/contracts.hpp"

namespace poc::obs {
namespace {

// All tests go through the process-wide registry (snapshots capture it
// by design), so they assert on deltas and unique names rather than
// absolute registry contents — robust whether tests share a process or
// run one-per-invocation under ctest.

TEST(Snapshot, CapturesRegisteredMetrics) {
    registry().counter("snap.cap.counter").add(5);
    registry().gauge("snap.cap.gauge").set(-3);
    registry().histogram("snap.cap.hist", 0.0, 10.0, 5).record(2.0);

    const Snapshot snap = Snapshot::capture();
    EXPECT_GE(snap.counter_or("snap.cap.counter"), 5u);
    const HistogramSample* h = snap.histogram("snap.cap.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->lo, 0.0);
    EXPECT_EQ(h->hi, 10.0);
    ASSERT_EQ(h->counts.size(), 5u);
    EXPECT_GE(h->total, 1u);
    bool gauge_found = false;
    for (const GaugeSample& g : snap.gauges) {
        if (g.name == "snap.cap.gauge") {
            gauge_found = true;
            EXPECT_EQ(g.value, -3);
        }
    }
    EXPECT_TRUE(gauge_found);
}

TEST(Snapshot, SamplesAreNameOrdered) {
    registry().counter("snap.order.b").add(1);
    registry().counter("snap.order.a").add(1);
    const Snapshot snap = Snapshot::capture();
    for (std::size_t i = 1; i < snap.counters.size(); ++i) {
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
    }
}

TEST(Snapshot, DeltaSubtractsCountersAndHistograms) {
    Counter& c = registry().counter("snap.delta.counter");
    Histogram& h = registry().histogram("snap.delta.hist", 0.0, 10.0, 2);
    c.add(10);
    h.record(1.0);
    const Snapshot base = Snapshot::capture();

    c.add(7);
    h.record(6.0);
    h.record(20.0);  // overflow
    const Snapshot now = Snapshot::capture();
    const Snapshot d = now.delta_since(base);

    EXPECT_EQ(d.counter_or("snap.delta.counter"), 7u);
    const HistogramSample* hd = d.histogram("snap.delta.hist");
    ASSERT_NE(hd, nullptr);
    EXPECT_EQ(hd->total, 2u);
    EXPECT_EQ(hd->overflow, 1u);
    EXPECT_EQ(hd->counts[1], 1u);  // the 6.0 sample
    EXPECT_EQ(hd->counts[0], 0u);
    EXPECT_NEAR(hd->sum, 26.0, 2e-3);
}

TEST(Snapshot, DeltaKeepsMetricsAbsentFromBase) {
    const Snapshot base = Snapshot::capture();
    registry().counter("snap.delta.fresh").add(3);
    const Snapshot d = Snapshot::capture().delta_since(base);
    EXPECT_EQ(d.counter_or("snap.delta.fresh"), 3u);
}

TEST(Snapshot, CounterOrFallsBack) {
    const Snapshot snap = Snapshot::capture();
    EXPECT_EQ(snap.counter_or("snap.never.registered", 99), 99u);
    EXPECT_EQ(snap.histogram("snap.never.registered"), nullptr);
}

TEST(Snapshot, JsonContainsMetricsAndBalancedBraces) {
    registry().counter("snap.json.counter").add(1);
    registry().histogram("snap.json.hist", 0.0, 1.0, 2).record(0.5);
    const std::string j = Snapshot::capture().json();
    EXPECT_NE(j.find("\"snap.json.counter\""), std::string::npos);
    EXPECT_NE(j.find("\"snap.json.hist\""), std::string::npos);
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    long depth = 0;
    for (const char ch : j) {
        if (ch == '{' || ch == '[') ++depth;
        if (ch == '}' || ch == ']') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Snapshot, MetricsTableHasOneRowPerMetric) {
    registry().counter("snap.table.counter").add(2);
    registry().gauge("snap.table.gauge").set(1);
    const Snapshot snap = Snapshot::capture();
    const util::Table t = snap.metrics_table();
    const std::string rendered = t.render();
    EXPECT_NE(rendered.find("snap.table.counter"), std::string::npos);
    EXPECT_NE(rendered.find("snap.table.gauge"), std::string::npos);
    EXPECT_NE(rendered.find("kind"), std::string::npos);
}

class SnapshotCsvTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "poc_obs_csv_test";
        std::filesystem::create_directories(dir_);
        setenv("POC_CSV_DIR", dir_.c_str(), 1);
    }
    void TearDown() override {
        unsetenv("POC_CSV_DIR");
        std::filesystem::remove_all(dir_);
    }
    std::filesystem::path dir_;
};

TEST_F(SnapshotCsvTest, ExportsMetricsCsv) {
    registry().counter("snap.csv.counter").add(4);
    const Snapshot snap = Snapshot::capture();
    const auto path = snap.export_csv("obs_test");
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (dir_ / "obs_test.csv").string());
    std::ifstream in(*path);
    std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("snap.csv.counter"), std::string::npos);
}

TEST_F(SnapshotCsvTest, NoCsvDirMeansNoExport) {
    unsetenv("POC_CSV_DIR");
    EXPECT_FALSE(Snapshot::capture().export_csv("obs_test").has_value());
}

#if POC_OBS_ENABLED
TEST(Snapshot, DrainSpansCapturesAndConsumesTimeline) {
    traces().drain();  // start clean
    {
        POC_OBS_SPAN("snap.span.one");
    }
    const Snapshot snap = Snapshot::capture(/*drain_spans=*/true);
    bool found = false;
    for (const SpanSample& s : snap.spans) {
        if (s.name == "snap.span.one") found = true;
    }
    EXPECT_TRUE(found);
    // Draining consumed the records: the next capture sees none.
    const Snapshot again = Snapshot::capture(/*drain_spans=*/true);
    EXPECT_TRUE(again.spans.empty());

    const std::string rendered = snap.spans_table().render();
    EXPECT_NE(rendered.find("snap.span.one"), std::string::npos);
}
#endif

}  // namespace
}  // namespace poc::obs
