#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/contracts.hpp"

namespace poc::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreExactOnceQuiesced) {
    // Sharding trades read-time aggregation for wait-free writes; the
    // sum must still be exact after writers join.
    Counter c;
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddSub) {
    Gauge g;
    EXPECT_EQ(g.value(), 0);
    g.set(5);
    g.add(3);
    g.sub(10);
    EXPECT_EQ(g.value(), -2);  // gauges are signed levels
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketSemanticsMatchUtilHistogram) {
    Histogram h(0.0, 10.0, 5);
    h.record(-1.0);   // underflow
    h.record(0.0);    // bin 0 (left-closed)
    h.record(1.99);   // bin 0
    h.record(5.0);    // bin 2
    h.record(9.999);  // bin 4
    h.record(10.0);   // overflow (right-open)
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count_in_bin(0), 2u);
    EXPECT_EQ(h.count_in_bin(2), 1u);
    EXPECT_EQ(h.count_in_bin(4), 1u);
    EXPECT_NEAR(h.sum(), -1.0 + 0.0 + 1.99 + 5.0 + 9.999 + 10.0, 2e-3);  // 1e-3 fixed point
    EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
}

TEST(ObsHistogram, NegativeValuesAndNegativeRange) {
    Histogram h(-10.0, 0.0, 5);
    h.record(-10.0);  // bin 0
    h.record(-0.5);   // bin 4
    h.record(0.0);    // overflow
    EXPECT_EQ(h.count_in_bin(0), 1u);
    EXPECT_EQ(h.count_in_bin(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_NEAR(h.sum(), -10.5, 2e-3);
}

TEST(ObsHistogram, ResetZeroesEverything) {
    Histogram h(0.0, 1.0, 2);
    h.record(0.25);
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.count_in_bin(0), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsHistogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 3), util::ContractViolation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), util::ContractViolation);
}

TEST(ObsHistogram, ConcurrentRecordsAreExact) {
    Histogram h(0.0, 100.0, 10);
    constexpr std::size_t kThreads = 4;
    constexpr std::uint64_t kPerThread = 5000;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                h.record(static_cast<double>((t * 10 + i) % 100));
            }
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(h.total(), kThreads * kPerThread);
    std::uint64_t binned = h.underflow() + h.overflow();
    for (std::size_t b = 0; b < h.bin_count(); ++b) binned += h.count_in_bin(b);
    EXPECT_EQ(binned, h.total());
}

TEST(Registry, LookupOrCreateReturnsStableIdentity) {
    MetricsRegistry reg;
    Counter& a = reg.counter("x.count");
    a.add(7);
    EXPECT_EQ(&reg.counter("x.count"), &a);  // same object on re-lookup
    EXPECT_EQ(reg.counter("x.count").value(), 7u);
    Histogram& h = reg.histogram("x.hist", 0.0, 1.0, 4);
    EXPECT_EQ(&reg.histogram("x.hist", 0.0, 1.0, 4), &h);
}

TEST(Registry, HistogramSchemaMismatchIsAContractViolation) {
    MetricsRegistry reg;
    reg.histogram("h", 0.0, 1.0, 4);
    EXPECT_THROW(reg.histogram("h", 0.0, 2.0, 4), util::ContractViolation);
    EXPECT_THROW(reg.histogram("h", 0.0, 1.0, 8), util::ContractViolation);
}

TEST(Registry, SamplesAreNameOrdered) {
    MetricsRegistry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first").add(2);
    reg.counter("m.mid").add(3);
    const auto samples = reg.counter_samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "a.first");
    EXPECT_EQ(samples[1].name, "m.mid");
    EXPECT_EQ(samples[2].name, "z.last");
    EXPECT_EQ(samples[0].value, 2u);
}

TEST(Registry, ResetZeroesButKeepsNames) {
    MetricsRegistry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(9);
    reg.histogram("h", 0.0, 1.0, 2).record(0.5);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0);
    EXPECT_EQ(reg.histogram("h", 0.0, 1.0, 2).total(), 0u);
    EXPECT_EQ(reg.counter_samples().size(), 1u);  // name survives
}

#if POC_OBS_ENABLED
TEST(Macros, RecordIntoTheGlobalRegistry) {
    const std::uint64_t before = registry().counter("test.macro.count").value();
    POC_OBS_COUNT("test.macro.count", 2);
    POC_OBS_INC("test.macro.count");
    EXPECT_EQ(registry().counter("test.macro.count").value(), before + 3);

    POC_OBS_GAUGE_SET("test.macro.gauge", 10);
    POC_OBS_GAUGE_ADD("test.macro.gauge", 5);
    POC_OBS_GAUGE_SUB("test.macro.gauge", 1);
    EXPECT_EQ(registry().gauge("test.macro.gauge").value(), 14);

    const std::uint64_t htotal = registry().histogram("test.macro.hist", 0.0, 10.0, 5).total();
    POC_OBS_HISTOGRAM("test.macro.hist", 0.0, 10.0, 5, 3.0);
    EXPECT_EQ(registry().histogram("test.macro.hist", 0.0, 10.0, 5).total(), htotal + 1);
}
#else
TEST(Macros, CompileToNothingWhenDisabled) {
    // Arguments must not be evaluated in the disabled build.
    int calls = 0;
    auto probe = [&calls] {
        ++calls;
        return 1;
    };
    POC_OBS_COUNT("test.macro.disabled", probe());
    POC_OBS_GAUGE_SET("test.macro.disabled", probe());
    POC_OBS_HISTOGRAM("test.macro.disabled", 0.0, 1.0, 2, probe());
    EXPECT_EQ(calls, 0);
    EXPECT_TRUE(registry().counter_samples().empty() ||
                registry().counter("test.macro.disabled").value() == 0u);
}
#endif

}  // namespace
}  // namespace poc::obs
