#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace poc::obs {
namespace {

TEST(TraceRegistry, DrainIsEmptyWhenNothingRecorded) {
    TraceRegistry reg;
    EXPECT_TRUE(reg.drain().empty());
    EXPECT_EQ(reg.dropped(), 0u);
}

#if POC_OBS_ENABLED

TEST(TraceRegistry, RecordsDrainOldestFirstAndClear) {
    // Local registries must only be written from threads that are
    // joined before the registry dies (see the lifetime contract in
    // trace.hpp), hence the wrapper threads throughout this file.
    TraceRegistry reg;
    std::thread([&reg] {
        reg.record("a", 100, 5);
        reg.record("b", 50, 5);
        reg.record("c", 200, 5);
    }).join();
    const auto timeline = reg.drain();
    ASSERT_EQ(timeline.size(), 3u);
    // Sorted by start time regardless of record order.
    EXPECT_STREQ(timeline[0].name, "b");
    EXPECT_STREQ(timeline[1].name, "a");
    EXPECT_STREQ(timeline[2].name, "c");
    EXPECT_TRUE(reg.drain().empty());  // drain consumes
}

TEST(TraceRegistry, TieBreaksByThreadThenName) {
    TraceRegistry reg;
    std::thread([&reg] {
        reg.record("z", 100, 1);
        reg.record("a", 100, 1);
    }).join();
    const auto timeline = reg.drain();
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_STREQ(timeline[0].name, "a");
    EXPECT_STREQ(timeline[1].name, "z");
}

TEST(TraceRegistry, RingOverwritesOldestAndCountsDrops) {
    TraceRegistry reg;
    const std::size_t n = TraceRegistry::kRingCapacity + 10;
    std::thread([&reg, n] {
        for (std::size_t i = 0; i < n; ++i) reg.record("s", i, 1);
    }).join();
    EXPECT_EQ(reg.dropped(), 10u);
    const auto timeline = reg.drain();
    ASSERT_EQ(timeline.size(), TraceRegistry::kRingCapacity);
    // The survivors are the newest kRingCapacity records, oldest first.
    EXPECT_EQ(timeline.front().start_ns, 10u);
    EXPECT_EQ(timeline.back().start_ns, n - 1);
}

TEST(TraceRegistry, RingsAreReusedAcrossThreadChurn) {
    // Sequential short-lived threads must not grow the registry: each
    // exiting thread hands its ring back for the next one.
    TraceRegistry reg;
    for (int round = 0; round < 5; ++round) {
        std::thread([&reg] { reg.record("churn", 1, 1); }).join();
        reg.drain();
    }
    EXPECT_LE(reg.ring_count(), 2u);  // main thread may also own one
}

TEST(TraceRegistry, ConcurrentWritersAllLand) {
    TraceRegistry reg;
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kPerThread = 100;  // well under ring capacity
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&reg] {
            for (std::size_t i = 0; i < kPerThread; ++i) reg.record("w", i, 1);
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(reg.drain().size(), kThreads * kPerThread);
    EXPECT_EQ(reg.dropped(), 0u);
}

TEST(Span, EmitsOneRecordWithPlausibleTiming) {
    traces().drain();  // discard other tests' spans
    const std::uint64_t before = now_ns();
    {
        POC_OBS_SPAN("test.span");
    }
    const std::uint64_t after = now_ns();
    const auto timeline = traces().drain();
    ASSERT_EQ(timeline.size(), 1u);
    EXPECT_STREQ(timeline[0].name, "test.span");
    EXPECT_GE(timeline[0].start_ns, before);
    EXPECT_LE(timeline[0].start_ns + timeline[0].dur_ns, after);
}

TEST(Span, NestedSpansBothRecord) {
    traces().drain();
    {
        POC_OBS_SPAN("outer");
        {
            POC_OBS_SPAN("inner");
        }
    }
    const auto timeline = traces().drain();
    ASSERT_EQ(timeline.size(), 2u);
    // Outer starts first; both present.
    EXPECT_STREQ(timeline[0].name, "outer");
    EXPECT_STREQ(timeline[1].name, "inner");
}

TEST(ScopedTimer, RecordsIntoHistogram) {
    Histogram h(0.0, 1000.0, 10);
    {
        ScopedTimerMs timer(h);
    }
    EXPECT_EQ(h.total(), 1u);
}

TEST(TimerMacro, RecordsIntoNamedHistogram) {
    const std::uint64_t before =
        registry().histogram("test.timer_ms", 0.0, 1000.0, 10).total();
    {
        POC_OBS_TIMER_MS("test.timer_ms", 0.0, 1000.0, 10);
    }
    EXPECT_EQ(registry().histogram("test.timer_ms", 0.0, 1000.0, 10).total(), before + 1);
}

#else  // POC_OBS_DISABLED

TEST(TraceRegistry, RecordIsANoOpWhenDisabled) {
    TraceRegistry reg;
    reg.record("x", 1, 1);
    EXPECT_TRUE(reg.drain().empty());
}

TEST(SpanMacro, CompilesToNothingWhenDisabled) {
    POC_OBS_SPAN("gone");
    POC_OBS_TIMER_MS("gone", 0.0, 1.0, 2);
    EXPECT_TRUE(traces().drain().empty());
}

#endif  // POC_OBS_ENABLED

}  // namespace
}  // namespace poc::obs
